"""Theorem 1 / Appendix A — priority scheduling is the cheapest scheme.

Paper: the optimal resource usage under Erms' priority scheduling is at
most that of the non-sharing partition, which is at most that of FCFS
sharing: RU^o <= RU^n <= RU^s (Eqs. 17-19), with equality between RU^n and
RU^s iff a_u R_u = a_h R_h (Cauchy-Schwarz tightness).

Measured here: the closed forms evaluated over a grid of randomized
scenarios satisfying the theorem's premise (U at least as sensitive as H).
"""

import numpy as np

from repro.core import (
    SharedScenario,
    resource_usage_fcfs_sharing,
    resource_usage_non_sharing,
    resource_usage_priority_bound,
)
from repro.experiments import format_table

from conftest import run_once

N_SCENARIOS = 500


def _run():
    rng = np.random.default_rng(123)
    violations = 0
    gaps_ns = []  # RU^s - RU^n
    gaps_on = []  # RU^n - RU^o
    sample_rows = []
    for index in range(N_SCENARIOS):
        a_h = rng.uniform(0.1, 5.0)
        r_u, r_h, r_p = rng.uniform(0.1, 5.0, size=3)
        scenario = SharedScenario(
            a_u=a_h * r_h / r_u * rng.uniform(1.0, 10.0),
            a_h=a_h,
            a_p=rng.uniform(0.1, 5.0),
            r_u=r_u,
            r_h=r_h,
            r_p=r_p,
            gamma1=rng.uniform(1_000.0, 100_000.0),
            gamma2=rng.uniform(1_000.0, 100_000.0),
            budget=rng.uniform(10.0, 400.0),
        )
        ru_s = resource_usage_fcfs_sharing(scenario)
        ru_n = resource_usage_non_sharing(scenario)
        ru_o = resource_usage_priority_bound(scenario)
        tolerance = 1e-9 * ru_s
        if not (ru_o <= ru_n + tolerance and ru_n <= ru_s + tolerance):
            violations += 1
        gaps_ns.append((ru_s - ru_n) / ru_s)
        gaps_on.append((ru_n - ru_o) / ru_n)
        if index < 5:
            sample_rows.append(
                {"RU_fcfs": ru_s, "RU_non_sharing": ru_n, "RU_priority": ru_o}
            )
    return violations, gaps_ns, gaps_on, sample_rows


def test_theorem1_ordering(benchmark, report):
    violations, gaps_ns, gaps_on, sample_rows = run_once(benchmark, _run)

    summary = [
        {
            "scenarios": N_SCENARIOS,
            "ordering_violations": violations,
            "mean_gap_sharing_vs_nonsharing": float(np.mean(gaps_ns)),
            "mean_gap_nonsharing_vs_priority": float(np.mean(gaps_on)),
        }
    ]
    table = format_table(sample_rows, "Theorem 1 - example closed-form values")
    table += "\n" + format_table(summary, "Ordering check", "{:.4f}")
    report("theorem1_ordering", table)

    # RU^o <= RU^n <= RU^s on every scenario satisfying the premise.
    assert violations == 0
    # And both inequalities are strict on average (real savings).
    assert np.mean(gaps_ns) > 0.0
    assert np.mean(gaps_on) > 0.0
