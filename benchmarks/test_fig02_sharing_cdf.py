"""Fig. 2 — CDF of microservices shared by N online services.

Paper: from Alibaba traces (20 000+ microservices, 1000+ services), 40 %
of microservices are shared by more than 100 online services.

Measured here: the same CDF over the synthetic sharing population.
"""

import numpy as np

from repro.experiments import format_table
from repro.workloads import sharing_counts

from conftest import run_once


def test_fig02_sharing_cdf(benchmark, report):
    counts = run_once(
        benchmark,
        lambda: sharing_counts(n_microservices=20_000, n_services=1_000, seed=0),
    )

    thresholds = [1, 10, 50, 100, 200, 500]
    rows = [
        {
            "shared_by_more_than": t,
            "fraction_of_microservices": float(np.mean(counts > t)),
        }
        for t in thresholds
    ]
    report("fig02_sharing_cdf", format_table(rows, "Fig. 2 - microservice sharing CDF"))

    fraction_over_100 = float(np.mean(counts > 100))
    # Paper headline: ~40% shared by >100 services.
    assert 0.30 <= fraction_over_100 <= 0.50
    # The CDF is monotone in the threshold.
    fractions = [row["fraction_of_microservices"] for row in rows]
    assert fractions == sorted(fractions, reverse=True)
