"""Fig. 10 — profiling accuracy of the piecewise model vs XGBoost and NN.

Paper (a): testing accuracy 83-88% for all three learners on both
DeathStarBench and Alibaba (Taobao) samples — the simple piecewise model
is on par with complex learners.
Paper (b): sweeping the training-set size, Erms keeps >=81% accuracy with
70% of the samples while the NN degrades sharply with less data.

Measured here: one-day synthetic profiling datasets (1440 per-minute
samples, interference fixed per hour as with iBench injection), train on
the first 22 hours, test on the last two.  Accuracy = 1 − MAPE.  The NN
baseline gets interaction features (Cγ, Mγ) and long training — it still
needs far more data than the piecewise fit, which is the paper's point.
"""

import numpy as np

from repro.experiments import format_table
from repro.profiling import (
    GradientBoostedTrees,
    MLPRegressor,
    SyntheticMicroservice,
    accuracy_score,
    fit_interference_model,
    generate_synthetic_day,
)

from conftest import run_once

TRAIN_FRACTION = 22 / 24

DATASETS = {
    # A DeathStarBench-like microservice in a dedicated cluster: moderate
    # interference sensitivity, low measurement noise.
    "deathstarbench": dict(
        microservice=SyntheticMicroservice(sigma0=150.0, sigma_slope=0.4),
        noise=0.04,
        seed=21,
    ),
    # An Alibaba-like microservice colocated with batch jobs: stronger
    # interference sensitivity and noisier tails.
    "alibaba": dict(
        microservice=SyntheticMicroservice(
            alpha2=0.7, beta2=1.0, sigma0=150.0, sigma_slope=0.4
        ),
        noise=0.08,
        seed=22,
    ),
}


def _rich_features(data):
    """γ, C, M plus the Eq. 15 interactions Cγ and Mγ."""
    return np.column_stack(
        [
            data.loads,
            data.cpus,
            data.memories,
            data.cpus * data.loads,
            data.memories * data.loads,
        ]
    )


def _erms_accuracy(train, test):
    model = fit_interference_model(
        train.loads, train.cpus, train.memories, train.latencies
    )
    predictions = model.predict(test.loads, test.cpus, test.memories)
    return accuracy_score(test.latencies, predictions)


def _gbrt_accuracy(train, test):
    model = GradientBoostedTrees(n_estimators=120)
    model.fit(_rich_features(train), train.latencies)
    return accuracy_score(test.latencies, model.predict(_rich_features(test)))


def _mlp_accuracy(train, test, seed=0):
    model = MLPRegressor(epochs=400, seed=seed)
    model.fit(_rich_features(train), train.latencies)
    predictions = np.maximum(model.predict(_rich_features(test)), 0.1)
    return accuracy_score(test.latencies, predictions)


def _run_fig10a():
    rows = []
    for name, params in DATASETS.items():
        data = generate_synthetic_day(
            params["microservice"],
            minutes=1440,
            noise=params["noise"],
            seed=params["seed"],
        )
        train, test = data.split(TRAIN_FRACTION)
        rows.append(
            {
                "dataset": name,
                "erms": _erms_accuracy(train, test),
                "xgboost_like": _gbrt_accuracy(train, test),
                "nn": _mlp_accuracy(train, test),
            }
        )
    return rows


def test_fig10a_profiling_accuracy(benchmark, report):
    rows = run_once(benchmark, _run_fig10a)
    report(
        "fig10a_profiling_accuracy",
        format_table(rows, "Fig. 10a - testing accuracy by learner (paper: 83-88%)"),
    )
    for row in rows:
        # Erms is in the paper's accuracy band and competitive with the
        # complex learners on both dataset styles.
        assert row["erms"] >= 0.75
        assert row["erms"] >= row["xgboost_like"] - 0.08
        assert row["erms"] >= row["nn"] - 0.08


def _run_fig10b():
    params = DATASETS["alibaba"]
    data = generate_synthetic_day(
        params["microservice"], minutes=1440, noise=params["noise"], seed=22
    )
    train, test = data.split(TRAIN_FRACTION)
    rows = []
    for fraction in (0.3, 0.5, 0.7, 1.0):
        subset = train.subsample(fraction, seed=int(fraction * 100))
        rows.append(
            {
                "train_fraction": fraction,
                "erms": _erms_accuracy(subset, test),
                "nn": _mlp_accuracy(subset, test, seed=1),
            }
        )
    return rows


def test_fig10b_training_size_sweep(benchmark, report):
    rows = run_once(benchmark, _run_fig10b)
    report(
        "fig10b_training_size",
        format_table(rows, "Fig. 10b - accuracy vs training fraction"),
    )
    by_fraction = {row["train_fraction"]: row for row in rows}
    # Paper: Erms keeps >=81% accuracy at 70% of the training data.
    assert by_fraction[0.7]["erms"] >= 0.75
    # Erms stays robust even at 30%, where the NN is far behind.
    assert by_fraction[0.3]["erms"] >= 0.70
    assert by_fraction[0.3]["nn"] <= by_fraction[0.3]["erms"]
    # Shrinking data hurts the NN at least as much as Erms.
    erms_drop = by_fraction[1.0]["erms"] - by_fraction[0.3]["erms"]
    nn_drop = by_fraction[1.0]["nn"] - by_fraction[0.3]["nn"]
    assert nn_drop >= erms_drop - 0.02
