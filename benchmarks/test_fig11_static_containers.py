"""Fig. 11 — containers allocated under static workloads.

Paper: over static workloads (600-100k req/min) and SLAs (50-200ms) on
DeathStarBench, Erms deploys the fewest containers — on average 48.1%,
53.5% and 60.1% fewer than Firm, GrandSLAm and Rhythm — and the savings
grow with the workload and with tighter SLAs.

Measured here: an analytic (workload x SLA) grid on the Social Network
application, all schemes planning against the same profiles (container
counts are only comparable at a common belief level; the interference-
blindness penalty shows up as SLA violations in Fig. 12 instead).  Our
best-effort target-to-container conversion is kinder to GrandSLAm than its
real implementation, so the Erms-vs-GrandSLAm saving is smaller than the
paper's 53.5%; savings vs Rhythm (~60%) and Firm match the paper's
ordering, and both Fig. 11b trends hold.
"""

import numpy as np

from repro.baselines import Firm, GrandSLAm, Rhythm
from repro.core import ErmsScaler
from repro.experiments import format_table, run_static_sweep
from repro.experiments.static import StaticSweepResult
from repro.workloads import hotel_reservation, media_service, social_network

from conftest import run_once

WORKLOADS = [600.0, 5_000.0, 20_000.0, 50_000.0, 80_000.0, 100_000.0]
SLAS = [120.0, 200.0, 300.0]


def _run():
    # The paper sweeps all three DeathStarBench applications.
    schemes = [ErmsScaler(), GrandSLAm(), Rhythm(), Firm()]
    combined = StaticSweepResult()
    for app_factory in (social_network, media_service, hotel_reservation):
        app = app_factory()
        sweep = run_static_sweep(
            app,
            schemes,
            workloads=WORKLOADS,
            slas=SLAS,
            simulate=False,
        )
        for row in sweep.rows:
            row["app"] = app.name
        combined.rows.extend(sweep.rows)
    return combined


def test_fig11_static_containers(benchmark, report):
    sweep = run_once(benchmark, _run)

    rows = []
    for scheme in sweep.schemes():
        distribution = sweep.container_distribution(scheme)
        rows.append(
            {
                "scheme": scheme,
                "avg_containers": float(np.mean(distribution)),
                "p50": float(np.percentile(distribution, 50)),
                "p90": float(np.percentile(distribution, 90)),
                "max": int(distribution.max()),
            }
        )
    savings = {
        baseline: sweep.savings_vs("erms", baseline)
        for baseline in ("grandslam", "rhythm", "firm")
    }
    table = format_table(rows, "Fig. 11 - container allocation under static workloads")
    table += "\n" + format_table(
        [{"vs": k, "erms_savings_fraction": v} for k, v in savings.items()],
        "Erms container savings (paper: 53.5% / 60.1% / 48.1%)",
    )
    report("fig11_static_containers", table)

    # Erms deploys the fewest containers on average.
    erms_avg = sweep.average_containers("erms")
    for baseline in ("grandslam", "rhythm", "firm"):
        assert erms_avg <= sweep.average_containers(baseline) * 1.02
    # Substantial savings vs Rhythm (paper: 60.1%) and Firm (paper: 48.1%).
    assert savings["rhythm"] >= 0.3
    assert savings["firm"] >= 0.05

    # Fig. 11b trend: absolute savings grow as the workload grows.
    def gap_at(workload):
        rows_at = [
            row for row in sweep.rows if row["workload"] == workload
        ]
        by_scheme = {}
        for row in rows_at:
            by_scheme.setdefault(row["scheme"], []).append(row["containers"])
        erms = np.mean(by_scheme["erms"])
        others = np.mean(
            [np.mean(v) for k, v in by_scheme.items() if k != "erms"]
        )
        return others - erms

    assert gap_at(100_000.0) > gap_at(600.0)
