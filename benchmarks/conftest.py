"""Shared fixtures for the per-figure benchmark suite.

Every benchmark prints the rows the corresponding paper figure plots and
also writes them to ``benchmarks/results/<figure>.txt`` so the output
survives pytest's capture.  Run with ``pytest benchmarks/ --benchmark-only``
(add ``-s`` to watch the tables live).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Callable(name, text): echo + persist a figure's result table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
