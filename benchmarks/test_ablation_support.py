"""Shared data generators for the ablation benchmarks.

(Named ``test_ablation_support`` only so it sits beside its users; it
defines no tests.)
"""

import numpy as np


def extended_synthetic_samples(n=1440, mbw_weight=0.0, seed=0, noise=0.04):
    """Per-minute samples whose steep slope depends on cpu, mem, and
    optionally memory-bandwidth pressure (the §9 extension's target)."""
    rng = np.random.default_rng(seed)
    hours = (n + 59) // 60
    levels = rng.uniform(0.1, 0.9, size=(hours, 3))  # cpu, mem, mbw
    loads = rng.uniform(1.0, 250.0, size=n)
    cpu = np.empty(n)
    mem = np.empty(n)
    mbw = np.empty(n)
    latencies = np.empty(n)
    for index in range(n):
        c, m, w = levels[index // 60]
        cpu[index], mem[index], mbw[index] = c, m, w
        sigma = max(150.0 * (1.0 - 0.4 * (c + m) / 2.0), 1.0)
        low_slope = 0.02 * c + 0.03 * m + 0.01
        load = loads[index]
        if load <= sigma:
            truth = low_slope * load + 2.0
        else:
            high_slope = 0.5 * c + 0.8 * m + mbw_weight * w + 0.1
            truth = (low_slope * sigma + 2.0) + high_slope * (load - sigma)
        latencies[index] = truth * rng.lognormal(0.0, noise)
    return loads, {"cpu": cpu, "memory": mem, "mbw": mbw}, latencies


def split_extended(arrays, fraction=22 / 24):
    """Chronological train/test split of (loads, resources, latencies)."""
    loads, resources, latencies = arrays
    k = int(len(loads) * fraction)
    train = (loads[:k], {n: v[:k] for n, v in resources.items()}, latencies[:k])
    test = (loads[k:], {n: v[k:] for n, v in resources.items()}, latencies[k:])
    return train, test
