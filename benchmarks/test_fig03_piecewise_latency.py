"""Fig. 3 — P95 microservice latency is piecewise-linear in the workload.

Paper: each latency/load curve has a cut-off point; below it latency grows
slowly and almost linearly, above it much faster.  Higher host
interference steepens the post-cutoff slope (up to 5x between hosts) and
moves the cut-off forward (saturation starts earlier).

Measured here: a single simulated container is swept across per-container
loads at three interference levels; the piecewise fit must show the same
slope ordering and cut-off shift, with good fit quality (T vs F curves).
"""

import numpy as np

from repro.experiments import format_table
from repro.experiments.harness import simulate_profiling_sweep
from repro.profiling import fit_piecewise
from repro.simulator import SimulatedMicroservice

from conftest import run_once

MICROSERVICE = SimulatedMicroservice("probe", base_service_ms=10.0, threads=2)
MULTIPLIERS = [1.0, 1.5, 2.5]  # idle, moderate, heavy interference


def _sweep():
    fits = {}
    for multiplier in MULTIPLIERS:
        capacity = MICROSERVICE.threads / (
            MICROSERVICE.base_service_ms * multiplier
        ) * 60_000.0
        loads = np.linspace(0.1 * capacity, 0.95 * capacity, 8)
        xs, ys = simulate_profiling_sweep(
            MICROSERVICE,
            loads,
            interference_multiplier=multiplier,
            duration_min=1.2,
            warmup_min=0.3,
            seed=17,
        )
        fits[multiplier] = (xs, ys, fit_piecewise(xs, ys))
    return fits


def test_fig03_piecewise_latency(benchmark, report):
    fits = run_once(benchmark, _sweep)

    rows = []
    for multiplier, (xs, ys, fit) in fits.items():
        rows.append(
            {
                "interference_multiplier": multiplier,
                "low_slope": fit.model.low.slope,
                "high_slope": fit.model.high.slope,
                "cutoff_req_per_min": fit.model.cutoff,
                "r_squared": fit.r_squared,
            }
        )
    report(
        "fig03_piecewise_latency",
        format_table(rows, "Fig. 3 - piecewise latency fits", "{:.4f}"),
    )

    for multiplier, (xs, ys, fit) in fits.items():
        # The curve has a real knee: post-cutoff slope far steeper.
        assert fit.model.high.slope > 3.0 * max(fit.model.low.slope, 1e-9)
        # The piecewise model fits the measured curve (F tracks T).
        assert fit.r_squared > 0.8

    # Interference steepens the (absolute-load) latency curve...
    slopes = [fits[m][2].model.high.slope for m in MULTIPLIERS]
    assert slopes[2] > slopes[0]
    # ...and moves the cut-off forward.
    cutoffs = [fits[m][2].model.cutoff for m in MULTIPLIERS]
    assert cutoffs[2] < cutoffs[0]
