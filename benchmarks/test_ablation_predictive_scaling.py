"""Ablation — reactive vs predictive scaling under monitoring delay.

Erms scales for the observed workload; with monitoring delay, rising
edges are under-provisioned (the Fig. 13 transient).  A Holt forecaster
closes most of the gap by planning for the predicted current rate.  This
ablation runs the same dynamic replay twice — reactive and predictive —
and compares rising-edge violations and container usage.
"""

from repro.core import ErmsScaler
from repro.experiments import format_table, run_dynamic_workload
from repro.workloads import DiurnalRate, HoltPredictor, social_network

from conftest import run_once

SLA = 200.0
RATE = DiurnalRate(
    base=12_000.0, amplitude=0.6, period_min=45.0, noise_sigma=0.03, seed=9
)
LAG_MIN = 3.0


def _run():
    app = social_network()
    outcomes = {}
    for label, predictor in (
        ("reactive", None),
        ("predictive (Holt)", HoltPredictor(alpha=0.7, beta=0.5)),
    ):
        result = run_dynamic_workload(
            app,
            [ErmsScaler()],
            rate=RATE,
            sla=SLA,
            total_min=30.0,
            window_min=3.0,
            sim_duration_min=0.5,
            seed=11,
            observation_lag_min=LAG_MIN,
            predictor=predictor,
        )
        outcomes[label] = {
            "mean_violation": result.mean_violation("erms"),
            "peak_violation": result.peak_violation("erms"),
            "avg_containers": result.average_containers("erms"),
        }
    return outcomes


def test_ablation_predictive_scaling(benchmark, report):
    outcomes = run_once(benchmark, _run)
    rows = [{"mode": label, **values} for label, values in outcomes.items()]
    report(
        "ablation_predictive_scaling",
        format_table(rows, "Ablation - reactive vs predictive scaling", "{:.3f}"),
    )
    reactive = outcomes["reactive"]
    predictive = outcomes["predictive (Holt)"]
    # Forecasting reduces rising-edge violations...
    assert predictive["mean_violation"] <= reactive["mean_violation"]
    # ...at a modest container overhead (trend extrapolation overshoots a
    # little near the peak).
    assert predictive["avg_containers"] <= reactive["avg_containers"] * 1.25
