"""§6.5.2 — scaling overhead of Latency Target Computation.

Paper: the average overhead of Latency Target Computation is 15ms; for
the largest graph with 1000+ microservices it is 300ms — small against
container start-up times of seconds.

Measured here: wall-clock time of ``compute_service_targets`` on random
trees of 50 / 200 / 1000 microservices (this is the natural use of
pytest-benchmark's timing machinery, so the 1000-node case is the timed
benchmark body).
"""

import time

import numpy as np

from repro.core import compute_service_targets
from repro.experiments import format_table
from repro.workloads.alibaba import _random_profile, _random_tree
from repro.core.model import ServiceSpec

from conftest import run_once


def _service_of_size(n, seed):
    rng = np.random.default_rng(seed)
    names = [f"ms-{i:04d}" for i in range(n)]
    graph = _random_tree(f"svc-{n}", names, rng)
    profiles = {name: _random_profile(name, rng) for name in names}
    # Deep random trees accumulate a large latency floor; the SLA only
    # needs to be feasible — the timing, not the allocation, is measured.
    spec = ServiceSpec(f"svc-{n}", graph, workload=10_000.0, sla=5_000.0)
    return spec, profiles


def test_scalability_overhead(benchmark, report):
    rows = []
    for size in (50, 200, 1000):
        spec, profiles = _service_of_size(size, seed=size)
        start = time.perf_counter()
        compute_service_targets(spec, profiles)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        rows.append({"graph_size": size, "ltc_time_ms": elapsed_ms})

    # The timed benchmark body: the paper's largest-graph case.
    spec, profiles = _service_of_size(1000, seed=1000)
    run_once(benchmark, lambda: compute_service_targets(spec, profiles))

    report(
        "scalability_overhead",
        format_table(
            rows,
            "§6.5.2 - Latency Target Computation overhead "
            "(paper: 15ms avg, 300ms for 1000+ nodes)",
        ),
    )

    by_size = {row["graph_size"]: row["ltc_time_ms"] for row in rows}
    # Well under a second even for 1000-microservice graphs; negligible
    # against multi-second container start-up (paper: 300ms).
    assert by_size[1000] < 1000.0
    # Cost grows with size but stays tractable (interpreter constant
    # factors make small-graph timings noisy, so no tight linearity bound).
    assert by_size[50] <= by_size[1000]
