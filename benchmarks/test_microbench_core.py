"""Micro-benchmarks of the hot algorithmic paths.

Unlike the figure benchmarks (one-shot experiments), these use
pytest-benchmark's statistical timing across rounds: graph merge + target
distribution, the full per-service computation, multi-service priority
scaling, and the piecewise fit.  They guard the §5.3.3 scalability claim
against regressions.
"""

import numpy as np

from repro.core import compute_service_targets, scale_with_priorities
from repro.core.merge import (
    distribute_targets,
    leaf_params_from_profiles,
    merge_graph,
)
from repro.core.model import ServiceSpec
from repro.profiling import fit_piecewise
from repro.workloads import social_network
from repro.workloads.alibaba import _random_profile, _random_tree


def _random_service(n, seed):
    rng = np.random.default_rng(seed)
    names = [f"ms-{i:04d}" for i in range(n)]
    graph = _random_tree(f"svc-{n}", names, rng)
    profiles = {name: _random_profile(name, rng) for name in names}
    return ServiceSpec(f"svc-{n}", graph, workload=10_000.0, sla=5_000.0), profiles


def test_merge_and_distribute_100_nodes(benchmark):
    spec, profiles = _random_service(100, seed=1)
    segments = {n: profiles[n].model.high for n in profiles}

    def body():
        params = leaf_params_from_profiles(spec.graph, profiles, segments)
        merged = merge_graph(spec.graph, params)
        return distribute_targets(merged, spec.sla)

    targets = benchmark(body)
    assert len(targets) == 100


def test_service_targets_200_nodes(benchmark):
    spec, profiles = _random_service(200, seed=2)
    result = benchmark(compute_service_targets, spec, profiles)
    assert len(result.containers) == 200


def test_priority_scaling_social_network(benchmark):
    app = social_network()
    profiles = app.analytic_profiles()
    specs = app.with_workloads(
        {s.name: 20_000.0 for s in app.services}, sla=200.0
    )
    allocation = benchmark(scale_with_priorities, specs, profiles)
    assert allocation.priorities


def test_piecewise_fit_1440_samples(benchmark):
    rng = np.random.default_rng(3)
    loads = rng.uniform(1.0, 250.0, 1440)
    latencies = np.where(loads <= 100.0, 0.05 * loads + 5.0, loads - 90.0)
    latencies = latencies * rng.lognormal(0.0, 0.05, size=1440)
    fit = benchmark(fit_piecewise, loads, latencies)
    assert fit.model.high.slope > fit.model.low.slope
