"""Fig. 12 — SLA violation probability and end-to-end tail latency.

Paper: averaged over static settings, SLA violation probability is <2%
under Erms vs 16.5% (Firm), 13.5% (GrandSLAm) and 7.3% (Rhythm); Erms
also trims actual end-to-end latency by ~10%.

Measured here: allocations from the static grid replayed on the cluster
simulator under colocation (true interference 1.4x).  Erms conditions its
profiles on the live level; GrandSLAm/Rhythm plan with historic (1.2x)
statistics and under-provision — the violation mechanism the paper
attributes to interference-blind statistics.  Firm observes real latency
(interference-aware) and avoids violations by over-allocating, matching
its Fig. 11 long tail; its late-detection violations appear in the
dynamic experiment (Fig. 13).
"""

from repro.baselines import Firm, GrandSLAm, Rhythm
from repro.core import ErmsScaler
from repro.experiments import format_table, run_static_sweep
from repro.workloads import social_network

from conftest import run_once

WORKLOADS = [4_000.0, 12_000.0, 20_000.0]
SLAS = [150.0, 250.0]
INTERFERENCE = 1.4


def _run():
    app = social_network()
    schemes = [ErmsScaler(), GrandSLAm(), Rhythm(), Firm()]
    return run_static_sweep(
        app,
        schemes,
        workloads=WORKLOADS,
        slas=SLAS,
        simulate=True,
        duration_min=1.0,
        warmup_min=0.3,
        seed=5,
        interference_multiplier=INTERFERENCE,
    )


def test_fig12_sla_violations(benchmark, report):
    sweep = run_once(benchmark, _run)

    rows = [
        {
            "scheme": scheme,
            "violation_rate": sweep.average_violation(scheme),
            "p95_latency_ms": sweep.average_p95(scheme),
            "avg_containers": sweep.average_containers(scheme),
        }
        for scheme in sweep.schemes()
    ]
    report(
        "fig12_sla_violations",
        format_table(rows, "Fig. 12 - SLA violations and tail latency (paper: Erms <2%)", "{:.3f}"),
    )

    erms_violation = sweep.average_violation("erms")
    # Paper: Erms keeps the violation probability below 2%.
    assert erms_violation < 0.02
    # The interference-blind baselines violate much more often.
    assert sweep.average_violation("grandslam") > erms_violation
    assert sweep.average_violation("rhythm") > erms_violation
    # Firm buys its low violation rate with extra containers.
    assert sweep.average_violation("firm") <= 0.05
    assert sweep.average_containers("firm") > sweep.average_containers("erms")
