"""Fig. 9 — impact of the δ scheduling parameter at a shared microservice.

Paper: two services share a microservice; raising δ from 0 to 0.05 costs
high-priority requests only ~5 % in P95 while improving low-priority
requests by more than 20 % (worst case; in most settings δ has a minor
effect).  Erms therefore fixes δ = 0.05.

Measured here: the starvation-prone regime that makes δ matter — the
high-priority service dominates the shared microservice's load, so strict
priority (δ = 0) makes low-priority requests wait out long busy periods.
Results are averaged over seeds; P95 near saturation is noisy.
"""

import numpy as np

from repro.core.model import ServiceSpec
from repro.experiments import format_table
from repro.graphs import DependencyGraph, call
from repro.simulator import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)

from conftest import run_once

DELTAS = [0.0, 0.05, 0.2]
RATES = {"hot": 36_000.0, "cold": 6_000.0}  # capacity: 48k req/min
SEEDS = range(4)


def _run():
    specs = [
        ServiceSpec("hot", DependencyGraph("hot", call("P")), 0.0, 50.0),
        ServiceSpec("cold", DependencyGraph("cold", call("P")), 0.0, 300.0),
    ]
    microservices = {"P": SimulatedMicroservice("P", base_service_ms=5.0, threads=4)}
    outcomes = {}
    for delta in DELTAS:
        hot, cold = [], []
        for seed in SEEDS:
            sim = ClusterSimulator(
                specs,
                microservices,
                containers={"P": 1},
                rates=RATES,
                config=SimulationConfig(
                    duration_min=2.0,
                    warmup_min=0.5,
                    seed=seed,
                    scheduling="priority",
                    delta=delta,
                ),
                priorities={"P": {"hot": 0, "cold": 1}},
            ).run()
            hot.append(sim.tail_latency("hot"))
            cold.append(sim.tail_latency("cold"))
        outcomes[delta] = {
            "hot_p95": float(np.mean(hot)),
            "cold_p95": float(np.mean(cold)),
        }
    return outcomes


def test_fig09_delta_sweep(benchmark, report):
    outcomes = run_once(benchmark, _run)

    rows = [{"delta": delta, **values} for delta, values in outcomes.items()]
    report(
        "fig09_delta_sweep",
        format_table(rows, "Fig. 9 - delta sweep at a shared microservice"),
    )

    strict = outcomes[0.0]
    small = outcomes[0.05]
    # delta=0.05 degrades high-priority P95 mildly (paper: ~5%; our
    # simulator shows ~10% in this regime)...
    assert small["hot_p95"] <= strict["hot_p95"] * 1.25
    # ...while improving low-priority P95 noticeably (paper: >20% in the
    # worst case; ours shows >=8% in this regime).
    assert small["cold_p95"] <= strict["cold_p95"] * 0.92

    # Larger delta continues the trade: cold keeps improving, hot pays.
    large = outcomes[0.2]
    assert large["cold_p95"] < small["cold_p95"]
    assert large["hot_p95"] > small["hot_p95"]
