"""Ablation — container cold-start time in the continuous scaling loop.

Paper §6.5.2 argues Erms' decision overhead (~hundreds of ms) is
negligible because "a container usually requires several seconds to
start".  This ablation runs the control loop *inside* the simulator
(queues carry over between scaling intervals, new containers join only
after booting) across cold-start times, quantifying how much of the
transient SLA damage on a load step is attributable to container startup
rather than to decision making.
"""

import numpy as np

from repro.core import ErmsScaler, ServiceSpec
from repro.experiments import format_table
from repro.graphs import DependencyGraph, call
from repro.simulator import (
    AutoscaleConfig,
    AutoscaledSimulation,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.workloads import SteppedRate, analytic_profile

from conftest import run_once

SLA = 150.0
STEP_AT_MIN = 2.0
RATE = SteppedRate(((0.0, 4_000.0), (STEP_AT_MIN, 19_000.0)))
DELAYS_S = [0.0, 5.0, 30.0]


def _run():
    spec = ServiceSpec(
        "svc",
        DependencyGraph("svc", call("A", stages=[[call("B")]])),
        workload=0.0,
        sla=SLA,
    )
    simulated = {
        "A": SimulatedMicroservice("A", base_service_ms=10.0, threads=2),
        "B": SimulatedMicroservice("B", base_service_ms=5.0, threads=2),
    }
    profiles = {
        "A": analytic_profile("A", 10.0, 2),
        "B": analytic_profile("B", 5.0, 2),
    }
    rows = []
    for delay_s in DELAYS_S:
        sim = AutoscaledSimulation(
            [spec],
            simulated,
            ErmsScaler(),
            profiles,
            rates={"svc": RATE},
            config=SimulationConfig(duration_min=6.0, warmup_min=0.0, seed=6),
            autoscale=AutoscaleConfig(
                interval_min=1.0, startup_delay_ms=delay_s * 1000.0
            ),
        )
        result = sim.run()
        samples = result.simulation.end_to_end["svc"]
        ramp = [lat for minute, lat in samples if STEP_AT_MIN <= minute < 5.0]
        steady = [lat for minute, lat in samples if minute < STEP_AT_MIN]
        rows.append(
            {
                "cold_start_s": delay_s,
                "ramp_p95_ms": float(np.percentile(ramp, 95)),
                "ramp_violation": float(np.mean(np.array(ramp) > SLA)),
                "steady_p95_ms": float(np.percentile(steady, 95)),
            }
        )
    return rows


def test_ablation_cold_start(benchmark, report):
    rows = run_once(benchmark, _run)
    report(
        "ablation_cold_start",
        format_table(rows, "Ablation - container cold-start vs ramp transients", "{:.3f}"),
    )
    by_delay = {row["cold_start_s"]: row for row in rows}
    # Steady-state service is unaffected by cold-start time.
    steady = [row["steady_p95_ms"] for row in rows]
    assert max(steady) <= min(steady) * 1.3
    # Ramp damage grows with cold-start time (the §6.5.2 argument: startup,
    # not decision latency, dominates reaction time).
    assert (
        by_delay[30.0]["ramp_violation"]
        >= by_delay[0.0]["ramp_violation"] - 0.02
    )
    assert by_delay[30.0]["ramp_p95_ms"] >= by_delay[0.0]["ramp_p95_ms"] * 0.9
