"""Ablation — complete-graph scaling vs per-class scaling (paper §7/§9).

Erms merges all observed variants of a dynamic dependency graph into one
complete graph and scales for it, over-provisioning when most requests
touch only a subset (§7).  The paper's stated future work — cluster the
variants into classes and scale per class (§9) — is implemented in
``repro.graphs.clustering``; this ablation measures the savings as the
traffic skew toward the short variant grows.
"""

from repro.core import ServiceSpec, compute_service_targets
from repro.experiments import format_table
from repro.graphs import DependencyGraph, call
from repro.graphs.clustering import class_workloads, cluster_graphs, merge_variants
from repro.workloads import analytic_profile

from conftest import run_once

WORKLOAD = 80_000.0
SLA = 250.0


def _variants():
    short = DependencyGraph(
        "svc", call("fe", stages=[[call("core")]])
    )
    long = DependencyGraph(
        "svc",
        call(
            "fe",
            stages=[
                [
                    call(
                        "core",
                        stages=[[call("heavy", stages=[[call("heavy-db")]])]],
                    )
                ]
            ],
        ),
    )
    profiles = {
        "fe": analytic_profile("fe", base_service_ms=3.0, threads=4),
        "core": analytic_profile("core", base_service_ms=8.0, threads=2),
        "heavy": analytic_profile("heavy", base_service_ms=40.0, threads=1),
        "heavy-db": analytic_profile("heavy-db", base_service_ms=20.0, threads=2),
    }
    return short, long, profiles


def _containers(graph, workload, profiles):
    spec = ServiceSpec("svc", graph, workload=workload, sla=SLA)
    return sum(compute_service_targets(spec, profiles).containers.values())


def _run():
    short, long, profiles = _variants()
    complete = merge_variants("svc", [short, long])
    rows = []
    for short_fraction in (0.5, 0.8, 0.95):
        complete_total = _containers(complete, WORKLOAD, profiles)
        classes = cluster_graphs(
            [short, long],
            frequencies=[short_fraction, 1.0 - short_fraction],
            similarity_threshold=0.9,
        )
        per_class_total = sum(
            _containers(cls.representative, load, profiles)
            for cls, load in zip(classes, class_workloads(classes, WORKLOAD))
        )
        rows.append(
            {
                "short_path_fraction": short_fraction,
                "complete_graph": complete_total,
                "per_class": per_class_total,
                "savings": 1.0 - per_class_total / complete_total,
            }
        )
    return rows


def test_ablation_dynamic_graphs(benchmark, report):
    rows = run_once(benchmark, _run)
    report(
        "ablation_dynamic_graphs",
        format_table(rows, "Ablation - complete-graph vs per-class scaling (§9)"),
    )
    # Per-class scaling never costs more, and saves substantially once
    # most traffic takes the short path (the §7 over-provisioning).
    for row in rows:
        assert row["per_class"] <= row["complete_graph"]
    by_skew = {row["short_path_fraction"]: row["savings"] for row in rows}
    assert by_skew[0.95] >= 0.2
    assert by_skew[0.95] >= by_skew[0.5]
