"""Fig. 4 — latency targets and resource usage for a two-tier service.

Paper: for the userTimeline (U, workload-sensitive) -> postStorage (P)
chain, Erms gives U a *higher* latency target than the mean-statistics
baselines do, and thereby deploys up to 58% fewer containers at high
workload (6x at low workload) for the same tail latency.

Measured here: the same chain with our Social Network ground truth, at a
low- and a high-workload setting.
"""

from repro.baselines import GrandSLAm, Rhythm
from repro.core import ErmsScaler, ServiceSpec, predicted_end_to_end
from repro.experiments import format_table
from repro.graphs import DependencyGraph, call
from repro.workloads import analytic_profile

from conftest import run_once

SLA = 250.0
LOW, HIGH = 2_000.0, 40_000.0


def _setup():
    # Paper-scale scenario: 0.1-core containers with ~1-4k req/min
    # capacity each, U markedly more workload-sensitive than P.
    graph = DependencyGraph(
        "two-tier",
        call("user-timeline-service", stages=[[call("post-storage-service")]]),
    )
    profiles = {
        "user-timeline-service": analytic_profile(
            "user-timeline-service", base_service_ms=50.0, threads=1
        ),
        "post-storage-service": analytic_profile(
            "post-storage-service", base_service_ms=25.0, threads=2
        ),
    }
    return graph, profiles


def _run():
    graph, profiles = _setup()
    schemes = [ErmsScaler(), GrandSLAm(), Rhythm()]
    outcomes = {}
    for workload in (LOW, HIGH):
        spec = ServiceSpec("two-tier", graph, workload=workload, sla=SLA)
        for scheme in schemes:
            allocation = scheme.scale([spec], profiles)
            outcomes[(workload, scheme.name)] = {
                "target_U": allocation.targets["two-tier"].get(
                    "user-timeline-service"
                ),
                "containers": allocation.total_containers(),
                "e2e": predicted_end_to_end(spec, profiles, allocation.containers),
            }
    return outcomes


def test_fig04_two_tier_targets(benchmark, report):
    outcomes = run_once(benchmark, _run)

    rows = [
        {
            "workload": workload,
            "scheme": scheme,
            "U_target_ms": data["target_U"] or float("nan"),
            "containers": data["containers"],
            "predicted_e2e_ms": data["e2e"],
        }
        for (workload, scheme), data in outcomes.items()
    ]
    report(
        "fig04_two_tier_targets",
        format_table(rows, "Fig. 4 - two-tier latency targets and containers"),
    )

    for workload in (LOW, HIGH):
        erms = outcomes[(workload, "erms")]
        # Erms never uses more containers and always meets the SLA in the
        # shared model.  Baselines may predict a violation: Rhythm's
        # variance-weighted split can hand P a target below its idle
        # latency floor — unmeetable at any scale, the exact pathology the
        # paper attributes to fixed-statistics targets (Fig. 4a).
        assert erms["e2e"] <= SLA + 1e-6
        for baseline in ("grandslam", "rhythm"):
            other = outcomes[(workload, baseline)]
            assert erms["containers"] <= other["containers"]

    # The sensitive U receives a larger latency target under Erms than
    # under the fixed mean-proportional split (Fig. 4a).
    erms_high = outcomes[(HIGH, "erms")]
    gs_high = outcomes[(HIGH, "grandslam")]
    assert erms_high["target_U"] > gs_high["target_U"]

    # Savings against the statistics-based baselines (paper: up to 6x at
    # light load, 58% at heavy load).  In our framework the big gap shows
    # against Rhythm — whose variance-weighted split under-budgets P
    # hopelessly — while our GrandSLAm implementation lands close to the
    # optimum on this 2-node chain (see EXPERIMENTS.md).
    assert outcomes[(LOW, "rhythm")]["containers"] >= 4 * outcomes[(LOW, "erms")]["containers"]
    assert outcomes[(HIGH, "rhythm")]["containers"] >= 2 * erms_high["containers"]
