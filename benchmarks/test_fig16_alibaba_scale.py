"""Fig. 16 — trace-driven simulation at Alibaba (Taobao) scale.

Paper: on the Taobao application (500+ services, ~50 microservices each,
300+ shared), more than 80% of services need <2000 containers under Erms
vs ~6000 under GrandSLAm/Rhythm; Erms reduces allocated containers by
1.6x on average; Latency Target Computation alone contributes up to 1.2x
and Priority Scheduling a further ~50% — both larger than on the small
benchmarks because sharing is pervasive.

Measured here: a synthetic Taobao-scale population evaluated analytically
(as the paper's own theoretical-resource step does) across the same four
schemes.
"""

import numpy as np

from repro.baselines import GrandSLAm, Rhythm
from repro.core import ErmsScaler
from repro.experiments import cdf_table, format_table, run_trace_simulation
from repro.workloads import generate_taobao

from conftest import run_once

N_SERVICES = 120  # scaled from the paper's 500+ to keep the bench brisk


def _run():
    workload = generate_taobao(n_services=N_SERVICES, seed=42)
    schemes = [
        ErmsScaler(),
        ErmsScaler(use_priority=False),
        GrandSLAm(),
        Rhythm(),
    ]
    result = run_trace_simulation(workload, schemes)
    return workload, result


def test_fig16_alibaba_scale(benchmark, report):
    workload, result = run_once(benchmark, _run)

    rows = [
        {
            "scheme": scheme,
            "total_containers": result.totals[scheme],
            "avg_per_service": result.average_per_service(scheme),
            "p80_per_service": float(
                np.percentile(result.per_service[scheme], 80)
            ),
        }
        for scheme in result.totals
    ]
    ratios = [
        {
            "quantity": "erms vs grandslam (paper: 1.6x)",
            "reduction_factor": result.reduction_factor("erms", "grandslam"),
        },
        {
            "quantity": "LTC alone vs grandslam (paper: ~1.2x)",
            "reduction_factor": result.reduction_factor(
                "erms-fcfs", "grandslam"
            ),
        },
        {
            "quantity": "priority on top of LTC (paper: ~1.5x)",
            "reduction_factor": result.reduction_factor("erms", "erms-fcfs"),
        },
    ]
    table = format_table(rows, "Fig. 16 - Taobao-scale allocation")
    table += "\n" + format_table(ratios, "Reduction factors")
    table += "\nFig. 16a - per-service container percentiles\n"
    table += cdf_table(result.per_service)
    report("fig16_alibaba_scale", table)

    # Scale sanity: hundreds of shared microservices couple the services.
    assert len(workload.shared_microservices()) >= 100

    # Fig. 16b: Erms reduces containers by well over 1.2x on average
    # (paper: 1.6x), with both modules contributing.
    assert result.reduction_factor("erms", "grandslam") >= 1.25
    assert result.reduction_factor("erms", "rhythm") >= 1.25
    assert result.reduction_factor("erms-fcfs", "grandslam") >= 1.1
    assert result.reduction_factor("erms", "erms-fcfs") >= 1.1

    # Fig. 16a: the per-service distribution under Erms is shifted left —
    # at GrandSLAm's 80th percentile, Erms covers more services.
    threshold = int(np.percentile(result.per_service["grandslam"], 80))
    assert result.cdf_point("erms", threshold) >= 0.9

    # The improvement at trace scale exceeds the benchmark-scale one
    # (paper: 1.6x here vs the smaller Fig. 11 gap).
    assert result.reduction_factor("erms", "grandslam") > 1.2
