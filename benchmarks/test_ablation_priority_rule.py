"""Ablation — the priority-assignment rule at shared microservices.

Erms ranks services by their *initial latency target* at the shared
microservice, lowest first (§5.3.2): a low target signals many latency-
sensitive microservices elsewhere in that service's graph.  This ablation
compares that rule against its inverse and against ranking by workload,
holding everything else (modified-workload recomputation, max-across-
services container counts) fixed.
"""

from typing import Dict, List

from repro.core import ServiceSpec, compute_service_targets
from repro.core.multiplexing import (
    modified_workloads,
    scale_with_priorities,
    shared_microservices,
)
from repro.experiments import format_table
from repro.graphs import DependencyGraph, call
from repro.workloads import analytic_profile

from conftest import run_once

WORKLOAD = 150_000.0
SLA = 300.0


def _specs_and_profiles():
    svc1 = ServiceSpec(
        "svc1",
        DependencyGraph("svc1", call("U", stages=[[call("P")]])),
        workload=WORKLOAD,
        sla=SLA,
    )
    svc2 = ServiceSpec(
        "svc2",
        DependencyGraph("svc2", call("H", stages=[[call("P")]])),
        workload=WORKLOAD,
        sla=SLA,
    )
    profiles = {
        "U": analytic_profile("U", base_service_ms=50.0, threads=1),
        "H": analytic_profile("H", base_service_ms=15.0, threads=2),
        "P": analytic_profile("P", base_service_ms=25.0, threads=2),
    }
    return [svc1, svc2], profiles


def _allocate_with_ranks(specs, profiles, priorities) -> int:
    """Re-run Erms' phase 2 under externally chosen priority ranks."""
    overrides = modified_workloads(specs, priorities)
    totals: Dict[str, int] = {}
    for spec in specs:
        result = compute_service_targets(
            spec, profiles, workload_overrides=overrides.get(spec.name) or None
        )
        for name, count in result.containers.items():
            totals[name] = max(totals.get(name, 0), count)
    return sum(totals.values())


def _run():
    specs, profiles = _specs_and_profiles()
    erms = scale_with_priorities(specs, profiles)
    erms_total = sum(erms.containers().values())
    erms_ranks = erms.priorities

    inverse_ranks = {
        ms: {svc: max(ranks.values()) - rank for svc, rank in ranks.items()}
        for ms, ranks in erms_ranks.items()
    }
    shared = shared_microservices(specs)
    by_workload = {
        ms: {
            svc: rank
            for rank, svc in enumerate(
                sorted(
                    services,
                    key=lambda s: -next(
                        spec.workload for spec in specs if spec.name == s
                    ),
                )
            )
        }
        for ms, services in shared.items()
    }

    return [
        {"rule": "lowest-target-first (Erms)", "containers": erms_total},
        {
            "rule": "inverse (highest-target-first)",
            "containers": _allocate_with_ranks(specs, profiles, inverse_ranks),
        },
        {
            "rule": "by-workload",
            "containers": _allocate_with_ranks(specs, profiles, by_workload),
        },
    ]


def test_ablation_priority_rule(benchmark, report):
    rows = run_once(benchmark, _run)
    report(
        "ablation_priority_rule",
        format_table(rows, "Ablation - priority assignment rule at shared P"),
    )
    by_rule = {row["rule"]: row["containers"] for row in rows}
    erms = by_rule["lowest-target-first (Erms)"]
    # Erms' rule is never worse than the alternatives on this scenario.
    assert erms <= by_rule["inverse (highest-target-first)"]
    assert erms <= by_rule["by-workload"]
