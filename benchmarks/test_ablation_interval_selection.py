"""Ablation — §5.3.1 interval selection: 1 pass vs 2 passes vs converged.

The paper processes each dependency graph at most twice: assume the
high-load interval everywhere, then switch microservices whose target
falls below the cut-off latency and recompute once.  With discontinuous
fitted segments the second pass can strand targets inconsistent with
their segment; our default runs the (monotone) switching loop to
convergence.  This ablation quantifies what each extra pass buys.
"""

from repro.core import compute_service_targets
from repro.experiments import format_table
from repro.workloads import social_network

from conftest import run_once

WORKLOADS = [600.0, 5_000.0, 20_000.0, 60_000.0]
SLA = 160.0  # tight enough that interval switching actually triggers


def _run():
    app = social_network()
    profiles = app.analytic_profiles()
    rows = []
    for max_passes in (1, 2, 8):
        total_containers = 0
        total_passes = 0
        runs = 0
        inconsistent = 0
        for workload in WORKLOADS:
            for spec in app.with_workloads(
                {s.name: workload for s in app.services}, sla=SLA
            ):
                result = compute_service_targets(
                    spec, profiles, max_passes=max_passes
                )
                total_containers += sum(result.containers.values())
                total_passes += result.passes
                runs += 1
                for name, target in result.targets.items():
                    model = profiles[name].model
                    segment = result.segments[name]
                    # A high-segment microservice whose target sits below
                    # the cut-off latency is operating off its segment.
                    if segment is model.high and target < model.latency_at_cutoff():
                        inconsistent += 1
        rows.append(
            {
                "max_passes": max_passes,
                "total_containers": total_containers,
                "avg_passes_used": total_passes / runs,
                "segment_inconsistencies": inconsistent,
            }
        )
    return rows


def test_ablation_interval_selection(benchmark, report):
    rows = run_once(benchmark, _run)
    report(
        "ablation_interval_selection",
        format_table(rows, "Ablation - interval-selection passes (SLA 160ms)"),
    )
    by_passes = {row["max_passes"]: row for row in rows}
    # Convergence resolves every target/segment mismatch...
    assert by_passes[8]["segment_inconsistencies"] == 0
    # ...that a single pass leaves behind.
    assert by_passes[1]["segment_inconsistencies"] > 0
    # Extra passes never cost resources overall in this sweep.
    assert (
        by_passes[8]["total_containers"] <= by_passes[1]["total_containers"]
    )
    # The loop terminates quickly even when allowed 8 passes.
    assert by_passes[8]["avg_passes_used"] <= 4.0
