"""Fig. 13 — performance under a dynamic (Alibaba-like) workload.

Paper: replaying Alibaba workload curves against the Social Network
application with SLA 200ms, all schemes track the workload, but Erms
satisfies the SLA throughout while the baselines violate at workload
peaks — Firm worst (up to 50%) due to its late detection of bottlenecks.
Erms also saves up to 30% of containers on average.

Measured here: a diurnal rate replayed in 3-minute scaling windows under
colocation (true interference 1.4x): Erms conditions its profiles on the
live level; GrandSLAm plans with historic statistics and under-provisions
at peaks; Firm keeps static replica counts for non-critical microservices
and tunes the critical ones with a 2-step RL budget per window, so rising
load catches it out badly.  Container counts end up close between Erms
and GrandSLAm in our framework (GrandSLAm's under-provisioning masks its
misallocation); the violation ordering is the asserted result.
"""

import math

from repro.baselines import Firm, GrandSLAm
from repro.core import ErmsScaler
from repro.experiments import format_table, run_dynamic_workload, sparkline
from repro.workloads import DiurnalRate, social_network

from conftest import run_once

SLA = 200.0
RATE = DiurnalRate(
    base=15_000.0, amplitude=0.6, period_min=45.0, noise_sigma=0.05, seed=7
)


def _run():
    app = social_network()
    schemes = [ErmsScaler(), GrandSLAm(), Firm(max_iterations=2)]
    return run_dynamic_workload(
        app,
        schemes,
        rate=RATE,
        sla=SLA,
        total_min=30.0,
        window_min=3.0,
        sim_duration_min=0.6,
        seed=3,
        interference_multiplier=1.4,
    )


def test_fig13_dynamic_workload(benchmark, report):
    result = run_once(benchmark, _run)

    rows = []
    for index, minute in enumerate(result.windows):
        row = {"minute": minute, "rate": result.rates[index]}
        for scheme in result.containers:
            row[f"{scheme}_containers"] = result.containers[scheme][index]
            row[f"{scheme}_violation"] = result.violations[scheme][index]
        rows.append(row)
    table = format_table(rows, "Fig. 13 - dynamic workload time series")
    summary = [
        {
            "scheme": scheme,
            "avg_containers": result.average_containers(scheme),
            "mean_violation": result.mean_violation(scheme),
            "peak_violation": result.peak_violation(scheme),
            "workload_correlation": result.tracks_workload(scheme),
        }
        for scheme in result.containers
    ]
    table += "\n" + format_table(summary, "Summary", "{:.3f}")
    table += "\nrate      " + sparkline(result.rates)
    for scheme in result.containers:
        table += f"\n{scheme[:9].ljust(9)} " + sparkline(result.containers[scheme])
    report("fig13_dynamic_workload", table)

    # Fig. 13a: every scheme responds promptly to workload changes.
    for scheme in result.containers:
        assert result.tracks_workload(scheme) > 0.9

    # Fig. 13b: Erms keeps violations minimal throughout...
    assert result.mean_violation("erms") < 0.03
    # ...and below the interference-blind GrandSLAm.
    assert result.mean_violation("erms") < result.mean_violation("grandslam")

    # Firm's late detection: static non-critical replicas + a small RL
    # budget per window mean rising load overwhelms it (paper: up to 50%
    # violations at peaks).
    assert result.peak_violation("firm") > 0.5
    assert result.peak_violation("firm") > result.peak_violation("erms")
    assert not math.isnan(result.p95["erms"][0])
