"""Compare a fresh perf run against the tracked ``BENCH_des.json``.

Used by the ``bench-smoke`` CI job: the runner produces a fresh (quick)
report, and this script diffs its *rate* metrics — events/sec, cells/sec,
actions/sec — against the committed report, failing (exit 1) when any
regresses by more than the threshold (default 20 %).  Rate metrics are
duration-independent, so a quick run compares meaningfully against the
tracked full run; wall-clock fields are never compared.

Correctness flags ride along: if the fresh run reports non-identical
rows (``parallel_grid.rows_identical`` or
``allocation_throughput.identical`` false), that is always a failure —
a fast wrong answer is not a benchmark win.

Usage::

    python benchmarks/perf/compare.py FRESH.json [--tracked BENCH_des.json]
        [--threshold 0.20]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: (benchmark, metric) pairs gated on regression.  Higher is better for
#: every one of these.
RATE_METRICS = [
    ("saturation", "events_per_sec"),
    ("allocation_throughput", "memoized_cells_per_sec"),
    ("allocation_throughput", "grid_cells_per_sec"),
    ("allocation_throughput", "provisioner_actions_per_sec"),
    ("telemetry_overhead", "disabled_events_per_sec"),
    ("analysis_throughput", "critical_path_traces_per_sec"),
    ("resilience_overhead", "disabled_events_per_sec"),
    ("tsdb_overhead", "disabled_events_per_sec"),
    ("serve_overhead", "disabled_events_per_sec"),
]

#: (benchmark, flag) pairs that must be true whenever present.
CORRECTNESS_FLAGS = [
    ("parallel_grid", "rows_identical"),
    ("allocation_throughput", "identical"),
]


def compare(fresh: dict, tracked: dict, threshold: float) -> list:
    """Return a list of human-readable failure strings (empty = pass)."""
    failures = []
    fresh_benchmarks = fresh.get("benchmarks", {})
    tracked_benchmarks = tracked.get("benchmarks", {})

    for bench, flag in CORRECTNESS_FLAGS:
        value = fresh_benchmarks.get(bench, {}).get(flag)
        if value is False:
            failures.append(f"{bench}.{flag} is false in the fresh run")

    for bench, metric in RATE_METRICS:
        old = tracked_benchmarks.get(bench, {}).get(metric)
        new = fresh_benchmarks.get(bench, {}).get(metric)
        if not old or not new:
            # Metric absent on either side (subset run, older report
            # schema): nothing to gate.
            print(f"[compare] {bench}.{metric}: skipped (missing)")
            continue
        ratio = new / old
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            failures.append(
                f"{bench}.{metric}: {new:.1f} vs tracked {old:.1f} "
                f"({(1.0 - ratio) * 100.0:.1f}% slower, "
                f"threshold {threshold * 100.0:.0f}%)"
            )
        print(
            f"[compare] {bench}.{metric}: {new:.1f} vs {old:.1f} "
            f"({ratio:.2f}x) {status}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", type=pathlib.Path, help="freshly produced report (JSON)"
    )
    parser.add_argument(
        "--tracked",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_des.json",
        help="tracked report to compare against (default: repo BENCH_des.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional regression per rate metric (default 0.20)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    tracked = json.loads(args.tracked.read_text())
    failures = compare(fresh, tracked, args.threshold)
    if failures:
        print(f"[compare] FAILED ({len(failures)} regression(s)):")
        for failure in failures:
            print(f"[compare]   {failure}")
        return 1
    print("[compare] OK: no rate metric regressed beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
