"""Perf benchmark runner: times canonical simulator/experiment configurations.

Three single-process benchmarks plus one parallel-grid benchmark:

* ``saturation`` — one microservice near its capacity knee: the pure
  engine hot path (arrival events, dispatch, completion events, result
  recording).  Reported as events/sec, the headline engine metric.
* ``static_cell`` — one DeathStarBench static-grid cell with
  ``simulate=True``: the experiment layer end to end (scale + replay).
* ``trace_slice`` — an Alibaba-scale population slice allocated
  analytically: the allocation layer at fan-out.
* ``parallel_grid`` — a small simulated static grid at ``workers=1``
  versus multi-process, reporting the grid speedup.
* ``telemetry_overhead`` — the saturation scenario with no telemetry
  versus a fully-enabled :class:`~repro.telemetry.TelemetrySink` (spans,
  windows, live MetricsStore), reporting the enabled-path overhead and
  pinning that the disabled path stays a single null-check branch.
* ``tail_sampling`` — the same scenario with full trace retention versus
  tail-based sampling at the run's P95, reporting both overheads and the
  tail keep fraction.
* ``analysis_throughput`` — critical-path extraction and SLA blame over
  the collected traces, in traces/sec.

Results are written to ``BENCH_des.json`` at the repo root so the perf
trajectory is tracked across PRs.  ``baseline_seed.json`` (checked in,
measured on the pre-fast-path seed engine) rides along in the output so
every report carries the reference numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "baseline_seed.json"

if str(REPO_ROOT / "src") not in sys.path:  # script-mode convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import ErmsScaler, ServiceSpec  # noqa: E402
from repro.graphs import DependencyGraph, call  # noqa: E402
from repro.simulator import (  # noqa: E402
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.workloads import generate_taobao, social_network  # noqa: E402


def bench_saturation(
    duration_min: float = 2.0, seed: int = 7, trials: int = 3
) -> dict:
    """Single-microservice run near the capacity knee (engine hot path).

    Runs ``trials`` identical simulations and reports the *fastest*
    (best-of-N): DES throughput is deterministic work, so the minimum
    wall time is the least-noisy estimate on a shared/1-CPU machine;
    the per-trial numbers ride along for inspection.
    """
    graph = DependencyGraph("svc", call("B"))
    spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)
    runs = []
    for _ in range(max(1, trials)):
        simulator = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
            containers={"B": 1},
            rates={"svc": 45_000.0},  # capacity: 48k req/min
            config=SimulationConfig(
                duration_min=duration_min, warmup_min=0.5, seed=seed
            ),
        )
        start = time.perf_counter()
        result = simulator.run()
        wall = time.perf_counter() - start
        runs.append((wall, result))
    wall, result = min(runs, key=lambda pair: pair[0])
    events = result.events_processed
    return {
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1),
        "requests": result.completed["svc"],
        "trials_events_per_sec": [
            round(r.events_processed / w, 1) for w, r in runs
        ],
    }


def bench_static_cell(seed: int = 0) -> dict:
    """One (workload, SLA, scheme) DSB grid cell with simulation replay."""
    from repro.experiments import run_static_sweep

    app = social_network()
    start = time.perf_counter()
    sweep = run_static_sweep(
        app,
        [ErmsScaler()],
        workloads=[20_000.0],
        slas=[200.0],
        simulate=True,
        duration_min=1.0,
        warmup_min=0.3,
        seed=seed,
    )
    wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 4),
        "rows": len(sweep.rows),
        "containers": sweep.rows[0]["containers"] if sweep.rows else 0,
    }


def bench_trace_slice(seed: int = 42) -> dict:
    """Alibaba-scale slice: analytic allocation over a shared population."""
    from repro.experiments import run_trace_simulation

    workload = generate_taobao(
        n_services=40, mean_graph_size=30, shared_pool=120, seed=seed
    )
    scaler = ErmsScaler()
    start = time.perf_counter()
    result = run_trace_simulation(workload, [scaler])
    wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 4),
        "services": len(workload.services),
        "total_containers": result.totals.get(scaler.name, 0),
    }


def bench_parallel_grid(workers: int = 0, seed: int = 0) -> dict:
    """Simulated static grid, serial vs. process-parallel (same seeds)."""
    from repro.experiments import run_static_sweep

    if workers <= 0:
        # At least 2 so the process pool is actually exercised (and the
        # serial-vs-parallel identity checked) even on a 1-CPU machine,
        # where the speedup will honestly be ~1x or below.
        workers = max(2, min(4, os.cpu_count() or 1))
    app = social_network()
    grid = dict(
        workloads=[5_000.0, 20_000.0],
        slas=[150.0, 300.0],
        simulate=True,
        duration_min=0.5,
        warmup_min=0.1,
        seed=seed,
    )

    start = time.perf_counter()
    serial = run_static_sweep(app, [ErmsScaler()], workers=1, **grid)
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_static_sweep(app, [ErmsScaler()], workers=workers, **grid)
    parallel_wall = time.perf_counter() - start

    identical = serial.rows == parallel.rows
    return {
        "workers": workers,
        "cells": len(serial.rows),
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 2)
        if parallel_wall > 0
        else None,
        "rows_identical": identical,
    }


def bench_telemetry_overhead(
    duration_min: float = 1.0, seed: int = 7, trials: int = 3
) -> dict:
    """Saturation scenario, telemetry disabled vs fully enabled.

    The disabled run is the plain engine (one ``is None`` branch per hot
    loop); the enabled run attaches a sink with span emission at 100 %
    sampling, the live MetricsStore, and window ticks — the most
    expensive configuration.  Best-of-N on both sides, like
    ``bench_saturation``.
    """
    from repro.telemetry import TelemetryConfig, TelemetrySink

    graph = DependencyGraph("svc", call("B"))
    spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)

    def run_once(sink):
        simulator = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
            containers={"B": 1},
            rates={"svc": 45_000.0},
            config=SimulationConfig(
                duration_min=duration_min, warmup_min=0.25, seed=seed
            ),
            telemetry=sink,
        )
        start = time.perf_counter()
        result = simulator.run()
        return time.perf_counter() - start, result

    disabled_runs = [run_once(None) for _ in range(max(1, trials))]
    enabled_runs = [
        # A sink serves exactly one run; max_traces=0 measures the full
        # span-emission cost without unbounded retention.
        run_once(
            TelemetrySink(
                config=TelemetryConfig(window_min=0.25, max_traces=0)
            )
        )
        for _ in range(max(1, trials))
    ]
    disabled_wall, disabled_result = min(disabled_runs, key=lambda p: p[0])
    enabled_wall, enabled_result = min(enabled_runs, key=lambda p: p[0])
    disabled_eps = disabled_result.events_processed / disabled_wall
    enabled_eps = enabled_result.events_processed / enabled_wall
    return {
        "disabled_events_per_sec": round(disabled_eps, 1),
        "enabled_events_per_sec": round(enabled_eps, 1),
        "overhead_pct": round((1.0 - enabled_eps / disabled_eps) * 100.0, 2),
        "disabled_wall_s": round(disabled_wall, 4),
        "enabled_wall_s": round(enabled_wall, 4),
    }


def bench_tail_sampling(
    duration_min: float = 1.0, seed: int = 7, trials: int = 3
) -> dict:
    """Tail-based sampling versus full trace retention.

    Three saturation runs: telemetry disabled (reference, and the source
    of the P95 threshold), full sampling (every trace materialized), and
    tail-based sampling at the disabled run's P95.  Reports both
    overhead percentages and the tail run's keep fraction — the headline
    claim is that tail sampling keeps the span pipeline well below the
    full-retention cost while still catching every slow trace.
    """
    import numpy as np

    from repro.telemetry import TelemetryConfig, TelemetrySink

    graph = DependencyGraph("svc", call("B"))
    spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)

    def run_once(sink):
        simulator = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
            containers={"B": 1},
            rates={"svc": 45_000.0},
            config=SimulationConfig(
                duration_min=duration_min, warmup_min=0.25, seed=seed
            ),
            telemetry=sink,
        )
        start = time.perf_counter()
        result = simulator.run()
        return time.perf_counter() - start, result, sink

    disabled_runs = [run_once(None) for _ in range(max(1, trials))]
    disabled_wall, disabled_result, _ = min(disabled_runs, key=lambda p: p[0])
    threshold = float(
        np.percentile(disabled_result.latencies("svc"), 95.0)
    )

    full_runs = [
        run_once(TelemetrySink(config=TelemetryConfig(window_min=0.25)))
        for _ in range(max(1, trials))
    ]
    tail_runs = [
        run_once(
            TelemetrySink(
                config=TelemetryConfig(
                    window_min=0.25, tail_threshold_ms=threshold, seed=seed
                )
            )
        )
        for _ in range(max(1, trials))
    ]
    full_wall, full_result, _ = min(full_runs, key=lambda p: p[0])
    tail_wall, tail_result, tail_sink = min(tail_runs, key=lambda p: p[0])
    disabled_eps = disabled_result.events_processed / disabled_wall
    full_eps = full_result.events_processed / full_wall
    tail_eps = tail_result.events_processed / tail_wall
    keep_fraction = (
        tail_sink.kept_traces / tail_sink.sampled_traces
        if tail_sink.sampled_traces
        else 0.0
    )
    return {
        "tail_threshold_ms": round(threshold, 3),
        "disabled_events_per_sec": round(disabled_eps, 1),
        "full_events_per_sec": round(full_eps, 1),
        "tail_events_per_sec": round(tail_eps, 1),
        "full_overhead_pct": round((1.0 - full_eps / disabled_eps) * 100.0, 2),
        "tail_overhead_pct": round((1.0 - tail_eps / disabled_eps) * 100.0, 2),
        "keep_fraction": round(keep_fraction, 4),
        "traces_kept": tail_sink.kept_traces,
        "traces_sampled": tail_sink.sampled_traces,
    }


def bench_analysis_throughput(seed: int = 7) -> dict:
    """Post-run analysis speed: critical-path extraction + blame.

    Collects the saturation scenario's traces once, then times
    ``extract_critical_path`` over every trace and a full
    ``attribute_blame`` pass, reporting traces analyzed per second —
    the cost of the analytics layer relative to trace volume.
    """
    from repro.telemetry import TelemetryConfig, TelemetrySink
    from repro.telemetry.analysis import attribute_blame, extract_critical_path

    graph = DependencyGraph("svc", call("B"))
    spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)
    sink = TelemetrySink(config=TelemetryConfig(window_min=0.25))
    ClusterSimulator(
        [spec],
        {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
        containers={"B": 1},
        rates={"svc": 45_000.0},
        config=SimulationConfig(duration_min=1.0, warmup_min=0.25, seed=seed),
        telemetry=sink,
    ).run()
    traces = sink.traces
    start = time.perf_counter()
    for trace in traces:
        extract_critical_path(trace)
    path_wall = time.perf_counter() - start
    start = time.perf_counter()
    report = attribute_blame(
        traces, targets={"svc": {"B": 10.0}}, slas={"svc": 40.0}
    )
    blame_wall = time.perf_counter() - start
    n = len(traces)
    return {
        "traces": n,
        "critical_path_traces_per_sec": round(n / path_wall, 1)
        if path_wall > 0
        else None,
        "blame_traces_per_sec": round(n / blame_wall, 1)
        if blame_wall > 0
        else None,
        "blame_entries": len(report.entries),
        "violating_windows": len(report.violating_windows),
    }


BENCHMARKS = {
    "saturation": bench_saturation,
    "static_cell": bench_static_cell,
    "trace_slice": bench_trace_slice,
    "parallel_grid": bench_parallel_grid,
    "telemetry_overhead": bench_telemetry_overhead,
    "tail_sampling": bench_tail_sampling,
    "analysis_throughput": bench_analysis_throughput,
}


def run_suite(only=None, output: pathlib.Path = None) -> dict:
    """Run the suite and write ``BENCH_des.json``; returns the report."""
    report = {"schema": 1, "benchmarks": {}}
    for name, fn in BENCHMARKS.items():
        if only and name not in only:
            continue
        print(f"[perf] {name} ...", flush=True)
        report["benchmarks"][name] = fn()
        print(f"[perf]   {report['benchmarks'][name]}", flush=True)

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        report["baseline"] = baseline
        base_sat = baseline.get("benchmarks", {}).get("saturation", {})
        cur_sat = report["benchmarks"].get("saturation", {})
        if base_sat.get("events_per_sec") and cur_sat.get("events_per_sec"):
            report["saturation_speedup_vs_seed"] = round(
                cur_sat["events_per_sec"] / base_sat["events_per_sec"], 2
            )

    out = output or (REPO_ROOT / "BENCH_des.json")
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[perf] wrote {out}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(BENCHMARKS),
        help="run a subset of benchmarks",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, help="output path (default BENCH_des.json)"
    )
    args = parser.parse_args(argv)
    run_suite(only=args.only, output=args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
