"""Perf benchmark runner: times canonical simulator/experiment configurations.

Three single-process benchmarks plus one parallel-grid benchmark:

* ``saturation`` — one microservice near its capacity knee: the pure
  engine hot path (arrival events, dispatch, completion events, result
  recording).  Reported as events/sec, the headline engine metric.
* ``static_cell`` — one DeathStarBench static-grid cell with
  ``simulate=True``: the experiment layer end to end (scale + replay).
* ``trace_slice`` — an Alibaba-scale population slice allocated
  analytically: the allocation layer at fan-out.
* ``parallel_grid`` — a simulated static grid (8 cells) at ``workers=1``
  versus a warm 4-worker :class:`~repro.experiments.parallel.WorkerPool`,
  reporting the grid speedup plus the pool's per-cell dispatch overhead
  and payload size (the shared-context design ships the application once
  per worker; payloads are index-plus-scalar dicts).
* ``allocation_throughput`` — the Eq. 5 / §5.3.1 hot path over a
  (workload × SLA) grid three ways: scalar (caches off, the pre-PR
  cost), memoized (`compute_service_targets` with the cross-cell memo),
  and grid-batched (`compute_targets_grid`); plus interference-aware
  provisioner placements/sec through the incremental ``ClusterIndex``.
  All three paths are verified cell-for-cell identical.
* ``telemetry_overhead`` — the saturation scenario with no telemetry
  versus a fully-enabled :class:`~repro.telemetry.TelemetrySink` (spans,
  windows, live MetricsStore), reporting the enabled-path overhead and
  pinning that the disabled path stays a single null-check branch.
* ``tail_sampling`` — the same scenario with full trace retention versus
  tail-based sampling at the run's P95, reporting both overheads and the
  tail keep fraction.
* ``analysis_throughput`` — critical-path extraction and SLA blame over
  the collected traces, in traces/sec.
* ``resilience_overhead`` — the saturation scenario with no resilience
  layer versus a full chaos schedule + retry/timeout/breaker/admission
  policy stack, reporting the enabled-path overhead and pinning that the
  disabled path stays a single null-check branch (the resilience
  counterpart of ``telemetry_overhead``).

Results are written to ``BENCH_des.json`` at the repo root so the perf
trajectory is tracked across PRs.  ``baseline_seed.json`` (checked in,
measured on the pre-fast-path seed engine) rides along in the output so
every report carries the reference numbers.

``--quick`` shrinks every benchmark (shorter simulations, fewer trials,
smaller grids) for CI smoke runs; rate metrics (events/sec, cells/sec)
stay comparable to full-mode numbers, wall-clock fields do not.
``benchmarks/perf/compare.py`` diffs a fresh (quick) run against the
tracked report and fails on regressions in those rate metrics.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "baseline_seed.json"

if str(REPO_ROOT / "src") not in sys.path:  # script-mode convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import ErmsScaler, ServiceSpec  # noqa: E402
from repro.graphs import DependencyGraph, call  # noqa: E402
from repro.simulator import (  # noqa: E402
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.workloads import generate_taobao, social_network  # noqa: E402


def bench_saturation(
    duration_min: float = 2.0, seed: int = 7, trials: int = 3,
    quick: bool = False,
) -> dict:
    """Single-microservice run near the capacity knee (engine hot path).

    Runs ``trials`` identical simulations and reports the *fastest*
    (best-of-N): DES throughput is deterministic work, so the minimum
    wall time is the least-noisy estimate on a shared/1-CPU machine;
    the per-trial numbers ride along for inspection.
    """
    warmup_min = 0.5
    if quick:
        duration_min, warmup_min, trials = 0.5, 0.1, 2
    graph = DependencyGraph("svc", call("B"))
    spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)
    runs = []
    for _ in range(max(1, trials)):
        simulator = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
            containers={"B": 1},
            rates={"svc": 45_000.0},  # capacity: 48k req/min
            config=SimulationConfig(
                duration_min=duration_min, warmup_min=warmup_min, seed=seed
            ),
        )
        start = time.perf_counter()
        result = simulator.run()
        wall = time.perf_counter() - start
        runs.append((wall, result))
    wall, result = min(runs, key=lambda pair: pair[0])
    events = result.events_processed
    return {
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1),
        "requests": result.completed["svc"],
        "trials_events_per_sec": [
            round(r.events_processed / w, 1) for w, r in runs
        ],
    }


def bench_static_cell(seed: int = 0, quick: bool = False) -> dict:
    """One (workload, SLA, scheme) DSB grid cell with simulation replay."""
    from repro.experiments import run_static_sweep

    app = social_network()
    start = time.perf_counter()
    sweep = run_static_sweep(
        app,
        [ErmsScaler()],
        workloads=[20_000.0],
        slas=[200.0],
        simulate=True,
        duration_min=0.3 if quick else 1.0,
        warmup_min=0.1 if quick else 0.3,
        seed=seed,
    )
    wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 4),
        "rows": len(sweep.rows),
        "containers": sweep.rows[0]["containers"] if sweep.rows else 0,
    }


def bench_trace_slice(seed: int = 42, quick: bool = False) -> dict:
    """Alibaba-scale slice: analytic allocation over a shared population."""
    from repro.experiments import run_trace_simulation

    workload = generate_taobao(
        n_services=15 if quick else 40,
        mean_graph_size=30,
        shared_pool=120,
        seed=seed,
    )
    scaler = ErmsScaler()
    start = time.perf_counter()
    result = run_trace_simulation(workload, [scaler])
    wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 4),
        "services": len(workload.services),
        "total_containers": result.totals.get(scaler.name, 0),
    }


def _noop_cell(cell: dict) -> int:
    """Pool round-trip probe: isolates dispatch cost from cell work."""
    return cell.get("i", 0)


def bench_parallel_grid(
    workers: int = 0, seed: int = 0, quick: bool = False
) -> dict:
    """Simulated static grid, serial vs. a warm worker pool (same seeds).

    8 cells (4 workloads × 2 SLAs) through one persistent
    :class:`~repro.experiments.parallel.WorkerPool`.  The pool is warmed
    (workers forked, dispatch path exercised) before the timed sweep, and
    the pool's measure mode records what actually crosses the process
    boundary per cell — with the application in the shared context the
    payloads are index-plus-scalar dicts, not the app object.  On a
    machine with fewer CPUs than workers the speedup is honestly ~1x or
    below; the ``cpus`` field rides along so the number can be read in
    context.
    """
    from repro.experiments import run_static_sweep
    from repro.experiments.parallel import WorkerPool

    if workers <= 0:
        workers = 4  # the tracked configuration (ISSUE: >= 4 workers)
    app = social_network()
    grid = dict(
        workloads=[5_000.0, 10_000.0, 20_000.0, 40_000.0],
        slas=[150.0, 300.0],
        simulate=True,
        duration_min=0.2 if quick else 0.5,
        warmup_min=0.1,
        seed=seed,
    )

    start = time.perf_counter()
    serial = run_static_sweep(app, [ErmsScaler()], workers=1, **grid)
    serial_wall = time.perf_counter() - start

    with WorkerPool(workers, measure=True) as pool:
        # Warm the pool: fork the workers and push one map through, so the
        # timed sweep pays steady-state dispatch, not first-fork costs.
        pool.set_context({"warmup": True})
        pool.map(_noop_cell, [{"i": i} for i in range(workers * 4)])

        probes = [{"i": i} for i in range(64)]
        start = time.perf_counter()
        pool.map(_noop_cell, probes)
        dispatch_wall = time.perf_counter() - start

        start = time.perf_counter()
        parallel = run_static_sweep(
            app, [ErmsScaler()], workers=workers, pool=pool, **grid
        )
        parallel_wall = time.perf_counter() - start
        # Stats of the sweep's own map: the real per-cell payload size.
        stats = pool.last_map_stats or {}

    identical = serial.rows == parallel.rows
    payload_bytes = stats.get("payload_bytes", 0)
    mapped_cells = stats.get("cells", 0)
    return {
        "workers": workers,
        "cpus": os.cpu_count() or 1,
        "cells": len(serial.rows),
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 2)
        if parallel_wall > 0
        else None,
        "rows_identical": identical,
        "dispatch_ms_per_cell": round(dispatch_wall / len(probes) * 1e3, 4),
        "payload_bytes_per_cell": round(payload_bytes / mapped_cells)
        if payload_bytes > 0 and mapped_cells
        else None,
        "chunksize": stats.get("chunksize"),
    }


def bench_allocation_throughput(seed: int = 0, quick: bool = False) -> dict:
    """Eq. 5 / §5.3.1 grid throughput: scalar vs memoized vs grid-batched.

    Times the allocation hot path over a (workload × SLA) grid of the
    Social Network application (36 microservices, 3 services) three ways:

    * ``scalar`` — memo off, merge-tree cache cleared before every call:
      the pre-optimization cost of one ``compute_service_targets`` per
      (service, cell).
    * ``memoized`` — the production path: cross-cell targets memo plus
      the merge-tree cache, warmed over the sweep.
    * ``grid`` — ``compute_targets_grid`` batching Eq. 5 across SLA
      columns and container counts across the workload axis, then
      materializing every cell.

    All three produce bit-identical per-cell results (asserted, reported
    as ``identical``).  A fourth section times interference-aware
    provisioner placements/releases through the incremental
    ``ClusterIndex`` in actions/sec.
    """
    from repro.core import (
        InfeasibleSLAError,
        InterferenceAwareProvisioner,
        clear_merge_cache,
        clear_targets_memo,
        compute_service_targets,
        compute_targets_grid,
        set_targets_memo,
    )
    from repro.core.provisioning import Cluster

    app = social_network()
    profiles = app.analytic_profiles()
    # Quick mode keeps the full grid: cells/sec amortizes memo misses
    # over the grid, so shrinking it would change the metric itself and
    # break the CI comparison against the tracked full-mode report.
    # The whole bench is sub-second; only the trial count drops.
    workloads = [2_500.0, 5_000.0, 10_000.0, 20_000.0, 40_000.0, 80_000.0]
    slas = [120.0, 160.0, 200.0, 250.0, 300.0, 400.0]
    trials = 1 if quick else 3
    # Specs are built outside the timed region: spec construction is not
    # part of the allocation path.
    cell_specs = [
        app.with_workloads(
            {service.name: w for service in app.services}, sla=sla
        )
        for w in workloads
        for sla in slas
    ]
    n_services = len(app.services)
    calls = len(cell_specs) * n_services

    def run_scalar() -> list:
        set_targets_memo(False)
        results = []
        for specs in cell_specs:
            for spec in specs:
                clear_merge_cache()  # pre-PR: every call built trees fresh
                try:
                    results.append(compute_service_targets(spec, profiles))
                except InfeasibleSLAError:
                    results.append(None)
        return results

    def run_memoized() -> list:
        set_targets_memo(True)
        clear_targets_memo()
        clear_merge_cache()
        results = []
        for specs in cell_specs:
            for spec in specs:
                try:
                    results.append(compute_service_targets(spec, profiles))
                except InfeasibleSLAError:
                    results.append(None)
        return results

    def run_grid() -> list:
        clear_targets_memo()
        clear_merge_cache()
        grids = [
            compute_targets_grid(spec, profiles, workloads, slas)
            for spec in cell_specs[0]
        ]
        results = []
        for wi in range(len(workloads)):
            for si in range(len(slas)):
                for grid in grids:
                    try:
                        results.append(grid.cell(wi, si))
                    except InfeasibleSLAError:
                        results.append(None)
        return results

    def best_of(fn):
        walls, last = [], None
        for _ in range(max(1, trials)):
            start = time.perf_counter()
            last = fn()
            walls.append(time.perf_counter() - start)
        return min(walls), last

    try:
        scalar_wall, scalar_rows = best_of(run_scalar)
        memo_wall, memo_rows = best_of(run_memoized)
        grid_wall, grid_rows = best_of(run_grid)
    finally:
        set_targets_memo(True)  # restore the production default
        clear_targets_memo()
        clear_merge_cache()

    def rows_equal(a, b) -> bool:
        if len(a) != len(b):
            return False
        for left, right in zip(a, b):
            if (left is None) != (right is None):
                return False
            if left is None:
                continue
            if (
                left.targets != right.targets
                or left.containers != right.containers
                or left.workloads != right.workloads
                or left.merged_intercept != right.merged_intercept
                or left.passes != right.passes
            ):
                return False
        return True

    identical = rows_equal(scalar_rows, memo_rows) and rows_equal(
        scalar_rows, grid_rows
    )

    # Provisioner throughput: place a full allocation onto a cluster with
    # skewed background load, then halve it (releases), through the
    # incremental ClusterIndex.
    cluster = Cluster.homogeneous(24)
    for i, host in enumerate(cluster.hosts):
        host.background_cpu = (i % 7) * 2.0
        host.background_memory_mb = (i % 5) * 2_000.0
    cluster.register(profiles)
    desired = {}
    for row in memo_rows:
        if row is None:
            continue
        for name, count in row.containers.items():
            desired[name] = max(desired.get(name, 0), count)
    provisioner = InterferenceAwareProvisioner()
    start = time.perf_counter()
    plan_up = provisioner.apply(cluster, desired)
    plan_down = provisioner.apply(
        cluster, {name: count // 2 for name, count in desired.items()}
    )
    provisioner_wall = time.perf_counter() - start
    actions = len(plan_up.actions) + len(plan_down.actions)

    return {
        "grid_workloads": len(workloads),
        "grid_slas": len(slas),
        "services": n_services,
        "calls": calls,
        "scalar_wall_s": round(scalar_wall, 4),
        "memoized_wall_s": round(memo_wall, 4),
        "grid_wall_s": round(grid_wall, 4),
        "scalar_cells_per_sec": round(calls / scalar_wall, 1),
        "memoized_cells_per_sec": round(calls / memo_wall, 1),
        "grid_cells_per_sec": round(calls / grid_wall, 1),
        "memoized_speedup": round(scalar_wall / memo_wall, 2),
        "grid_speedup": round(scalar_wall / grid_wall, 2),
        "identical": identical,
        "provisioner_hosts": len(cluster.hosts),
        "provisioner_actions": actions,
        "provisioner_wall_s": round(provisioner_wall, 4),
        "provisioner_actions_per_sec": round(actions / provisioner_wall, 1)
        if provisioner_wall > 0
        else None,
    }


def bench_telemetry_overhead(
    duration_min: float = 1.0, seed: int = 7, trials: int = 3,
    quick: bool = False,
) -> dict:
    """Saturation scenario, telemetry disabled vs fully enabled.

    The disabled run is the plain engine (one ``is None`` branch per hot
    loop); the enabled run attaches a sink with span emission at 100 %
    sampling, the live MetricsStore, and window ticks — the most
    expensive configuration.  Best-of-N on both sides, like
    ``bench_saturation``.
    """
    from repro.telemetry import TelemetryConfig, TelemetrySink

    if quick:
        duration_min, trials = 0.5, 2
    graph = DependencyGraph("svc", call("B"))
    spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)

    def run_once(sink):
        simulator = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
            containers={"B": 1},
            rates={"svc": 45_000.0},
            config=SimulationConfig(
                duration_min=duration_min, warmup_min=0.25, seed=seed
            ),
            telemetry=sink,
        )
        start = time.perf_counter()
        result = simulator.run()
        return time.perf_counter() - start, result

    disabled_runs = [run_once(None) for _ in range(max(1, trials))]
    enabled_runs = [
        # A sink serves exactly one run; max_traces=0 measures the full
        # span-emission cost without unbounded retention.
        run_once(
            TelemetrySink(
                config=TelemetryConfig(window_min=0.25, max_traces=0)
            )
        )
        for _ in range(max(1, trials))
    ]
    disabled_wall, disabled_result = min(disabled_runs, key=lambda p: p[0])
    enabled_wall, enabled_result = min(enabled_runs, key=lambda p: p[0])
    disabled_eps = disabled_result.events_processed / disabled_wall
    enabled_eps = enabled_result.events_processed / enabled_wall
    return {
        "disabled_events_per_sec": round(disabled_eps, 1),
        "enabled_events_per_sec": round(enabled_eps, 1),
        "overhead_pct": round((1.0 - enabled_eps / disabled_eps) * 100.0, 2),
        "disabled_wall_s": round(disabled_wall, 4),
        "enabled_wall_s": round(enabled_wall, 4),
    }


def bench_tail_sampling(
    duration_min: float = 1.0, seed: int = 7, trials: int = 3,
    quick: bool = False,
) -> dict:
    """Tail-based sampling versus full trace retention.

    Three saturation runs: telemetry disabled (reference, and the source
    of the P95 threshold), full sampling (every trace materialized), and
    tail-based sampling at the disabled run's P95.  Reports both
    overhead percentages and the tail run's keep fraction — the headline
    claim is that tail sampling keeps the span pipeline well below the
    full-retention cost while still catching every slow trace.
    """
    import numpy as np

    from repro.telemetry import TelemetryConfig, TelemetrySink

    if quick:
        duration_min, trials = 0.5, 2
    graph = DependencyGraph("svc", call("B"))
    spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)

    def run_once(sink):
        simulator = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
            containers={"B": 1},
            rates={"svc": 45_000.0},
            config=SimulationConfig(
                duration_min=duration_min, warmup_min=0.25, seed=seed
            ),
            telemetry=sink,
        )
        start = time.perf_counter()
        result = simulator.run()
        return time.perf_counter() - start, result, sink

    disabled_runs = [run_once(None) for _ in range(max(1, trials))]
    disabled_wall, disabled_result, _ = min(disabled_runs, key=lambda p: p[0])
    threshold = float(
        np.percentile(disabled_result.latencies("svc"), 95.0)
    )

    full_runs = [
        run_once(TelemetrySink(config=TelemetryConfig(window_min=0.25)))
        for _ in range(max(1, trials))
    ]
    tail_runs = [
        run_once(
            TelemetrySink(
                config=TelemetryConfig(
                    window_min=0.25, tail_threshold_ms=threshold, seed=seed
                )
            )
        )
        for _ in range(max(1, trials))
    ]
    full_wall, full_result, _ = min(full_runs, key=lambda p: p[0])
    tail_wall, tail_result, tail_sink = min(tail_runs, key=lambda p: p[0])
    disabled_eps = disabled_result.events_processed / disabled_wall
    full_eps = full_result.events_processed / full_wall
    tail_eps = tail_result.events_processed / tail_wall
    keep_fraction = (
        tail_sink.kept_traces / tail_sink.sampled_traces
        if tail_sink.sampled_traces
        else 0.0
    )
    return {
        "tail_threshold_ms": round(threshold, 3),
        "disabled_events_per_sec": round(disabled_eps, 1),
        "full_events_per_sec": round(full_eps, 1),
        "tail_events_per_sec": round(tail_eps, 1),
        "full_overhead_pct": round((1.0 - full_eps / disabled_eps) * 100.0, 2),
        "tail_overhead_pct": round((1.0 - tail_eps / disabled_eps) * 100.0, 2),
        "keep_fraction": round(keep_fraction, 4),
        "traces_kept": tail_sink.kept_traces,
        "traces_sampled": tail_sink.sampled_traces,
    }


def bench_analysis_throughput(seed: int = 7, quick: bool = False) -> dict:
    """Post-run analysis speed: critical-path extraction + blame.

    Collects the saturation scenario's traces once, then times
    ``extract_critical_path`` over every trace and a full
    ``attribute_blame`` pass, reporting traces analyzed per second —
    the cost of the analytics layer relative to trace volume.
    """
    from repro.telemetry import TelemetryConfig, TelemetrySink
    from repro.telemetry.analysis import attribute_blame, extract_critical_path

    graph = DependencyGraph("svc", call("B"))
    spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)
    sink = TelemetrySink(config=TelemetryConfig(window_min=0.25))
    ClusterSimulator(
        [spec],
        {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
        containers={"B": 1},
        rates={"svc": 45_000.0},
        config=SimulationConfig(
            duration_min=0.5 if quick else 1.0, warmup_min=0.25, seed=seed
        ),
        telemetry=sink,
    ).run()
    traces = sink.traces
    start = time.perf_counter()
    for trace in traces:
        extract_critical_path(trace)
    path_wall = time.perf_counter() - start
    start = time.perf_counter()
    report = attribute_blame(
        traces, targets={"svc": {"B": 10.0}}, slas={"svc": 40.0}
    )
    blame_wall = time.perf_counter() - start
    n = len(traces)
    return {
        "traces": n,
        "critical_path_traces_per_sec": round(n / path_wall, 1)
        if path_wall > 0
        else None,
        "blame_traces_per_sec": round(n / blame_wall, 1)
        if blame_wall > 0
        else None,
        "blame_entries": len(report.entries),
        "violating_windows": len(report.violating_windows),
    }


def bench_resilience_overhead(
    duration_min: float = 1.0, seed: int = 7, trials: int = 3,
    quick: bool = False,
) -> dict:
    """Saturation scenario, resilience absent vs full policy stack.

    The disabled run is the plain engine — when no chaos schedule or
    policy bundle is attached, the resilience layer adds exactly one
    ``is not None`` branch per arrival and per fan-out, so its
    events/sec must track ``bench_saturation``.  The enabled run
    attaches a chaos schedule (an error window plus a latency spike on
    the single microservice; a crash would be skipped on a one-container
    rotation) and the default retry/timeout/breaker/admission bundle, so
    every request crosses the policy machinery and a fault actually
    exercises retries.  Best-of-N on both sides, like
    ``bench_saturation``.
    """
    from repro.resilience import (
        ChaosSchedule,
        ErrorWindow,
        LatencySpike,
        ResiliencePolicies,
    )

    if quick:
        duration_min, trials = 0.5, 2
    graph = DependencyGraph("svc", call("B"))
    spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)
    mid = duration_min / 2.0
    chaos = ChaosSchedule(
        error_windows=[ErrorWindow("B", mid, mid + 0.1, 0.05)],
        latency_spikes=[LatencySpike("B", mid + 0.15, mid + 0.25, 1.5)],
        seed=seed,
    )

    def run_once(enabled):
        simulator = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
            containers={"B": 1},
            rates={"svc": 45_000.0},
            config=SimulationConfig(
                duration_min=duration_min, warmup_min=0.25, seed=seed
            ),
            chaos=chaos if enabled else None,
            resilience=ResiliencePolicies.default(seed=seed)
            if enabled
            else None,
        )
        start = time.perf_counter()
        result = simulator.run()
        return time.perf_counter() - start, result

    disabled_runs = [run_once(False) for _ in range(max(1, trials))]
    enabled_runs = [run_once(True) for _ in range(max(1, trials))]
    disabled_wall, disabled_result = min(disabled_runs, key=lambda p: p[0])
    enabled_wall, enabled_result = min(enabled_runs, key=lambda p: p[0])
    disabled_eps = disabled_result.events_processed / disabled_wall
    enabled_eps = enabled_result.events_processed / enabled_wall
    stats = enabled_result.resilience or {}
    return {
        "disabled_events_per_sec": round(disabled_eps, 1),
        "enabled_events_per_sec": round(enabled_eps, 1),
        "overhead_pct": round((1.0 - enabled_eps / disabled_eps) * 100.0, 2),
        "disabled_wall_s": round(disabled_wall, 4),
        "enabled_wall_s": round(enabled_wall, 4),
        "enabled_retries": stats.get("retries", 0),
        "enabled_chaos_errors": stats.get("errors_injected", 0),
    }


def bench_tsdb_overhead(
    duration_min: float = 1.0, seed: int = 7, trials: int = 3,
    quick: bool = False,
) -> dict:
    """Saturation scenario, embedded TSDB absent vs scraping aggressively.

    The disabled run attaches no telemetry sink at all — the engine's
    telemetry guard is a single ``is not None`` branch, so its
    events/sec must track ``bench_saturation`` (gated within 5 % in
    ``test_perf_bench`` and ``compare.py``).  The enabled run attaches a
    full sink plus a :class:`TimeSeriesStore` scraping every 0.05
    simulated minutes with a small rules file evaluated at every scrape,
    measuring the worst-case cost of the monitoring loop.  Best-of-N on
    both sides, like ``bench_saturation``.
    """
    from repro.telemetry import (
        TelemetryConfig,
        TelemetrySink,
        TimeSeriesConfig,
        TimeSeriesStore,
    )

    if quick:
        duration_min, trials = 0.5, 2
    graph = DependencyGraph("svc", call("B"))
    spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)
    rules = {
        "rules": [
            {"record": "p95_smoothed",
             "expr": 'avg_over_time(e2e_latency_ms{stat="p95"}[0.25m])'},
            {"alert": "HighP95",
             "expr": 'e2e_latency_ms{stat="p95"}',
             "op": ">", "threshold": 60.0, "for": 0.1},
        ]
    }

    def run_once(enabled):
        sink = None
        if enabled:
            sink = TelemetrySink(
                config=TelemetryConfig(
                    window_min=0.25, spans=False, max_traces=0
                ),
                timeseries=TimeSeriesStore(
                    TimeSeriesConfig(scrape_interval_min=0.05), rules=rules
                ),
            )
        simulator = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
            containers={"B": 1},
            rates={"svc": 45_000.0},
            config=SimulationConfig(
                duration_min=duration_min, warmup_min=0.25, seed=seed
            ),
            telemetry=sink,
        )
        start = time.perf_counter()
        result = simulator.run()
        return time.perf_counter() - start, result, sink

    disabled_runs = [run_once(False) for _ in range(max(1, trials))]
    enabled_runs = [run_once(True) for _ in range(max(1, trials))]
    disabled_wall, disabled_result, _ = min(disabled_runs, key=lambda p: p[0])
    enabled_wall, enabled_result, sink = min(enabled_runs, key=lambda p: p[0])
    disabled_eps = disabled_result.events_processed / disabled_wall
    enabled_eps = enabled_result.events_processed / enabled_wall
    store = sink.timeseries
    return {
        "disabled_events_per_sec": round(disabled_eps, 1),
        "enabled_events_per_sec": round(enabled_eps, 1),
        "overhead_pct": round((1.0 - enabled_eps / disabled_eps) * 100.0, 2),
        "disabled_wall_s": round(disabled_wall, 4),
        "enabled_wall_s": round(enabled_wall, 4),
        "scrapes": store.scrapes,
        "series": len(store.series),
        "samples": store.total_samples,
    }


def bench_serve_overhead(
    duration_min: float = 1.0, seed: int = 7, trials: int = 3,
    quick: bool = False,
) -> dict:
    """Saturation scenario, observability server absent vs being polled.

    The disabled run is the bare engine — no sink, no server — so its
    events/sec must track ``bench_saturation`` (gated within 5 % in
    ``test_perf_bench`` and ``compare.py``): a run that never opts in
    pays nothing for the serving layer existing.  The enabled run
    attaches a sink + TSDB, starts an :class:`ObservabilityServer`, and
    hammers it from a client thread (``/metrics`` and ``/api/query``
    alternating, ~100 req/s) for the whole run — the cost of being
    scraped aggressively while simulating.  Best-of-N on both sides.
    """
    import threading
    import urllib.request

    from repro.telemetry import (
        TelemetryConfig,
        TelemetrySink,
        TimeSeriesConfig,
        TimeSeriesStore,
    )
    from repro.telemetry.serve import ObservabilityServer, RunSource

    if quick:
        duration_min, trials = 0.5, 2
    graph = DependencyGraph("svc", call("B"))
    spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)

    def run_once(enabled):
        sink = None
        if enabled:
            sink = TelemetrySink(
                config=TelemetryConfig(
                    window_min=0.25, spans=False, max_traces=0
                ),
                timeseries=TimeSeriesStore(
                    TimeSeriesConfig(scrape_interval_min=0.05)
                ),
            )
        simulator = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
            containers={"B": 1},
            rates={"svc": 45_000.0},
            config=SimulationConfig(
                duration_min=duration_min, warmup_min=0.25, seed=seed
            ),
            telemetry=sink,
        )
        server = client = stop = None
        served = [0]
        if enabled:
            source = RunSource(sink, simulator=simulator, specs=[spec])
            server = ObservabilityServer(source).start()
            stop = threading.Event()
            urls = [
                server.url + "/metrics",
                server.url + "/api/query?expr=queue_depth",
            ]

            def hammer():
                i = 0
                while not stop.is_set():
                    try:
                        with urllib.request.urlopen(
                            urls[i % len(urls)], timeout=5
                        ) as response:
                            response.read()
                        served[0] += 1
                    except OSError:
                        pass
                    i += 1
                    stop.wait(0.01)

            client = threading.Thread(target=hammer, daemon=True)
            client.start()
        start = time.perf_counter()
        result = simulator.run()
        wall = time.perf_counter() - start
        if enabled:
            stop.set()
            client.join(timeout=10)
            server.stop()
        return wall, result, served[0]

    disabled_runs = [run_once(False) for _ in range(max(1, trials))]
    enabled_runs = [run_once(True) for _ in range(max(1, trials))]
    disabled_wall, disabled_result, _ = min(disabled_runs, key=lambda p: p[0])
    enabled_wall, enabled_result, served = min(
        enabled_runs, key=lambda p: p[0]
    )
    disabled_eps = disabled_result.events_processed / disabled_wall
    enabled_eps = enabled_result.events_processed / enabled_wall
    return {
        "disabled_events_per_sec": round(disabled_eps, 1),
        "enabled_events_per_sec": round(enabled_eps, 1),
        "overhead_pct": round((1.0 - enabled_eps / disabled_eps) * 100.0, 2),
        "disabled_wall_s": round(disabled_wall, 4),
        "enabled_wall_s": round(enabled_wall, 4),
        "requests_served": served,
    }


BENCHMARKS = {
    "saturation": bench_saturation,
    "static_cell": bench_static_cell,
    "trace_slice": bench_trace_slice,
    "allocation_throughput": bench_allocation_throughput,
    "parallel_grid": bench_parallel_grid,
    "telemetry_overhead": bench_telemetry_overhead,
    "tail_sampling": bench_tail_sampling,
    "analysis_throughput": bench_analysis_throughput,
    "resilience_overhead": bench_resilience_overhead,
    "tsdb_overhead": bench_tsdb_overhead,
    "serve_overhead": bench_serve_overhead,
}


def run_suite(
    only=None, output: pathlib.Path = None, quick: bool = False
) -> dict:
    """Run the suite and write ``BENCH_des.json``; returns the report."""
    report = {"schema": 1, "mode": "quick" if quick else "full", "benchmarks": {}}
    for name, fn in BENCHMARKS.items():
        if only and name not in only:
            continue
        print(f"[perf] {name} ...", flush=True)
        report["benchmarks"][name] = fn(quick=quick)
        print(f"[perf]   {report['benchmarks'][name]}", flush=True)

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        report["baseline"] = baseline
        base_sat = baseline.get("benchmarks", {}).get("saturation", {})
        cur_sat = report["benchmarks"].get("saturation", {})
        if base_sat.get("events_per_sec") and cur_sat.get("events_per_sec"):
            report["saturation_speedup_vs_seed"] = round(
                cur_sat["events_per_sec"] / base_sat["events_per_sec"], 2
            )

    out = output or (REPO_ROOT / "BENCH_des.json")
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[perf] wrote {out}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(BENCHMARKS),
        help="run a subset of benchmarks",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, help="output path (default BENCH_des.json)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: shorter runs, smaller grids; rate metrics "
        "stay comparable to full mode, wall-clock fields do not",
    )
    args = parser.parse_args(argv)
    run_suite(only=args.only, output=args.output, quick=args.quick)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
