"""Tracked performance benchmark suite for the DES engine and experiment layer.

Run ``PYTHONPATH=src python benchmarks/perf/runner.py`` to time the
canonical configurations and refresh ``BENCH_des.json`` at the repo root.
"""
