"""Fig. 5 / §2.3 — resource usage under microservice multiplexing.

Paper: two services share postStorage (P); service 1's upstream U is more
workload-sensitive than service 2's H.  At 40k req/min each and SLA 300ms:
FCFS sharing needs 10.5 CPU cores, non-sharing 9, and Erms' priority
scheduling 7.5 — i.e. priority < non-sharing < FCFS.

Measured here: the same three schemes on the same scenario, resource usage
in CPU cores (containers x 0.1 core), plus the closed-form Theorem 1
quantities for the calibrated scenario.
"""

from repro.core import (
    ErmsScaler,
    ServiceSpec,
    SharedScenario,
    compute_service_targets,
    resource_usage_fcfs_sharing,
    resource_usage_non_sharing,
    resource_usage_priority_bound,
    scale_with_priorities,
)
from repro.experiments import format_table
from repro.graphs import DependencyGraph, call
from repro.workloads import analytic_profile

from conftest import run_once

# Higher workload than the paper's 40k so integer container rounding does
# not mask the ordering (our per-container capacities are coarser).
WORKLOAD = 150_000.0
SLA = 300.0
CPU_PER_CONTAINER = 0.1


def _specs_and_profiles():
    # Paper-scale scenario: 0.1-core containers, U (userTimeline) far more
    # workload-sensitive than H (homeTimeline); P (postStorage) shared.
    svc1 = ServiceSpec(
        "svc1",
        DependencyGraph(
            "svc1",
            call("user-timeline-service", stages=[[call("post-storage-service")]]),
        ),
        workload=WORKLOAD,
        sla=SLA,
    )
    svc2 = ServiceSpec(
        "svc2",
        DependencyGraph(
            "svc2",
            call("home-timeline-service", stages=[[call("post-storage-service")]]),
        ),
        workload=WORKLOAD,
        sla=SLA,
    )
    profiles = {
        "user-timeline-service": analytic_profile(
            "user-timeline-service", base_service_ms=50.0, threads=1
        ),
        "home-timeline-service": analytic_profile(
            "home-timeline-service", base_service_ms=15.0, threads=2
        ),
        "post-storage-service": analytic_profile(
            "post-storage-service", base_service_ms=25.0, threads=2
        ),
    }
    return [svc1, svc2], profiles


def _run():
    specs, profiles = _specs_and_profiles()

    # (1) FCFS sharing: min target, combined workload at P.
    fcfs = ErmsScaler(use_priority=False).scale(specs, profiles)

    # (2) Non-sharing: P's containers partitioned per service.
    non_sharing_total = 0
    for spec in specs:
        result = compute_service_targets(spec, profiles)
        non_sharing_total += sum(result.containers.values())

    # (3) Erms priority scheduling.
    priority = scale_with_priorities(specs, profiles)
    priority_total = sum(priority.containers().values())

    return {
        "fcfs_sharing": fcfs.total_containers(),
        "non_sharing": non_sharing_total,
        "priority": priority_total,
    }


def test_fig05_multiplexing_cores(benchmark, report):
    totals = run_once(benchmark, _run)

    rows = [
        {
            "scheme": name,
            "containers": count,
            "cpu_cores": count * CPU_PER_CONTAINER,
        }
        for name, count in totals.items()
    ]
    report(
        "fig05_multiplexing_cores",
        format_table(rows, "Fig. 5 - multiplexing schemes (paper: 10.5 / 9 / 7.5 cores)"),
    )

    # The paper's ordering: priority < non-sharing < FCFS sharing.
    assert totals["priority"] < totals["non_sharing"]
    assert totals["non_sharing"] <= totals["fcfs_sharing"]


def test_fig05_theorem1_closed_forms(benchmark, report):
    """The analytic counterpart (Appendix A) on the same scenario shape."""

    def _closed_forms():
        scenario = SharedScenario(
            a_u=4.0, a_h=0.8, a_p=1.0,
            r_u=1.0, r_h=1.0, r_p=1.0,
            gamma1=WORKLOAD, gamma2=WORKLOAD,
            budget=SLA - 12.0,
        )
        return {
            "RU_fcfs_sharing": resource_usage_fcfs_sharing(scenario),
            "RU_non_sharing": resource_usage_non_sharing(scenario),
            "RU_priority_bound": resource_usage_priority_bound(scenario),
        }

    values = run_once(benchmark, _closed_forms)
    rows = [{"quantity": k, "resource_usage": v} for k, v in values.items()]
    report(
        "fig05_theorem1_closed_forms",
        format_table(rows, "Theorem 1 closed forms (Eqs. 17-19)"),
    )
    assert (
        values["RU_priority_bound"]
        <= values["RU_non_sharing"]
        <= values["RU_fcfs_sharing"]
    )
