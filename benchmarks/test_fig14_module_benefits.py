"""Fig. 14 — contribution of Erms' individual modules.

Paper (a): with priority scheduling disabled (default FCFS at shared
microservices), Latency Target Computation alone still outperforms Firm,
GrandSLAm and Rhythm by 19% / 35.8% / 33.4% on average.
Paper (b): adding priority scheduling saves Erms a further ~20% of
containers, whereas bolting priority scheduling onto GrandSLAm or Rhythm
yields <5% because they do not recompute latency targets.

Measured here: the same static grid with (a) erms-fcfs vs baselines and
(b) each scheme with and without priority scheduling.
"""

import numpy as np

from repro.baselines import Firm, GrandSLAm, Rhythm
from repro.core import ErmsScaler
from repro.experiments import format_table, run_static_sweep
from repro.workloads import social_network

from conftest import run_once

WORKLOADS = [5_000.0, 20_000.0, 50_000.0, 80_000.0, 100_000.0]
SLAS = [120.0, 200.0, 300.0]


def _run():
    app = social_network()
    schemes = [
        ErmsScaler(),  # full Erms (LTC + priority)
        ErmsScaler(use_priority=False),  # LTC only (Fig. 14a)
        GrandSLAm(),
        GrandSLAm(use_priority=True),
        Rhythm(),
        Rhythm(use_priority=True),
        Firm(),
    ]
    return run_static_sweep(
        app, schemes, workloads=WORKLOADS, slas=SLAS, simulate=False
    )


def test_fig14_module_benefits(benchmark, report):
    sweep = run_once(benchmark, _run)

    averages = {s: sweep.average_containers(s) for s in sweep.schemes()}
    rows = [
        {"scheme": scheme, "avg_containers": value}
        for scheme, value in averages.items()
    ]

    def priority_benefit(with_priority, without):
        return 1.0 - averages[with_priority] / averages[without]

    benefits = [
        {
            "scheme": "erms",
            "priority_benefit": priority_benefit("erms", "erms-fcfs"),
        },
        {
            "scheme": "grandslam",
            "priority_benefit": priority_benefit(
                "grandslam+priority", "grandslam"
            ),
        },
        {
            "scheme": "rhythm",
            "priority_benefit": priority_benefit("rhythm+priority", "rhythm"),
        },
    ]
    table = format_table(rows, "Fig. 14a - average containers per scheme")
    table += "\n" + format_table(
        benefits,
        "Fig. 14b - benefit of priority scheduling (paper: ~20% Erms, <5% others)",
        "{:.3f}",
    )
    report("fig14_module_benefits", table)

    # Fig. 14a: LTC alone is competitive with every baseline and clearly
    # ahead of Rhythm and Firm (paper: 19-35.8% ahead of all).
    ltc = averages["erms-fcfs"]
    assert ltc <= averages["rhythm"] * 0.8
    assert ltc <= averages["firm"] * 1.0
    assert ltc <= averages["grandslam"] * 1.15

    # Fig. 14b: priority scheduling helps Erms substantially because the
    # latency targets are recomputed under the modified workloads...
    erms_benefit = priority_benefit("erms", "erms-fcfs")
    assert erms_benefit >= 0.03
    # ...whereas for GrandSLAm/Rhythm it is marginal (<5%): their targets
    # are unchanged, so the allocation barely moves.
    assert abs(priority_benefit("grandslam+priority", "grandslam")) < 0.05
    assert abs(priority_benefit("rhythm+priority", "rhythm")) < 0.05
    # And the benefit Erms gets exceeds what the baselines get.
    assert erms_benefit > priority_benefit("grandslam+priority", "grandslam")
