"""Fig. 15 — benefit of interference-aware provisioning.

Paper: against the Kubernetes default scheduler (interference-blind
spreading), Erms' provisioning module needs up to 50% fewer containers to
satisfy the SLA (2x at high SLA), and at equal container counts improves
end-to-end latency by 1.2x on average (2.2x under high interference).

Measured here: the same logical allocation placed by both provisioners on
a cluster where some hosts carry heavy batch background load; per-host
utilization sets each container's service-time multiplier; allocations
grow until the simulated violation rate clears the threshold.
"""

from repro.core import (
    ErmsScaler,
    InterferenceAwareProvisioner,
    KubernetesDefaultProvisioner,
)
from repro.experiments import format_table, run_interference_comparison
from repro.workloads import social_network

from conftest import run_once


def _run():
    app = social_network()
    return run_interference_comparison(
        app,
        scaler=ErmsScaler(),
        provisioners=[
            InterferenceAwareProvisioner(),
            KubernetesDefaultProvisioner(),
        ],
        workload=8_000.0,
        sla=250.0,
        hosts=8,
        background=((26.0, 52_000.0),) * 3,  # 3 hosts nearly full of batch
        duration_min=1.0,
        seed=9,
    )


def test_fig15_provisioning(benchmark, report):
    result = run_once(benchmark, _run)

    report(
        "fig15_provisioning",
        format_table(
            result.rows,
            "Fig. 15 - interference-aware vs K8s-default provisioning",
        ),
    )

    aware = "erms-interference-aware"
    default = "k8s-default"
    # Fig. 15a: the interference-blind placement needs at least as many
    # containers to satisfy the SLA.
    assert result.containers_needed[aware] <= result.containers_needed[default]
    # Fig. 15b: at equal containers, aware placement delivers better tail
    # latency.
    assert (
        result.p95_equal_containers[aware]
        <= result.p95_equal_containers[default]
    )
    # The mechanism: aware placement balances utilization across hosts.
    assert result.imbalance[aware] <= result.imbalance[default] + 1e-9
