"""Ablation — which shared resources the interference model needs (§5.2/§9).

Paper §5.2: "CPU and memory utilization alone are sufficient for
achieving good profiling performance" — but the model "can be easily
extended to include various shared resources, including memory bandwidth,
LLC, and network bandwidth", which §9 defers to future work.  Both halves
are measured here with the generalized model: on a workload whose
interference is CPU/memory-dominated the extra features buy nothing,
while on a memory-bandwidth-bound workload they matter.
"""

from repro.experiments import format_table
from repro.profiling import accuracy_score, fit_extended_model

from conftest import run_once

from test_ablation_support import extended_synthetic_samples, split_extended

REGIMES = {
    # The paper's claim: typical e-commerce/web microservices.
    "cpu-mem dominated": 0.0,
    # The §9 case for the extension: bandwidth-bound colocation.
    "mbw dominated": 2.0,
}


def _run():
    rows = []
    for label, mbw_weight in REGIMES.items():
        train, test = split_extended(
            extended_synthetic_samples(mbw_weight=mbw_weight, seed=31)
        )
        full = fit_extended_model(train[0], train[1], train[2])
        reduced = fit_extended_model(
            train[0],
            {"cpu": train[1]["cpu"], "memory": train[1]["memory"]},
            train[2],
        )
        acc_full = accuracy_score(test[2], full.predict(test[0], test[1]))
        acc_reduced = accuracy_score(
            test[2],
            reduced.predict(
                test[0],
                {"cpu": test[1]["cpu"], "memory": test[1]["memory"]},
            ),
        )
        rows.append(
            {
                "regime": label,
                "cpu+mem accuracy": acc_reduced,
                "cpu+mem+mbw accuracy": acc_full,
                "gain_from_mbw": acc_full - acc_reduced,
            }
        )
    return rows


def test_ablation_interference_features(benchmark, report):
    rows = run_once(benchmark, _run)
    report(
        "ablation_interference_features",
        format_table(rows, "Ablation - interference feature set", "{:.3f}"),
    )
    by_regime = {row["regime"]: row for row in rows}
    # §5.2's claim: cpu+mem suffice on typical workloads.
    typical = by_regime["cpu-mem dominated"]
    assert typical["cpu+mem accuracy"] >= 0.75
    assert abs(typical["gain_from_mbw"]) <= 0.1
    # §9's case: the extension pays when bandwidth drives interference.
    bandwidth = by_regime["mbw dominated"]
    assert bandwidth["gain_from_mbw"] > 0.03
