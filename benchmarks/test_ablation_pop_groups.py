"""Ablation — POP host-group decomposition in provisioning (paper §5.4).

Erms keeps placement tractable by statically partitioning hosts into
groups and solving each small subproblem (the POP technique).  This
ablation sweeps the group count on a skewed-background cluster and
measures the imbalance objective and per-decision cost: more groups make
decisions cheaper but slightly less balanced — the POP trade-off.
"""

import time

from repro.core import (
    Cluster,
    ContainerSpec,
    InterferenceAwareProvisioner,
)
from repro.experiments import format_table

from conftest import run_once

HOSTS = 16
CONTAINERS = 200


def _cluster():
    cluster = Cluster.homogeneous(HOSTS)
    # Skewed batch background: first quarter of the hosts heavily loaded.
    for index in range(HOSTS // 4):
        cluster.hosts[index].background_cpu = 24.0
        cluster.hosts[index].background_memory_mb = 48_000.0
    cluster.sizes["ms"] = ContainerSpec(cpu=0.5, memory_mb=1_000.0)
    return cluster


def _run():
    rows = []
    for groups in (1, 2, 4, 8):
        cluster = _cluster()
        provisioner = InterferenceAwareProvisioner(groups=groups)
        start = time.perf_counter()
        provisioner.apply(cluster, {"ms": CONTAINERS})
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        rows.append(
            {
                "pop_groups": groups,
                "imbalance": cluster.imbalance(),
                "placement_time_ms": elapsed_ms,
                "placed": cluster.placement()["ms"],
            }
        )
    return rows


def test_ablation_pop_groups(benchmark, report):
    rows = run_once(benchmark, _run)
    report(
        "ablation_pop_groups",
        format_table(rows, "Ablation - POP group count in provisioning"),
    )
    by_groups = {row["pop_groups"]: row for row in rows}
    # Every configuration places the full demand.
    for row in rows:
        assert row["placed"] == CONTAINERS
    # The global solve (1 group) achieves the best balance...
    best = by_groups[1]["imbalance"]
    assert all(row["imbalance"] >= best - 1e-9 for row in rows)
    # ...and decomposition keeps quality close (POP's selling point):
    # within 2.5x of the global objective even with 8 groups.
    assert by_groups[8]["imbalance"] <= max(best, 0.2) * 2.5 + 1.0
