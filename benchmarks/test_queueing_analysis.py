"""§2.3's queueing analysis — sharing vs non-sharing, theory vs simulation.

Paper: "We also build an M/M/1 queue to analyze the processing time at P
under these two different schemes.  Indeed, the theoretical result
validates sharing is better for the achieved mean processing time when
fixing the resource usage" — the apparent paradox that motivates priority
scheduling (sharing wins on mean time, loses under SLA-driven scaling).

Measured here: the closed-form comparison across workload mixes, plus a
cross-validation of the analytic M/M/c mean response against the
discrete-event simulator.
"""

import numpy as np

from repro.core.model import ServiceSpec
from repro.experiments import format_table
from repro.graphs import DependencyGraph, call
from repro.queueing import MMc, sharing_vs_partitioning
from repro.simulator import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)

from conftest import run_once

MEAN_SERVICE_MS = 5.0
SERVERS = 4


def _run():
    rows = []
    for rate1, rate2 in ((10_000.0, 10_000.0), (16_000.0, 8_000.0), (20_000.0, 20_000.0)):
        comparison = sharing_vs_partitioning(
            rate1, rate2, MEAN_SERVICE_MS, SERVERS
        )
        rows.append(
            {
                "rate1": rate1,
                "rate2": rate2,
                "shared_fcfs_ms": comparison.shared_fcfs,
                "fast_server_fcfs_ms": comparison.shared_fcfs_fast_server,
                "partitioned_ms": comparison.partitioned_mean,
                "priority_hot_ms": comparison.shared_priority_class1,
                "priority_cold_ms": comparison.shared_priority_class2,
            }
        )

    # Cross-validate one analytic point against the simulator.
    rate = 36_000.0
    queue = MMc.from_per_minute(rate, MEAN_SERVICE_MS, SERVERS)
    spec = ServiceSpec("svc", DependencyGraph("svc", call("P")), 0.0, 1e9)
    sim = ClusterSimulator(
        [spec],
        {"P": SimulatedMicroservice("P", base_service_ms=MEAN_SERVICE_MS, threads=SERVERS)},
        containers={"P": 1},
        rates={"svc": rate},
        config=SimulationConfig(duration_min=3.0, warmup_min=0.5, seed=12),
    ).run()
    validation = {
        "analytic_mean_ms": queue.mean_response(),
        "simulated_mean_ms": float(np.mean(sim.latencies("svc"))),
        "analytic_p95_ms": queue.response_percentile(95.0),
        "simulated_p95_ms": sim.tail_latency("svc"),
    }
    return rows, validation


def test_queueing_analysis(benchmark, report):
    rows, validation = run_once(benchmark, _run)

    table = format_table(rows, "§2.3 - sharing vs partitioning (mean response, ms)")
    table += "\n" + format_table(
        [validation], "M/M/c closed form vs discrete-event simulator"
    )
    report("queueing_analysis", table)

    # The paper's theoretical observation: at fixed resources, sharing
    # beats partitioning on mean processing time, for every mix.
    for row in rows:
        assert row["shared_fcfs_ms"] < row["partitioned_ms"]
        # Priority brackets its own FCFS reference (the aggregated fast
        # server): the hot class does better, the cold class worse.
        assert row["priority_hot_ms"] <= row["fast_server_fcfs_ms"] + 1e-9
        assert row["priority_cold_ms"] >= row["fast_server_fcfs_ms"] - 1e-9

    # Theory and simulator agree (both implementations are pinned down).
    assert validation["simulated_mean_ms"] == validation["analytic_mean_ms"] * \
        np.clip(validation["simulated_mean_ms"] / validation["analytic_mean_ms"], 0.85, 1.15)
    assert validation["simulated_p95_ms"] == validation["analytic_p95_ms"] * \
        np.clip(validation["simulated_p95_ms"] / validation["analytic_p95_ms"], 0.8, 1.2)
