"""Low-overhead metrics registry: counters, gauges, latency histograms.

The live telemetry layer mirrors what Prometheus client libraries give a
real deployment (paper §5.1): monotonically increasing counters, sampled
gauges, and fixed-bucket latency histograms that answer percentile
queries without retaining raw samples.  Everything is plain-Python and
allocation-free on the observation path — an ``observe()`` is one bisect
over a precomputed bucket table plus two float adds — so the enabled
telemetry path stays cheap and the disabled path costs nothing at all.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_buckets",
]


def default_latency_buckets() -> List[float]:
    """Log-spaced latency bucket upper bounds in milliseconds.

    Covers 0.5 ms to ~53 s with ~24 % resolution steps — the same shape
    Prometheus' ``histogram_buckets`` idiom uses for request latencies.
    """
    bounds = []
    bound = 0.5
    while bound < 60_000.0:
        bounds.append(round(bound, 4))
        bound *= 1.25
    return bounds


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written-value metric (queue depth, busy threads, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket latency histogram.

    Bucket ``i`` counts observations ``<= bounds[i]``; one overflow
    bucket catches the rest.  ``quantile()`` answers with the upper bound
    of the bucket containing the requested rank — the standard
    Prometheus ``histogram_quantile`` estimate, biased at most one
    bucket width high.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None):
        self.name = name
        self.bounds = list(bounds) if bounds is not None else default_latency_buckets()
        if sorted(self.bounds) != self.bounds or not self.bounds:
            raise ValueError("histogram bounds must be a non-empty sorted list")
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]  # overflow: best available bound
        return self.bounds[-1]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metric namespace: one flat dict per metric kind.

    Metrics are created on first touch (``counter("events")`` both
    registers and returns), so instrumentation sites never need set-up
    code.  ``snapshot()`` renders everything JSON-ready for run reports.
    """

    def __init__(self, latency_bounds: Optional[Sequence[float]] = None):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._latency_bounds = (
            list(latency_bounds) if latency_bounds is not None else None
        )

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, self._latency_bounds)
        return metric

    def snapshot(self) -> Dict:
        """JSON-ready view of every registered metric."""
        report: Dict = {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {},
        }
        for name, hist in sorted(self.histograms.items()):
            entry = {"count": hist.count, "sum": round(hist.sum, 6)}
            if hist.count:
                entry["mean"] = round(hist.mean, 6)
                entry["p50"] = hist.quantile(0.50)
                entry["p95"] = hist.quantile(0.95)
                entry["p99"] = hist.quantile(0.99)
            report["histograms"][name] = entry
        return report
