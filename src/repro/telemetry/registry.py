"""Low-overhead metrics registry: counters, gauges, latency histograms.

The live telemetry layer mirrors what Prometheus client libraries give a
real deployment (paper §5.1): monotonically increasing counters, sampled
gauges, and fixed-bucket latency histograms that answer percentile
queries without retaining raw samples.  Everything is plain-Python and
allocation-free on the observation path — an ``observe()`` is one bisect
over a precomputed bucket table plus two float adds — so the enabled
telemetry path stays cheap and the disabled path costs nothing at all.
"""

from __future__ import annotations

import hashlib
import re
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_buckets",
    "parse_prometheus_text",
]

#: Characters legal in a Prometheus metric name; everything else maps to "_".
_NAME_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a registry metric name into a Prometheus metric name."""
    sanitized = _NAME_ILLEGAL.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_float(value: float) -> str:
    """Render a sample value the way Prometheus clients do."""
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _exemplar_suffix(exemplar: Optional[Tuple[float, str]]) -> str:
    """OpenMetrics exemplar suffix for one bucket line ('' when absent)."""
    if exemplar is None:
        return ""
    value, trace_id = exemplar
    escaped = trace_id.replace("\\", "\\\\").replace('"', '\\"')
    return f' # {{trace_id="{escaped}"}} {_prom_float(value)}'


_EXEMPLAR_RE = re.compile(
    r'\s+#\s+\{trace_id="(?P<trace>(?:[^"\\]|\\.)*)"\}\s+(?P<value>\S+)\s*$'
)


def default_latency_buckets() -> List[float]:
    """Log-spaced latency bucket upper bounds in milliseconds.

    Covers 0.5 ms to ~53 s with ~24 % resolution steps — the same shape
    Prometheus' ``histogram_buckets`` idiom uses for request latencies.
    """
    bounds = []
    bound = 0.5
    while bound < 60_000.0:
        bounds.append(round(bound, 4))
        bound *= 1.25
    return bounds


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written-value metric (queue depth, busy threads, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket latency histogram.

    Bucket ``i`` counts observations ``<= bounds[i]``; one overflow
    bucket catches the rest.  ``quantile()`` answers with the upper bound
    of the bucket containing the requested rank — the standard
    Prometheus ``histogram_quantile`` estimate, biased at most one
    bucket width high.

    Buckets can carry OpenMetrics-style *exemplars*: one representative
    ``(value, trace_id)`` per bucket (latest wins), attached out-of-band
    via :meth:`attach_exemplar` so the ``observe()`` hot path stays a
    bisect plus two adds.  Exemplar storage is lazy — a histogram that
    never sees one allocates nothing extra.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "exemplars")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None):
        self.name = name
        self.bounds = list(bounds) if bounds is not None else default_latency_buckets()
        if sorted(self.bounds) != self.bounds or not self.bounds:
            raise ValueError("histogram bounds must be a non-empty sorted list")
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0.0
        #: bucket index -> (value, trace_id); lazily created.
        self.exemplars: Optional[Dict[int, Tuple[float, str]]] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def attach_exemplar(self, value: float, trace_id: str) -> None:
        """Link the bucket containing ``value`` to a trace (latest wins)."""
        if self.exemplars is None:
            self.exemplars = {}
        self.exemplars[bisect_left(self.bounds, value)] = (value, trace_id)

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]  # overflow: best available bound
        return self.bounds[-1]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metric namespace: one flat dict per metric kind.

    Metrics are created on first touch (``counter("events")`` both
    registers and returns), so instrumentation sites never need set-up
    code.  ``snapshot()`` renders everything JSON-ready for run reports.
    """

    def __init__(self, latency_bounds: Optional[Sequence[float]] = None):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._latency_bounds = (
            list(latency_bounds) if latency_bounds is not None else None
        )

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, self._latency_bounds)
        return metric

    def snapshot(self) -> Dict:
        """JSON-ready view of every registered metric."""
        report: Dict = {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {},
        }
        for name, hist in sorted(self.histograms.items()):
            entry = {"count": hist.count, "sum": round(hist.sum, 6)}
            if hist.count:
                entry["mean"] = round(hist.mean, 6)
                entry["p50"] = hist.quantile(0.50)
                entry["p95"] = hist.quantile(0.95)
                entry["p99"] = hist.quantile(0.99)
            report["histograms"][name] = entry
        return report

    def _exposed_families(self) -> Dict[Tuple[str, str], str]:
        """Collision-free exposed family name per (kind, registry name).

        Distinct registry names can sanitize to the same Prometheus name
        (``e2e_latency_ms.svc-a`` and ``e2e_latency_ms.svc_a`` both
        become ``e2e_latency_ms_svc_a``), which would emit duplicate
        ``# TYPE`` lines and silently merge series.  Walking metrics in
        exposition order (counters, gauges, histograms; each sorted by
        registry name), the first claimant keeps the plain sanitized
        name and every later collider gets a stable ``_<sha1[:8]>``
        suffix of its *original* name — deterministic regardless of
        registration order.
        """
        entries: List[Tuple[str, str, str]] = (
            [("counter", n, _prom_name(n) + "_total") for n in sorted(self.counters)]
            + [("gauge", n, _prom_name(n)) for n in sorted(self.gauges)]
            + [("histogram", n, _prom_name(n)) for n in sorted(self.histograms)]
        )

        def reserved(kind: str, family: str) -> List[str]:
            # A histogram family also owns its derived sample names — a
            # gauge literally named ``req_sum`` must not share a line
            # name with histogram ``req``'s ``req_sum`` sample.
            if kind == "histogram":
                return [family, f"{family}_bucket", f"{family}_sum",
                        f"{family}_count"]
            return [family]

        families: Dict[Tuple[str, str], str] = {}
        claimed: Dict[str, Tuple[str, str]] = {}
        for kind, raw, prom in entries:
            unique = prom
            digest = hashlib.sha1(raw.encode("utf-8")).hexdigest()
            length = 8
            while any(name in claimed for name in reserved(kind, unique)):
                unique = f"{prom}_{digest[:length]}"
                length *= 2
                if length > len(digest):
                    raise ValueError(
                        f"cannot disambiguate metric name {raw!r}"
                    )
            for name in reserved(kind, unique):
                claimed[name] = (kind, raw)
            families[(kind, raw)] = unique
        return families

    def expose_text(self) -> str:
        """Render every metric in Prometheus text exposition format.

        Counters are suffixed ``_total``; histograms emit cumulative
        ``_bucket{le="..."}`` series plus ``_sum`` and ``_count``, ending
        with the mandatory ``le="+Inf"`` bucket — the exact layout
        ``promtool`` and any Prometheus scraper accept.  Registry names
        containing characters illegal in Prometheus metric names (the
        sink's ``e2e_latency_ms.<service>`` histograms) are sanitized to
        underscores; sanitized-name collisions are disambiguated
        deterministically (see :meth:`_exposed_families`).
        """
        families = self._exposed_families()
        lines: List[str] = []
        for name, counter in sorted(self.counters.items()):
            prom = families[("counter", name)]
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_prom_float(counter.value)}")
        for name, gauge in sorted(self.gauges.items()):
            prom = families[("gauge", name)]
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_float(gauge.value)}")
        for name, hist in sorted(self.histograms.items()):
            prom = families[("histogram", name)]
            exemplars = hist.exemplars or {}
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for index, (bound, count) in enumerate(zip(hist.bounds, hist.counts)):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_prom_float(bound)}"}} {cumulative}'
                    + _exemplar_suffix(exemplars.get(index))
                )
            lines.append(
                f'{prom}_bucket{{le="+Inf"}} {hist.count}'
                + _exemplar_suffix(exemplars.get(len(hist.bounds)))
            )
            lines.append(f"{prom}_sum {_prom_float(hist.sum)}")
            lines.append(f"{prom}_count {hist.count}")
        return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus_text(text: str) -> Dict[str, Dict]:
    """Parse Prometheus text exposition back into a structured dict.

    The inverse of :meth:`MetricsRegistry.expose_text` (for round-trip
    tests and downstream tooling): returns ``{metric_name: {"type": ...,
    "value": ...}}`` for counters/gauges and ``{"type": "histogram",
    "buckets": {le: cumulative_count}, "sum": ..., "count": ...}`` for
    histograms.  Counter names keep their ``_total`` suffix, matching the
    exposition.

    OpenMetrics-style exemplar suffixes (``... # {trace_id="..."} 12.5``)
    on bucket lines are accepted and surfaced under the histogram's
    ``"exemplars"`` key as ``{le: {"trace_id": ..., "value": ...}}``;
    lines without one parse exactly as before.
    """
    metrics: Dict[str, Dict] = {}
    types: Dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        exemplar = None
        exemplar_match = _EXEMPLAR_RE.search(line)
        if exemplar_match is not None:
            exemplar = {
                "trace_id": exemplar_match.group("trace")
                .replace('\\"', '"')
                .replace("\\\\", "\\"),
                "value": float(exemplar_match.group("value")),
            }
            line = line[: exemplar_match.start()]
        name_part, _, value_part = line.rpartition(" ")
        value = float(value_part)
        if "{" in name_part:
            base, _, label_part = name_part.partition("{")
            labels = label_part.rstrip("}")
            metric = base[: -len("_bucket")] if base.endswith("_bucket") else base
            entry = metrics.setdefault(
                metric,
                {"type": types.get(metric, "histogram"), "buckets": {}},
            )
            if base.endswith("_bucket") and labels.startswith('le="'):
                le = float(labels[4:-1])
                entry["buckets"][le] = value
                if exemplar is not None:
                    entry.setdefault("exemplars", {})[le] = exemplar
        else:
            base = name_part
            declared = types.get(base)
            if declared is not None and declared != "histogram":
                # A standalone counter/gauge whose name literally ends
                # in _sum/_count: its own exact # TYPE declaration wins
                # over suffix-stripping into an unrelated histogram
                # sharing the prefix.
                metrics[base] = {"type": declared, "value": value}
                continue
            for suffix in ("_sum", "_count"):
                prefix = base[: -len(suffix)] if base.endswith(suffix) else None
                if prefix and types.get(prefix) == "histogram":
                    entry = metrics.setdefault(
                        prefix,
                        {"type": "histogram", "buckets": {}},
                    )
                    entry[suffix[1:]] = value
                    break
            else:
                metrics[base] = {
                    "type": types.get(base, "untyped"),
                    "value": value,
                }
    return metrics
