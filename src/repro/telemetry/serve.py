"""Live observability plane: in-process HTTP scrape/query server + SSE.

Erms's management loop is *online* — the controller and the operator
share one live monitoring plane (§5).  Every earlier surface in this
package (registry, TSDB, rules, dashboard, run reports) is post-hoc;
this module makes a running simulation observable like a production
service: an :class:`ObservabilityServer` attaches to a live run in a
background thread (stdlib ``http.server`` only, zero new deps) and
serves read-only snapshots of the run's telemetry:

=====================  ==================================================
``GET /metrics``       Prometheus text exposition (with OpenMetrics
                       exemplars linking buckets to trace ids)
``GET /api/query``     ``?expr=`` PromQL-shaped query over the live TSDB
``GET /api/series``    raw series dump with label filters
``GET /api/alerts``    SLA / error-budget / rule alert tails
``GET /api/decisions`` DecisionLog tail (autoscaler, chaos, breakers)
``GET /api/summary``   one-fetch run state (powers ``repro top``)
``GET /healthz``       liveness
``GET /readyz``        readiness (a source is bound)
``GET /events``        SSE stream: progress, alert fires, decision
                       records (breaker transitions, chaos injections)
``GET /``              live dashboard shell (re-renders on SSE ticks)
``GET /dashboard``     server-side-rendered dashboard body fragment
``POST /shutdown``     clean shutdown handshake
=====================  ==================================================

Determinism contract (the hard bar): the serving thread only ever
*reads* snapshots — append-only lists (monitor windows/alerts, decision
records), registry dicts, and TSDB deques.  It never takes a lock the
simulation needs, never writes sink state, and the sim clock never
blocks on it, so golden fingerprints are bit-identical with the server
attached (pinned in ``tests/test_serve.py``).  Concurrent mutation of a
dict/deque mid-iteration can raise ``RuntimeError`` in the *reader*;
:func:`_snapshot` retries the read — the writer is never disturbed.

Two sources share the endpoint surface: :class:`RunSource` wraps a live
:class:`~repro.telemetry.hooks.TelemetrySink` (plus the simulator for
progress), and :class:`ReplaySource` rebuilds the same views from an
archived ``repro report --output`` JSON — ``repro serve --replay`` puts
the full plane (minus live progress) in front of any saved run.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from repro.telemetry.monitor import (
    AlertEvent,
    DecisionLog,
    ErrorBudgetAlert,
    SLAMonitor,
    WindowStats,
)
from repro.telemetry.registry import Histogram, MetricsRegistry
from repro.telemetry.timeseries.store import parse_metric_name

__all__ = [
    "ObservabilityServer",
    "ReplaySource",
    "RunSource",
    "load_replay_source",
    "render_top",
]

_MS_PER_MINUTE = 60_000.0


def _snapshot(fn, retries: int = 10):
    """Run a read-only snapshot, retrying if the writer mutated mid-read.

    CPython raises ``RuntimeError`` when a dict or deque changes size
    during iteration; the simulation thread owns all writes, so the
    serving thread just backs off and re-reads.
    """
    for attempt in range(retries):
        try:
            return fn()
        except RuntimeError:
            if attempt == retries - 1:
                raise
            time.sleep(0.002)


class _ResultView:
    """Duck-typed ``SimulationResult`` stand-in for replayed runs."""

    def __init__(
        self, duration_min, warmup_min, events_processed, containers,
        completed, generated,
    ):
        self.duration_min = duration_min
        self.warmup_min = warmup_min
        self.events_processed = events_processed
        self.containers = dict(containers)
        self.completed = dict(completed)
        self.generated = dict(generated)


class RunSource:
    """Snapshot-read adapter over a live (or just-finished) run.

    Everything the server exposes funnels through here; the instance
    holds references only — no copies are made until a request arrives.
    """

    mode = "live"

    def __init__(
        self,
        sink,
        simulator=None,
        result=None,
        specs=None,
        meta: Optional[Dict] = None,
        targets: Optional[Dict] = None,
        chaos=None,
    ):
        self.sink = sink
        self.simulator = simulator
        self.result = result if result is not None else (
            simulator.result if simulator is not None else None
        )
        self.meta = dict(meta or {})
        self.targets = targets
        self.chaos = chaos
        self.complete = False
        self.slas: Dict[str, float] = dict(sink.monitor.slas)
        for spec in specs or []:
            self.slas.setdefault(spec.name, spec.sla)

    def mark_complete(self, result=None) -> None:
        """The run finished; freeze progress on its final result."""
        if result is not None:
            self.result = result
        self.complete = True

    # -- views ----------------------------------------------------------
    @property
    def registry(self):
        return self.sink.registry

    @property
    def monitor(self):
        return self.sink.monitor

    @property
    def decisions(self):
        return self.sink.decisions

    @property
    def store(self):
        return getattr(self.sink, "timeseries", None)

    @property
    def window_min(self) -> float:
        return self.sink.config.window_min

    def expose_metrics(self) -> str:
        return _snapshot(self.registry.expose_text)

    def progress(self) -> Dict:
        result = self.result
        duration = float(getattr(result, "duration_min", 0.0) or 0.0)
        if self.complete or self.simulator is None:
            now_min = duration
        else:
            now_min = min(
                self.simulator.events.now / _MS_PER_MINUTE, duration
            )
        monitor = self.monitor
        entry = {
            "mode": self.mode,
            "complete": bool(self.complete),
            "now_min": round(now_min, 6),
            "duration_min": duration,
            "progress_pct": round(100.0 * now_min / duration, 2)
            if duration
            else 0.0,
            "events_processed": int(
                getattr(result, "events_processed", 0)
                or (
                    self.simulator.events._counter
                    if self.simulator is not None
                    else 0
                )
            ),
            "completed": int(sum(getattr(result, "completed", {}).values()))
            if result is not None
            else 0,
            "generated": int(sum(getattr(result, "generated", {}).values()))
            if result is not None
            else 0,
            "alerts": {
                "sla": len(monitor.alerts),
                "error_budget": len(monitor.error_alerts),
                "rules": len(monitor.rule_alerts),
            },
            "decisions": len(self.decisions.records),
        }
        return entry

    def _service_rows(self) -> List[Dict]:
        registry = self.registry
        monitor = self.monitor
        names = sorted(
            set(self.slas)
            | {
                parse_metric_name(n)[1].get("service", "")
                for n in registry.histograms
                if parse_metric_name(n)[0] == "e2e_latency_ms"
            }
            - {""}
        )
        rows: List[Dict] = []
        for service in names:
            row: Dict = {"service": service, "sla_ms": self.slas.get(service)}
            hist = registry.histograms.get(f"e2e_latency_ms.{service}")
            if hist is not None and hist.count:
                row["completed"] = hist.count
                row["p50_ms"] = hist.quantile(0.50)
                row["p95_ms"] = hist.quantile(0.95)
                row["p99_ms"] = hist.quantile(0.99)
            else:
                row["completed"] = 0
            windows = [w for w in monitor.windows if w.service == service]
            total = sum(w.count for w in windows)
            row["windows"] = len(windows)
            row["miss_rate"] = round(
                sum(w.violations for w in windows) / total, 6
            ) if total else 0.0
            row["errors"] = sum(w.errors for w in windows)
            rows.append(row)
        return rows

    def _breaker_rows(self) -> List[Dict]:
        states = {0.0: "closed", 1.0: "open", 2.0: "half-open"}
        rows = []
        for name in sorted(self.registry.gauges):
            family, labels = parse_metric_name(name)
            if family != "breaker_state":
                continue
            value = self.registry.gauges[name].value
            rows.append(
                {
                    "service": labels.get("service", ""),
                    "microservice": labels.get("microservice", ""),
                    "state": states.get(value, str(value)),
                    "value": value,
                }
            )
        return rows

    def summary(self) -> Dict:
        def build():
            result = self.result
            return {
                "schema": 1,
                "meta": dict(self.meta),
                "progress": self.progress(),
                "services": self._service_rows(),
                "breakers": self._breaker_rows(),
                "containers": dict(
                    sorted(getattr(result, "containers", {}).items())
                )
                if result is not None
                else {},
            }

        return _snapshot(build)

    def alerts(self, limit: Optional[int] = None) -> Dict:
        def tail(items):
            dicts = [a.to_dict() for a in list(items)]
            return dicts[-limit:] if limit else dicts

        monitor = self.monitor
        return _snapshot(
            lambda: {
                "sla": tail(monitor.alerts),
                "error_budget": tail(monitor.error_alerts),
                "rules": tail(monitor.rule_alerts),
            }
        )

    def decision_tail(
        self, limit: Optional[int] = None, actor: Optional[str] = None
    ) -> Dict:
        def build():
            records = list(self.decisions.records)
            if actor:
                records = [r for r in records if r.actor == actor]
            total = len(records)
            if limit:
                records = records[-limit:]
            return {"total": total, "decisions": [r.to_dict() for r in records]}

        return _snapshot(build)

    def query(self, expr: str, at: Optional[float] = None) -> Dict:
        store = self.store
        if store is None:
            return {"expr": expr, "at": at, "results": []}

        def build():
            results = store.query(expr, at=at)
            return {
                "expr": expr,
                "at": at if at is not None else store.last_scrape_min,
                "results": [
                    {
                        "name": series.name,
                        "labels": dict(series.labels),
                        "value": value,
                    }
                    for series, value in results
                ],
            }

        return _snapshot(build)

    def series(
        self,
        name: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
        max_points: Optional[int] = None,
    ) -> Dict:
        store = self.store
        if store is None:
            return {"series": []}

        def build():
            matched = store.select(name=name, labels=labels or None)
            return {"series": [s.to_dict(max_points) for s in matched]}

        return _snapshot(build)

    def dashboard_payload(self) -> Dict:
        from repro.telemetry.dashboard import dashboard_data

        result = self.result
        if result is None:
            # No simulation result to render yet (e.g. the aggregate
            # source of a `compare --serve` sweep): a zeroed stand-in
            # keeps the dashboard template on its normal path.
            result = _ResultView(0.0, 0.0, 0, {}, {}, {})
        return _snapshot(
            lambda: dashboard_data(
                self.sink,
                result,
                specs=None,
                meta=self.meta,
                targets=self.targets,
                chaos=self.chaos,
            )
        )


class ReplaySource(RunSource):
    """The same endpoint surface, rebuilt from an archived run report.

    ``repro report --output run.json`` (schema 1) round-trips: windows,
    alerts, decisions, counters and gauges are exact; histograms come
    back as a single-bucket approximation (the snapshot keeps count /
    sum / p50 / p95 / p99, not full buckets), and the TSDB is rebuilt
    from the report's bounded ``timeseries`` dump when present.
    """

    mode = "replay"

    def __init__(self, report: Dict, path: Optional[str] = None):
        self.report = report
        sink = _SinkView(report)
        meta = {"replay": path or "run-report"}
        result = _ResultView(
            duration_min=report.get("duration_min", 0.0),
            warmup_min=report.get("warmup_min", 0.0),
            events_processed=report.get("events_processed", 0),
            containers=report.get("containers", {}),
            completed={
                name: entry.get("completed", 0)
                for name, entry in report.get("services", {}).items()
            },
            generated={
                name: entry.get("generated", 0)
                for name, entry in report.get("services", {}).items()
            },
        )
        super().__init__(sink, simulator=None, result=result, meta=meta)
        for name, entry in report.get("services", {}).items():
            sla = entry.get("sla_ms")
            if sla:
                self.slas.setdefault(name, sla)
        self.complete = True
        self._hist_snapshot = report.get("registry", {}).get("histograms", {})

    def _service_rows(self) -> List[Dict]:
        # Exact snapshot percentiles beat the single-bucket rebuild.
        rows = super()._service_rows()
        for row in rows:
            snap = self._hist_snapshot.get(
                f"e2e_latency_ms.{row['service']}", {}
            )
            for stat in ("p50", "p95", "p99"):
                if stat in snap:
                    row[f"{stat}_ms"] = snap[stat]
        return rows


class _SinkView:
    """Duck-typed ``TelemetrySink`` rebuilt from a run-report dict."""

    def __init__(self, report: Dict):
        from repro.telemetry.hooks import TelemetryConfig
        from repro.telemetry.timeseries import TimeSeriesStore

        self.config = TelemetryConfig(
            window_min=report.get("window_min", 1.0) or 1.0,
            spans=False,
            max_traces=0,
        )
        self.monitor = SLAMonitor()
        for w in report.get("windows", []):
            self.monitor.windows.append(
                WindowStats(
                    service=w["service"],
                    window=w["window"],
                    start_min=w["start_min"],
                    count=w["count"],
                    violations=w["violations"],
                    p95_ms=w["p95_ms"],
                    sla_ms=w.get("sla_ms", 0.0),
                    errors=w.get("errors", 0),
                )
            )
        for a in report.get("alerts", []):
            self.monitor.alerts.append(
                AlertEvent(
                    service=a["service"],
                    window=a["window"],
                    start_min=a["start_min"],
                    p95_ms=a["p95_ms"],
                    sla_ms=a["sla_ms"],
                    violations=a["violations"],
                    count=a["count"],
                )
            )
        for a in report.get("error_alerts", []):
            self.monitor.error_alerts.append(
                ErrorBudgetAlert(
                    service=a["service"],
                    window=a["window"],
                    start_min=a["start_min"],
                    errors=a["errors"],
                    count=a["count"],
                    error_rate=a["error_rate"],
                    budget=a["budget"],
                )
            )
        self.decisions = DecisionLog()
        for d in report.get("decisions", []):
            self.decisions.record(
                minute=d["minute"],
                actor=d["actor"],
                microservice=d["microservice"],
                before=d["before"],
                after=d["after"],
                reason=d["reason"],
                workload=d.get("workload"),
                latency_target_ms=d.get("latency_target_ms"),
            )
        self.registry = MetricsRegistry()
        snapshot = report.get("registry", {})
        for name, value in snapshot.get("counters", {}).items():
            self.registry.counter(name).value = value
        for name, value in snapshot.get("gauges", {}).items():
            self.registry.gauge(name).set(value)
        for name, entry in snapshot.get("histograms", {}).items():
            # Single-bucket rebuild: the snapshot has no bucket layout,
            # so the whole population sits at/below its recorded p99.
            bound = float(entry.get("p99") or entry.get("p95") or 1.0)
            hist = Histogram(name, bounds=[bound])
            hist.count = int(entry.get("count", 0))
            hist.sum = float(entry.get("sum", 0.0))
            hist.counts = [hist.count, 0]
            self.registry.histograms[name] = hist
        self.window_series = list(report.get("window_series", []))
        self.timeseries = None
        ts = report.get("timeseries")
        if ts and ts.get("series_data"):
            store = TimeSeriesStore()
            for sd in ts["series_data"]:
                for t, v in sd.get("points", []):
                    store.record(sd["name"], sd.get("labels", {}), t, v)
            store.scrapes = ts.get("scrapes", 0)
            store.last_scrape_min = max(
                (s.times[-1] for s in store.series.values() if s.times),
                default=None,
            )
            self.timeseries = store


def load_replay_source(path: str) -> ReplaySource:
    """Load an archived ``repro report`` JSON as a servable source."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != 1:
        raise ValueError(
            f"{path}: not a schema-1 run report "
            f"(schema={report.get('schema')!r})"
        )
    return ReplaySource(report, path=path)


# ----------------------------------------------------------------------
# `repro top` frame rendering
# ----------------------------------------------------------------------
def render_top(summary: Dict, clear: bool = True) -> str:
    """One ``repro top`` terminal frame from an ``/api/summary`` payload.

    Curses-free: a full-screen ANSI clear-and-redraw (suppressed with
    ``clear=False`` for plain appending output / tests).
    """
    progress = summary.get("progress", {})
    lines: List[str] = []
    mode = progress.get("mode", "?")
    state = "complete" if progress.get("complete") else "running"
    lines.append(
        f"repro top · {mode} ({state}) · "
        f"{progress.get('now_min', 0):.2f}/{progress.get('duration_min', 0):g} min "
        f"({progress.get('progress_pct', 0):.0f}%) · "
        f"events {progress.get('events_processed', 0):,} · "
        f"completed {progress.get('completed', 0):,}"
    )
    lines.append("")
    header = (
        f"{'SERVICE':<22}{'P50':>8}{'P95':>8}{'P99':>8}{'SLA':>8}"
        f"{'MISS%':>8}{'COMPL':>9}{'ERR':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in summary.get("services", []):
        def fmt(key):
            value = row.get(key)
            return f"{value:.1f}" if isinstance(value, (int, float)) else "-"

        lines.append(
            f"{row.get('service', '?'):<22}"
            f"{fmt('p50_ms'):>8}{fmt('p95_ms'):>8}{fmt('p99_ms'):>8}"
            f"{fmt('sla_ms'):>8}"
            f"{row.get('miss_rate', 0.0) * 100:>7.2f}%"
            f"{row.get('completed', 0):>9,}"
            f"{row.get('errors', 0):>6,}"
        )
    breakers = summary.get("breakers", [])
    open_breakers = [b for b in breakers if b.get("state") != "closed"]
    if breakers:
        lines.append("")
        if open_breakers:
            lines.append(
                "BREAKERS: "
                + "  ".join(
                    f"{b['service']}->{b['microservice']}:{b['state']}"
                    for b in open_breakers
                )
            )
        else:
            lines.append(f"BREAKERS: all {len(breakers)} closed")
    containers = summary.get("containers", {})
    if containers:
        lines.append(
            f"CONTAINERS: total {sum(containers.values())} ("
            + " ".join(f"{k}:{v}" for k, v in sorted(containers.items()))
            + ")"
        )
    alerts = progress.get("alerts", {})
    lines.append(
        f"ALERTS: sla {alerts.get('sla', 0)} · "
        f"budget {alerts.get('error_budget', 0)} · "
        f"rules {alerts.get('rules', 0)} · "
        f"decisions {progress.get('decisions', 0)}"
    )
    frame = "\n".join(lines) + "\n"
    if clear:
        frame = "\x1b[2J\x1b[H" + frame
    return frame


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
_LIVE_SHELL = """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{title}</title>
<style>{css}</style>
</head><body class="viz-root">
<p class="meta" id="live-status">connecting to /events ...</p>
<div id="dash"><p class="meta">loading dashboard ...</p></div>
<script>
(function () {{
  var dash = document.getElementById('dash');
  var status = document.getElementById('live-status');
  var pending = false;
  function refresh() {{
    if (pending) return;
    pending = true;
    fetch('/dashboard').then(function (r) {{ return r.text(); }})
      .then(function (html) {{ dash.innerHTML = html; }})
      .finally(function () {{ pending = false; }});
  }}
  var es = new EventSource('/events');
  es.addEventListener('progress', function (e) {{
    var p = JSON.parse(e.data);
    status.textContent = 'live · ' + p.now_min.toFixed(2) + ' / ' +
      p.duration_min + ' min (' + p.progress_pct.toFixed(0) + '%) · ' +
      p.completed + ' completed · ' + p.events_processed + ' events';
    refresh();
  }});
  es.addEventListener('complete', function () {{
    status.textContent += ' · run complete';
    es.close();
    refresh();
  }});
  refresh();
}})();
</script>
</body></html>
"""


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.0"

    # -- plumbing -------------------------------------------------------
    @property
    def obs(self) -> "ObservabilityServer":
        return self.server.observability  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # stdlib default is stderr noise
        logger = self.obs.logger
        if logger is not None:
            logger.log(
                "http_access",
                actor="serve",
                method=getattr(self, "command", "?"),
                path=getattr(self, "path", "?"),
                detail=fmt % args,
            )

    def _send(self, body: bytes, content_type: str, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload, status: int = 200) -> None:
        self._send(
            json.dumps(payload).encode("utf-8"),
            "application/json; charset=utf-8",
            status,
        )

    def _qs(self) -> Dict[str, List[str]]:
        return parse_qs(urlparse(self.path).query)

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:
        path = urlparse(self.path).path
        try:
            handler = {
                "/healthz": self._get_healthz,
                "/readyz": self._get_readyz,
                "/metrics": self._get_metrics,
                "/api/query": self._get_query,
                "/api/series": self._get_series,
                "/api/alerts": self._get_alerts,
                "/api/decisions": self._get_decisions,
                "/api/summary": self._get_summary,
                "/events": self._get_events,
                "/dashboard": self._get_dashboard,
                "/": self._get_index,
            }.get(path)
            if handler is None:
                self._send_json({"error": f"no such path: {path}"}, 404)
                return
            handler()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response
        except ValueError as error:
            self._send_json({"error": str(error)}, 400)
        except Exception as error:  # read-side bug: report, don't crash
            self._send_json({"error": f"{type(error).__name__}: {error}"}, 500)

    def do_POST(self) -> None:
        path = urlparse(self.path).path
        if path == "/shutdown":
            self._send_json({"status": "shutting down"})
            self.obs.request_shutdown()
        else:
            self._send_json({"error": f"no such path: {path}"}, 404)

    def _get_healthz(self) -> None:
        self._send_json({"status": "ok", "mode": self.obs.source.mode})

    def _get_readyz(self) -> None:
        ready = self.obs.source is not None
        self._send_json(
            {"ready": ready, "mode": self.obs.source.mode},
            200 if ready else 503,
        )

    def _get_metrics(self) -> None:
        text = self.obs.source.expose_metrics()
        self._send(
            text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8"
        )

    def _get_query(self) -> None:
        qs = self._qs()
        exprs = qs.get("expr")
        if not exprs:
            raise ValueError("missing ?expr= query parameter")
        at = float(qs["at"][0]) if "at" in qs else None
        self._send_json(self.obs.source.query(exprs[0], at=at))

    def _get_series(self) -> None:
        qs = self._qs()
        name = qs.get("name", [None])[0]
        max_points = (
            int(qs["max_points"][0]) if "max_points" in qs else 500
        )
        labels = {
            key: values[0]
            for key, values in qs.items()
            if key not in ("name", "max_points")
        }
        self._send_json(
            self.obs.source.series(
                name=name, labels=labels, max_points=max_points
            )
        )

    def _get_alerts(self) -> None:
        qs = self._qs()
        limit = int(qs["limit"][0]) if "limit" in qs else None
        self._send_json(self.obs.source.alerts(limit=limit))

    def _get_decisions(self) -> None:
        qs = self._qs()
        limit = int(qs["limit"][0]) if "limit" in qs else 100
        actor = qs.get("actor", [None])[0]
        self._send_json(self.obs.source.decision_tail(limit=limit, actor=actor))

    def _get_summary(self) -> None:
        self._send_json(self.obs.source.summary())

    def _get_dashboard(self) -> None:
        from repro.telemetry.dashboard import render_dashboard_body

        body = render_dashboard_body(self.obs.source.dashboard_payload())
        self._send(body.encode("utf-8"), "text/html; charset=utf-8")

    def _get_index(self) -> None:
        from repro.telemetry.dashboard import (
            dashboard_css,
            render_dashboard,
        )

        source = self.obs.source
        if source.complete and source.mode == "replay":
            # Archived run: nothing will change — serve the static,
            # script-free artifact directly.
            html = render_dashboard(source.dashboard_payload())
        else:
            title = source.meta.get("title") or "repro live dashboard"
            html = _LIVE_SHELL.format(title=title, css=dashboard_css())
        self._send(html.encode("utf-8"), "text/html; charset=utf-8")

    # -- SSE ------------------------------------------------------------
    def _get_events(self) -> None:
        qs = self._qs()
        limit = int(qs["limit"][0]) if "limit" in qs else None
        obs = self.obs
        source = obs.source
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()

        sent = 0

        def emit(event: str, data) -> bool:
            nonlocal sent
            payload = f"event: {event}\ndata: {json.dumps(data)}\n\n"
            self.wfile.write(payload.encode("utf-8"))
            self.wfile.flush()
            sent += 1
            return limit is None or sent < limit

        monitor = source.monitor
        decisions = source.decisions
        seen = {
            "sla": len(monitor.alerts),
            "error_budget": len(monitor.error_alerts),
            "rules": len(monitor.rule_alerts),
            "decisions": len(decisions.records),
        }
        try:
            if not emit("progress", source.progress()):
                return
            while not obs.stopping:
                time.sleep(obs.poll_interval_s)
                for kind, items in (
                    ("sla", monitor.alerts),
                    ("error_budget", monitor.error_alerts),
                    ("rules", monitor.rule_alerts),
                ):
                    while seen[kind] < len(items):
                        alert = items[seen[kind]]
                        seen[kind] += 1
                        if not emit(
                            "alert", {"kind": kind, **alert.to_dict()}
                        ):
                            return
                while seen["decisions"] < len(decisions.records):
                    record = decisions.records[seen["decisions"]]
                    seen["decisions"] += 1
                    if not emit("decision", record.to_dict()):
                        return
                if not emit("progress", source.progress()):
                    return
                if source.complete:
                    emit("complete", source.progress())
                    return
        except (BrokenPipeError, ConnectionResetError):
            return


class ObservabilityServer:
    """Background-thread HTTP plane over one :class:`RunSource`.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` / :attr:`url`).  ``start()`` returns immediately; the
    handler threads are daemons, so a crashed main thread never hangs
    on the server.  ``wait_for_shutdown()`` blocks until a client
    ``POST /shutdown`` (or :meth:`request_shutdown` /
    ``KeyboardInterrupt``), then tears the server down.
    """

    def __init__(
        self,
        source: RunSource,
        host: str = "127.0.0.1",
        port: int = 0,
        logger=None,
        poll_interval_s: float = 0.25,
    ):
        self.source = source
        self.logger = logger
        self.poll_interval_s = poll_interval_s
        self.stopping = False
        self._shutdown_requested = threading.Event()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.observability = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObservabilityServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-observability",
            daemon=True,
        )
        self._thread.start()
        if self.logger is not None:
            self.logger.log(
                "serve_start", actor="serve", url=self.url,
                mode=self.source.mode,
            )
        return self

    def request_shutdown(self) -> None:
        """Flag shutdown (from a handler thread or the owner)."""
        self._shutdown_requested.set()

    def wait_for_shutdown(self, timeout: Optional[float] = None) -> bool:
        """Block until shutdown is requested, then stop.  True if it was."""
        try:
            requested = self._shutdown_requested.wait(timeout)
        except KeyboardInterrupt:
            requested = True
        self.stop()
        return bool(requested)

    def stop(self) -> None:
        if self.stopping:
            return
        self.stopping = True  # unblocks SSE loops
        self._shutdown_requested.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.logger is not None:
            self.logger.log("serve_stop", actor="serve", url=self.url)
