"""Query layer over :class:`~repro.telemetry.timeseries.store.TimeSeriesStore`.

A deliberately small PromQL-shaped surface:

* **Selectors** — ``name{label="x",other!="y"}`` match series by metric
  family and label equality/inequality (the families and labels come
  from the registry's dotted ``name.service`` convention, see
  :func:`~repro.telemetry.timeseries.store.parse_metric_name`).
* **Range functions** — ``rate()``, ``avg_over_time()``,
  ``min_over_time()``, ``max_over_time()``, ``sum_over_time()``,
  ``count_over_time()``, ``last_over_time()`` and
  ``quantile_over_time(q, ...)`` over a trailing ``[Nm]`` / ``[Ns]``
  window ending at the evaluation time.

Range functions read the raw ring buffer when it still covers the
window and transparently fall back to the downsampled min/max/sum/count
bins once raw samples have been evicted (``rate`` then assumes
monotonic counters; ``quantile_over_time`` and ``last_over_time`` are
raw-only and return ``None`` past raw retention).  Every function
returns ``None`` — never raises — when a series has no usable samples
in the window, so rules evaluation is total.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "Expr",
    "Matcher",
    "Selector",
    "evaluate",
    "parse_expr",
    "parse_selector",
    "range_functions",
]

_SELECTOR_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:.\-]*)\s*(?:\{(?P<labels>[^}]*)\})?$"
)
_MATCHER_RE = re.compile(
    r'\s*([A-Za-z_][A-Za-z0-9_]*)\s*(!?=)\s*"((?:[^"\\]|\\.)*)"\s*$'
)
_ESCAPE_RE = re.compile(r"\\(.)")


def _split_matchers(label_part: str) -> List[str]:
    """Split ``k="v",k2="w"`` on commas outside quoted values.

    Quoted values may contain ``\\"`` / ``\\\\`` escapes and literal
    commas, so a naive ``split(",")`` would cut matchers apart.
    """
    items: List[str] = []
    current: List[str] = []
    quoted = False
    escaped = False
    for ch in label_part:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\" and quoted:
            current.append(ch)
            escaped = True
        elif ch == '"':
            quoted = not quoted
            current.append(ch)
        elif ch == "," and not quoted:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
    items.append("".join(current))
    return items
_CALL_RE = re.compile(r"^(?P<func>[a-z_][a-z0-9_]*)\s*\((?P<args>.*)\)$", re.S)
_RANGE_RE = re.compile(r"^(?P<sel>.*?)\s*\[\s*(?P<num>[0-9.]+)\s*(?P<unit>[ms])\s*\]$")


@dataclass(frozen=True)
class Matcher:
    """One label constraint: ``label="value"`` or ``label!="value"``."""

    label: str
    op: str  # "=" | "!="
    value: str

    def matches(self, labels: Dict[str, str]) -> bool:
        actual = labels.get(self.label)
        if self.op == "=":
            return actual == self.value
        return actual != self.value


@dataclass(frozen=True)
class Selector:
    """A metric family plus label matchers."""

    name: str
    matchers: Tuple[Matcher, ...] = ()

    def matches(self, series) -> bool:
        if series.name != self.name:
            return False
        return all(m.matches(series.labels) for m in self.matchers)


def parse_selector(text: str) -> Selector:
    """Parse ``name`` or ``name{key="v",other!="w"}``.

    Label values are double-quoted strings supporting ``\\"`` and
    ``\\\\`` escapes (and literal commas), so selectors built from
    arbitrary label values round-trip.
    """
    match = _SELECTOR_RE.match(text.strip())
    if match is None:
        raise ValueError(f"invalid selector: {text!r}")
    matchers: List[Matcher] = []
    label_part = match.group("labels")
    if label_part is not None and label_part.strip():
        for item in _split_matchers(label_part):
            m = _MATCHER_RE.match(item)
            if m is None:
                raise ValueError(f"invalid label matcher {item!r} in {text!r}")
            value = _ESCAPE_RE.sub(r"\1", m.group(3))
            matchers.append(Matcher(m.group(1), m.group(2), value))
    return Selector(match.group("name"), tuple(matchers))


# ----------------------------------------------------------------------
# Range functions
# ----------------------------------------------------------------------
def _rate(series, start: float, end: float) -> Optional[float]:
    """Per-minute increase of a (counter) series over the window.

    On raw samples, counter resets (a decrease) restart the
    accumulation, like PromQL's ``rate``.  On the bin fallback the
    series is assumed monotonic (max of the last bin minus min of the
    first).
    """
    points = series.window(start, end)
    if series.raw_covers(start) and len(points) >= 2:
        increase = 0.0
        prev = points[0][1]
        for _, value in points[1:]:
            increase += value - prev if value >= prev else value
            prev = value
        span = points[-1][0] - points[0][0]
        return increase / span if span > 0 else None
    bins = series.bins(start, end)
    if not bins:
        return None
    span = bins[-1].end - bins[0].start
    if span <= 0:
        return None
    return (bins[-1].max - bins[0].min) / span


def _fold(
    raw: Callable[[List[float]], float],
    from_bins: Callable[[List], Optional[float]],
) -> Callable:
    def function(series, start: float, end: float) -> Optional[float]:
        if series.raw_covers(start):
            values = [v for _, v in series.window(start, end)]
            return raw(values) if values else None
        bins = series.bins(start, end)
        if bins:
            return from_bins(bins)
        values = [v for _, v in series.window(start, end)]
        return raw(values) if values else None

    return function


_avg_over_time = _fold(
    lambda vs: sum(vs) / len(vs),
    lambda bins: (
        sum(b.sum for b in bins) / sum(b.count for b in bins)
        if sum(b.count for b in bins)
        else None
    ),
)
_min_over_time = _fold(min, lambda bins: min(b.min for b in bins))
_max_over_time = _fold(max, lambda bins: max(b.max for b in bins))
_sum_over_time = _fold(sum, lambda bins: sum(b.sum for b in bins))
_count_over_time = _fold(
    lambda vs: float(len(vs)), lambda bins: float(sum(b.count for b in bins))
)


def _last_over_time(series, start: float, end: float) -> Optional[float]:
    points = series.window(start, end)
    return points[-1][1] if points else None


def _quantile_over_time(
    q: float, series, start: float, end: float
) -> Optional[float]:
    """Nearest-rank quantile over the window's *raw* samples.

    Raw-only by design: the downsampled bins keep min/max/sum/count,
    which cannot answer an arbitrary quantile honestly.
    """
    values = sorted(v for _, v in series.window(start, end))
    if not values:
        return None
    rank = max(0, min(len(values) - 1, math.ceil(q * len(values)) - 1))
    return values[rank]


#: name -> range function (series, start, end) -> Optional[float]
_RANGE_FUNCTIONS: Dict[str, Callable] = {
    "rate": _rate,
    "avg_over_time": _avg_over_time,
    "min_over_time": _min_over_time,
    "max_over_time": _max_over_time,
    "sum_over_time": _sum_over_time,
    "count_over_time": _count_over_time,
    "last_over_time": _last_over_time,
}


def range_functions() -> List[str]:
    """Names of all supported range functions (plus quantile_over_time)."""
    return sorted(_RANGE_FUNCTIONS) + ["quantile_over_time"]


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Expr:
    """One parsed query: an instant selector or ``func(selector[range])``."""

    selector: Selector
    func: Optional[str] = None  # None -> instant vector (latest sample)
    range_min: Optional[float] = None
    q: Optional[float] = None  # quantile_over_time only

    def evaluate_series(self, series, at: float) -> Optional[float]:
        if self.func is None:
            last = series.last(at)
            return last[1] if last is not None else None
        start = at - (self.range_min or 0.0)
        if self.func == "quantile_over_time":
            return _quantile_over_time(self.q, series, start, at)
        return _RANGE_FUNCTIONS[self.func](series, start, at)


def _parse_range(text: str) -> Tuple[str, float]:
    match = _RANGE_RE.match(text.strip())
    if match is None:
        raise ValueError(f"expected 'selector[range]', got {text!r}")
    value = float(match.group("num"))
    if match.group("unit") == "s":
        value /= 60.0
    if value <= 0:
        raise ValueError(f"range must be positive in {text!r}")
    return match.group("sel"), value


def parse_expr(text: str) -> Expr:
    """Parse ``selector`` | ``func(selector[range])`` |
    ``quantile_over_time(q, selector[range])``."""
    text = text.strip()
    call = _CALL_RE.match(text)
    if call is None:
        return Expr(selector=parse_selector(text))
    func = call.group("func")
    args = call.group("args").strip()
    if func == "quantile_over_time":
        q_part, comma, rest = args.partition(",")
        if not comma:
            raise ValueError(
                f"quantile_over_time needs (q, selector[range]): {text!r}"
            )
        q = float(q_part)
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1] in {text!r}")
        sel_text, range_min = _parse_range(rest)
        return Expr(
            selector=parse_selector(sel_text),
            func=func,
            range_min=range_min,
            q=q,
        )
    if func not in _RANGE_FUNCTIONS:
        raise ValueError(
            f"unknown function {func!r}; supported: {range_functions()}"
        )
    sel_text, range_min = _parse_range(args)
    return Expr(selector=parse_selector(sel_text), func=func, range_min=range_min)


def evaluate(store, expr, at: float) -> List[Tuple[object, Optional[float]]]:
    """Evaluate ``expr`` against every matching series at time ``at``.

    ``expr`` may be a string or a pre-parsed :class:`Expr`.  Returns
    ``[(series, value)]`` in canonical series order; values are ``None``
    where the series has no usable samples in the window.
    """
    if isinstance(expr, str):
        expr = parse_expr(expr)
    results = []
    for key in sorted(store.series):
        series = store.series[key]
        if expr.selector.matches(series):
            results.append((series, expr.evaluate_series(series, at)))
    return results
