"""Declarative recording and alert rules over the embedded TSDB.

A :class:`RuleSet` is a plain data structure (JSON-loadable via
:func:`load_rules`) with two rule kinds, both evaluated on the
*simulation* clock at every scrape tick:

* **Recording rules** — ``{"record": "svc_p95_rate", "expr":
  "rate(requests_completed[1m])"}`` write each matching series' value
  back into the store under the recorded name (source labels
  preserved), so derived signals get the same bounded multi-resolution
  retention as scraped ones.
* **Alert rules** — ``{"alert": "HighMissRate", "expr":
  "avg_over_time(sla_miss_rate{service=\"A\"}[1m])", "op": ">",
  "threshold": 0.05, "for": 0.5, "severity": "page"}`` compare each
  matching series' value against a threshold; once the condition has
  held continuously for ``for`` minutes the rule *fires*: a
  :class:`RuleAlert` is appended to the engine (and to
  ``SLAMonitor.rule_alerts``), and a ``rules-engine`` actor entry lands
  in the :class:`~repro.telemetry.monitor.DecisionLog` — firing
  (``0 -> 1``) and resolving (``1 -> 0``) both leave an audit record,
  mirroring how the paper's §5 monitoring loop turns windowed signals
  into actions.

Everything is deterministic: rules run on scrape timestamps, draw no
randomness, and iterate series in canonical key order.
"""

from __future__ import annotations

import json
import operator
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry.timeseries.query import Expr, evaluate, parse_expr

__all__ = [
    "AlertRule",
    "RecordingRule",
    "RuleAlert",
    "RuleEngine",
    "RuleSet",
    "load_rules",
]

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}

#: Actor name rule firings/resolutions use in the DecisionLog.
RULES_ACTOR = "rules-engine"


@dataclass(frozen=True)
class RecordingRule:
    """Precompute an expression into a named derived series."""

    record: str
    expr: str

    def to_dict(self) -> Dict:
        return {"record": self.record, "expr": self.expr}


@dataclass(frozen=True)
class AlertRule:
    """Fire when ``expr <op> threshold`` holds for ``for_min`` minutes."""

    name: str
    expr: str
    op: str
    threshold: float
    for_min: float = 0.0
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(
                f"alert {self.name!r}: op must be one of {sorted(_OPS)}, "
                f"got {self.op!r}"
            )
        if self.for_min < 0:
            raise ValueError(f"alert {self.name!r}: for must be >= 0")

    def to_dict(self) -> Dict:
        return {
            "alert": self.name,
            "expr": self.expr,
            "op": self.op,
            "threshold": self.threshold,
            "for": self.for_min,
            "severity": self.severity,
        }


@dataclass(frozen=True)
class RuleAlert:
    """One alert-rule firing against one series."""

    rule: str
    minute: float
    value: float
    threshold: float
    op: str
    severity: str
    labels: Tuple[Tuple[str, str], ...] = ()

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "minute": round(self.minute, 6),
            "value": round(self.value, 6),
            "threshold": self.threshold,
            "op": self.op,
            "severity": self.severity,
            "labels": dict(self.labels),
        }


@dataclass
class RuleSet:
    """All recording and alert rules of one run."""

    recording: List[RecordingRule] = field(default_factory=list)
    alerts: List[AlertRule] = field(default_factory=list)

    @classmethod
    def from_dict(cls, data: Dict) -> "RuleSet":
        """Build from ``{"rules": [{...}, ...]}`` (or a bare rule list).

        Each entry is either a recording rule (``record`` key) or an
        alert rule (``alert`` key); anything else is an error.
        """
        entries = data.get("rules", []) if isinstance(data, dict) else data
        ruleset = cls()
        for entry in entries:
            if "record" in entry:
                ruleset.recording.append(
                    RecordingRule(record=entry["record"], expr=entry["expr"])
                )
            elif "alert" in entry:
                ruleset.alerts.append(
                    AlertRule(
                        name=entry["alert"],
                        expr=entry["expr"],
                        op=entry.get("op", ">"),
                        threshold=float(entry["threshold"]),
                        for_min=float(entry.get("for", 0.0)),
                        severity=entry.get("severity", "warning"),
                    )
                )
            else:
                raise ValueError(
                    f"rule entry needs 'record' or 'alert': {entry!r}"
                )
        return ruleset

    def to_dict(self) -> Dict:
        return {
            "rules": [r.to_dict() for r in self.recording]
            + [a.to_dict() for a in self.alerts]
        }

    def __len__(self) -> int:
        return len(self.recording) + len(self.alerts)


def load_rules(path: str) -> RuleSet:
    """Load a JSON rules file (``{"rules": [...]}``)."""
    with open(path, "r", encoding="utf-8") as handle:
        return RuleSet.from_dict(json.load(handle))


class RuleEngine:
    """Evaluates a :class:`RuleSet` against a store on every scrape.

    Holds the alert state machine: per (rule, series) the engine tracks
    when the condition first held (``pending``) and whether the alert is
    currently firing; ``for``-durations are measured on scrape
    timestamps, so behaviour is identical across runs of the same seed.
    """

    def __init__(self, store, ruleset: RuleSet):
        self.store = store
        self.ruleset = ruleset
        self.alerts: List[RuleAlert] = []
        #: (rule name, series key) -> minute the condition started holding
        self._pending: Dict[Tuple, float] = {}
        self._firing: set = set()
        # Parse every expression up front so a malformed rules file
        # fails at construction, not minutes into a run.
        self._compiled: Dict[str, Expr] = {}
        for rule in ruleset.recording:
            self._compiled[f"record:{rule.record}"] = parse_expr(rule.expr)
        for rule in ruleset.alerts:
            self._compiled[f"alert:{rule.name}"] = parse_expr(rule.expr)

    @property
    def firing(self) -> List[Tuple]:
        """Currently-firing (rule name, series key) pairs, sorted."""
        return sorted(self._firing)

    def evaluate(self, at_min: float, monitor=None, decisions=None) -> List[RuleAlert]:
        """Run all rules at ``at_min``; returns alerts fired this round."""
        store = self.store
        for rule in self.ruleset.recording:
            expr = self._compiled[f"record:{rule.record}"]
            # Materialize matches before recording: writes may create
            # new series and must not feed this same evaluation.
            for series, value in list(evaluate(store, expr, at_min)):
                if value is None:
                    continue
                store.record(rule.record, series.labels, at_min, value)
        fired: List[RuleAlert] = []
        for rule in self.ruleset.alerts:
            expr = self._compiled[f"alert:{rule.name}"]
            compare = _OPS[rule.op]
            for series, value in evaluate(store, expr, at_min):
                key = (rule.name, series.key)
                breached = value is not None and compare(value, rule.threshold)
                if breached:
                    since = self._pending.setdefault(key, at_min)
                    ready = at_min - since >= rule.for_min - 1e-9
                    if ready and key not in self._firing:
                        self._firing.add(key)
                        alert = RuleAlert(
                            rule=rule.name,
                            minute=at_min,
                            value=float(value),
                            threshold=rule.threshold,
                            op=rule.op,
                            severity=rule.severity,
                            labels=tuple(sorted(series.labels.items())),
                        )
                        self.alerts.append(alert)
                        fired.append(alert)
                        if monitor is not None:
                            monitor.rule_alerts.append(alert)
                        if decisions is not None:
                            decisions.record(
                                minute=at_min,
                                actor=RULES_ACTOR,
                                microservice=self._target(series),
                                before=0,
                                after=1,
                                reason=(
                                    f"alert {rule.name}: {rule.expr} "
                                    f"{rule.op} {rule.threshold:g} "
                                    f"(value {value:.6g}, severity "
                                    f"{rule.severity})"
                                ),
                            )
                else:
                    if key in self._firing and decisions is not None:
                        decisions.record(
                            minute=at_min,
                            actor=RULES_ACTOR,
                            microservice=self._target(series),
                            before=1,
                            after=0,
                            reason=f"alert {rule.name} resolved",
                        )
                    self._firing.discard(key)
                    self._pending.pop(key, None)
        return fired

    @staticmethod
    def _target(series) -> str:
        """Best-effort subject of an alert for the DecisionLog entry."""
        labels = series.labels
        return (
            labels.get("microservice")
            or labels.get("service")
            or series.name
        )
