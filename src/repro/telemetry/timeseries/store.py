"""Embedded deterministic time-series store for the telemetry layer.

The paper's management loop (§5) runs on *windowed* telemetry — latency
percentiles, workload, and utilization joined per minute.  The
:class:`MetricsRegistry` answers "what is the value now", but not "what
did p95 look like over time, and when did the breaker open relative to
the chaos window".  :class:`TimeSeriesStore` closes that gap: a tiny
embedded TSDB driven entirely by the *simulation* clock —

* a self-rescheduling scrape tick (one event per scrape interval, off
  the hot path, no RNG draws) samples the sink's
  :class:`~repro.telemetry.registry.MetricsRegistry` (counters, gauges,
  and *delta-windowed* histogram percentiles), the
  :class:`~repro.telemetry.monitor.SLAMonitor`'s freshly closed windows,
  and live engine state (queue depth, busy fraction, per-microservice
  container counts — which also covers the resilience layer's
  ``breaker_state`` gauges);
* every sample lands in a bounded multi-resolution
  :class:`Series` — a raw ring buffer plus stacked downsampled
  min/max/sum/count :class:`Bin` levels, so long runs stay bounded while
  coarse history survives raw eviction;
* dotted registry names (``e2e_latency_ms.<service>``,
  ``request_errors.<service>.<kind>``, ``breaker_state.<service>.<ms>``)
  are split into a metric *family* plus labels, giving the query layer
  (:mod:`repro.telemetry.timeseries.query`) Prometheus-style label
  selectors over the existing naming convention.

Determinism contract: the store never draws randomness and only ever
*reads* engine state, so attaching it cannot perturb the engine's pinned
RNG streams — golden fingerprints hold with the TSDB enabled, and the
disabled path costs nothing at all (no sink field, no events).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

_MS_PER_MINUTE = 60_000.0

__all__ = [
    "Bin",
    "Series",
    "TimeSeriesConfig",
    "TimeSeriesStore",
    "parse_metric_name",
    "series_key",
]

#: Label schema of known dotted registry names: family -> label keys for
#: the remaining dot-separated parts (the last key absorbs any extra
#: dots).  Unknown families with a dotted suffix default to ``service``.
_LABEL_SCHEMA: Dict[str, Tuple[str, ...]] = {
    "request_errors": ("service", "kind"),
    "breaker_state": ("service", "microservice"),
    "e2e_latency_ms": ("service",),
    "containers": ("microservice",),
}

#: Registry gauges shadowed by the store's own (fresher, scrape-cadence)
#: engine snapshot; skipped while a simulator is attached so one series
#: never mixes window-tick and scrape-tick samples.
_ENGINE_SHADOWED_GAUGES = frozenset(
    {"queue_depth", "busy_threads", "busy_fraction", "containers"}
)


def parse_metric_name(raw: str) -> Tuple[str, Dict[str, str]]:
    """Split a dotted registry name into ``(family, labels)``.

    ``e2e_latency_ms.social-network`` becomes ``("e2e_latency_ms",
    {"service": "social-network"})``; families in the known schema get
    their declared label keys (``request_errors.<service>.<kind>``,
    ``breaker_state.<service>.<microservice>``); a name without a dot has
    no labels.
    """
    if "." not in raw:
        return raw, {}
    family, rest = raw.split(".", 1)
    keys = _LABEL_SCHEMA.get(family)
    if keys is None:
        return family, {"service": rest}
    parts = rest.split(".", len(keys) - 1)
    if len(parts) < len(keys):
        return family, {keys[0]: rest}
    return family, dict(zip(keys, parts))


def series_key(name: str, labels: Dict[str, str]) -> Tuple:
    """Canonical hashable identity of one series."""
    return (name, tuple(sorted(labels.items())))


@dataclass(frozen=True)
class Bin:
    """One downsampled aggregate over consecutive raw samples."""

    start: float  # minute of the first covered sample
    end: float  # minute of the last covered sample
    min: float
    max: float
    sum: float
    count: int

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict:
        return {
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "min": self.min,
            "max": self.max,
            "sum": self.sum,
            "count": self.count,
        }


class Series:
    """One bounded multi-resolution sample stream.

    Raw ``(time, value)`` pairs live in a ring buffer of
    ``raw_capacity`` samples; every ``downsample_factor`` raw samples
    fold into one :class:`Bin` on level 0, every ``downsample_factor``
    level-0 bins fold into a level-1 bin, and so on — so when the raw
    ring evicts, min/max/sum/count history survives at coarser
    resolution.  Appends must be time-ordered (the scrape loop runs on
    the simulation clock, so they are).
    """

    __slots__ = ("name", "labels", "key", "times", "values", "levels", "_pending", "_factor")

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        raw_capacity: int = 4096,
        downsample_factor: int = 8,
        downsample_levels: int = 2,
        level_capacity: int = 1024,
    ):
        self.name = name
        self.labels = dict(labels)
        self.key = series_key(name, labels)
        self.times: deque = deque(maxlen=raw_capacity)
        self.values: deque = deque(maxlen=raw_capacity)
        self._factor = downsample_factor
        self.levels: List[deque] = [
            deque(maxlen=level_capacity) for _ in range(downsample_levels)
        ]
        self._pending: List[List[Bin]] = [[] for _ in range(downsample_levels)]

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Series({self.name!r}, {self.labels!r}, n={len(self)})"

    # -- ingest ---------------------------------------------------------
    def append(self, t: float, value: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"series {self.key!r}: out-of-order sample at t={t} "
                f"(last t={self.times[-1]})"
            )
        self.times.append(t)
        self.values.append(value)
        self._feed(0, Bin(t, t, value, value, value, 1))

    def _feed(self, level: int, piece: Bin) -> None:
        if level >= len(self.levels):
            return
        pending = self._pending[level]
        pending.append(piece)
        if len(pending) >= self._factor:
            merged = Bin(
                start=pending[0].start,
                end=pending[-1].end,
                min=min(b.min for b in pending),
                max=max(b.max for b in pending),
                sum=sum(b.sum for b in pending),
                count=sum(b.count for b in pending),
            )
            del pending[:]
            self.levels[level].append(merged)
            self._feed(level + 1, merged)

    # -- reads ----------------------------------------------------------
    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Raw samples with ``start <= t <= end`` (time-ordered)."""
        return [
            (t, v)
            for t, v in zip(self.times, self.values)
            if start <= t <= end
        ]

    def raw_covers(self, start: float) -> bool:
        """True when the raw ring still reaches back to ``start``."""
        if not self.times:
            return False
        if len(self.times) < (self.times.maxlen or 0):
            return True  # nothing evicted yet: full history retained
        return self.times[0] <= start

    def bins(self, start: float, end: float) -> List[Bin]:
        """Finest-level closed bins overlapping ``[start, end]``.

        Falls through to coarser levels only for the portion of the
        range the finer level no longer retains; pending (unclosed)
        samples are not included — use :meth:`window` for the raw tail.
        """
        out: List[Bin] = []
        cutoff: Optional[float] = None  # earliest time already covered
        for level in self.levels:
            if cutoff is None:
                selected = [
                    b for b in level if b.end >= start and b.start <= end
                ]
            else:
                # Older history only: whole bins strictly before what the
                # finer level already answered (straddling bins are
                # skipped rather than double-counted).
                selected = [
                    b for b in level if b.end >= start and b.end <= cutoff
                ]
            if selected:
                out = selected + out
                cutoff = out[0].start
                if cutoff <= start:
                    break
        return out

    def last(self, at: Optional[float] = None) -> Optional[Tuple[float, float]]:
        """Latest raw sample at or before ``at`` (latest overall if None)."""
        if not self.times:
            return None
        if at is None:
            return (self.times[-1], self.values[-1])
        for t, v in zip(reversed(self.times), reversed(self.values)):
            if t <= at:
                return (t, v)
        return None

    def to_dict(self, max_points: Optional[int] = None) -> Dict:
        points = list(zip(self.times, self.values))
        if max_points is not None and len(points) > max_points:
            points = points[-max_points:]
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "points": [[round(t, 6), v] for t, v in points],
        }


@dataclass
class TimeSeriesConfig:
    """Knobs of the embedded TSDB.

    Attributes:
        scrape_interval_min: Sim-time cadence of the scrape tick.
        raw_capacity: Raw ring-buffer samples retained per series.
        downsample_factor: Raw samples (or finer bins) folded per bin.
        downsample_levels: Stacked downsample levels per series.
        level_capacity: Bins retained per downsample level.
        quantiles: Delta-window quantiles scraped from each histogram.
    """

    scrape_interval_min: float = 0.25
    raw_capacity: int = 4096
    downsample_factor: int = 8
    downsample_levels: int = 2
    level_capacity: int = 1024
    quantiles: Sequence[float] = (0.50, 0.95, 0.99)

    def __post_init__(self) -> None:
        if self.scrape_interval_min <= 0:
            raise ValueError("scrape_interval_min must be positive")
        if self.raw_capacity < 2:
            raise ValueError("raw_capacity must be at least 2")
        if self.downsample_factor < 2:
            raise ValueError("downsample_factor must be at least 2")
        if self.downsample_levels < 0:
            raise ValueError("downsample_levels must be non-negative")
        for q in self.quantiles:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile {q} outside [0, 1]")


def _delta_quantile(
    bounds: Sequence[float], delta_counts: Sequence[int], total: int, q: float
) -> float:
    """Bucket-upper-bound quantile over an interval's bucket deltas.

    The same estimate :meth:`Histogram.quantile` gives, but computed
    from the *difference* between two scrapes' cumulative bucket counts
    — i.e. the quantile of observations that landed in the interval.
    """
    rank = q * total
    seen = 0
    for index, count in enumerate(delta_counts):
        seen += count
        if seen >= rank and count:
            if index < len(bounds):
                return bounds[index]
            return bounds[-1]
    return bounds[-1]


class TimeSeriesStore:
    """Scrapes one :class:`TelemetrySink` into bounded series.

    Attach by passing as ``timeseries=`` to the sink; the sink calls
    :meth:`attach` from ``begin_run`` (which schedules the sim-clock
    scrape tick) and :meth:`finalize` after the run drains (final
    scrape at the run's end).  For tests and offline use, :meth:`bind`
    plus explicit :meth:`scrape` calls drive the store manually.

    ``rules`` accepts a :class:`~repro.telemetry.timeseries.rules.RuleSet`
    (or a plain dict in that shape); recording and alert rules are then
    evaluated on every scrape, firing through the sink's ``SLAMonitor``
    (``rule_alerts``) and ``DecisionLog`` (actor ``rules-engine``).
    """

    def __init__(
        self,
        config: Optional[TimeSeriesConfig] = None,
        rules=None,
    ):
        self.config = config or TimeSeriesConfig()
        self.series: Dict[Tuple, Series] = {}
        self.scrapes = 0
        self.last_scrape_min: Optional[float] = None
        self.engine = None  # RuleEngine, set below when rules given
        self._sink = None
        self._sim = None
        self._duration_min = 0.0
        #: previous cumulative (counts, count, sum) per histogram name
        self._prev_hist: Dict[str, Tuple[List[int], int, float]] = {}
        self._windows_seen = 0
        if rules is not None:
            from repro.telemetry.timeseries.rules import RuleEngine, RuleSet

            if isinstance(rules, dict):
                rules = RuleSet.from_dict(rules)
            self.engine = RuleEngine(self, rules)

    # ------------------------------------------------------------------
    # Lifecycle (driven by TelemetrySink)
    # ------------------------------------------------------------------
    def attach(self, sink, simulator) -> None:
        """Bind to a live run and schedule the first scrape tick."""
        if self._sim is not None:
            raise RuntimeError("a TimeSeriesStore serves exactly one run")
        self._sink = sink
        self._sim = simulator
        self._duration_min = simulator.config.duration_min
        interval_ms = self.config.scrape_interval_min * _MS_PER_MINUTE
        if interval_ms <= self._duration_min * _MS_PER_MINUTE:
            simulator.events.schedule(interval_ms, self._on_scrape)

    def bind(self, sink) -> None:
        """Bind to a sink without a simulator (manual scrape mode)."""
        self._sink = sink

    def finalize(self, simulator) -> None:
        """Final scrape at the run's end (monitor windows are closed)."""
        end = self._duration_min or (
            simulator.now / _MS_PER_MINUTE if simulator is not None else 0.0
        )
        if self.last_scrape_min is None or self.last_scrape_min < end:
            self.scrape(end)

    def _on_scrape(self, now_ms: float) -> None:
        self.scrape(now_ms / _MS_PER_MINUTE)
        interval_ms = self.config.scrape_interval_min * _MS_PER_MINUTE
        tick = int(round(now_ms / interval_ms))
        next_tick = (tick + 1) * interval_ms
        if next_tick <= self._duration_min * _MS_PER_MINUTE:
            self._sim.events.schedule(next_tick, self._on_scrape)

    # ------------------------------------------------------------------
    # Scraping
    # ------------------------------------------------------------------
    def scrape(self, now_min: float) -> None:
        """Sample registry, SLA monitor, and engine state at ``now_min``."""
        sink = self._sink
        if sink is None:
            raise RuntimeError("TimeSeriesStore is not bound to a TelemetrySink")
        if self.last_scrape_min is not None and now_min < self.last_scrape_min:
            raise ValueError("scrape times must be non-decreasing")
        interval = (
            now_min - self.last_scrape_min
            if self.last_scrape_min is not None
            else now_min
        )
        if interval <= 0.0:
            interval = self.config.scrape_interval_min
        registry = sink.registry
        for name, counter in sorted(registry.counters.items()):
            family, labels = parse_metric_name(name)
            self.record(family, labels, now_min, counter.value)
        for name, gauge in sorted(registry.gauges.items()):
            if self._sim is not None and name in _ENGINE_SHADOWED_GAUGES:
                continue
            family, labels = parse_metric_name(name)
            self.record(family, labels, now_min, gauge.value)
        for name, hist in sorted(registry.histograms.items()):
            self._scrape_histogram(name, hist, now_min, interval)
        self._scrape_monitor(sink, now_min)
        self._scrape_engine(now_min)
        self.scrapes += 1
        self.last_scrape_min = now_min
        if self.engine is not None:
            self.engine.evaluate(
                now_min, monitor=sink.monitor, decisions=sink.decisions
            )

    def _scrape_histogram(self, name, hist, now_min: float, interval: float) -> None:
        """Delta-windowed percentiles: what did p95 look like *this* interval."""
        counts = list(hist.counts)
        prev = self._prev_hist.get(name)
        if prev is None:
            delta_counts, delta_count = counts, hist.count
            delta_sum = hist.sum
        else:
            prev_counts, prev_count, prev_sum = prev
            delta_counts = [c - p for c, p in zip(counts, prev_counts)]
            delta_count = hist.count - prev_count
            delta_sum = hist.sum - prev_sum
        self._prev_hist[name] = (counts, hist.count, hist.sum)
        family, base = parse_metric_name(name)
        self.record(
            family, {**base, "stat": "count"}, now_min, float(delta_count)
        )
        if delta_count <= 0:
            return
        self.record(
            family,
            {**base, "stat": "rate_per_min"},
            now_min,
            delta_count / interval,
        )
        self.record(
            family, {**base, "stat": "mean"}, now_min, delta_sum / delta_count
        )
        for q in self.config.quantiles:
            self.record(
                family,
                {**base, "stat": f"p{q * 100:g}"},
                now_min,
                _delta_quantile(hist.bounds, delta_counts, delta_count, q),
            )

    def _scrape_monitor(self, sink, now_min: float) -> None:
        """Ingest SLA windows closed since the previous scrape.

        Each closed :class:`WindowStats` lands as one sample per derived
        series, timestamped at the window's *end* — so the
        ``sla_miss_rate`` series is exactly the monitor's (and hence
        ``SimulationResult.violation_rate_by_window``'s) per-window
        values, window for window.
        """
        windows = sink.monitor.windows
        window_min = sink.config.window_min
        for stats in windows[self._windows_seen :]:
            t = stats.start_min + window_min
            labels = {"service": stats.service}
            self.record("sla_miss_rate", labels, t, stats.violation_rate)
            self.record("sla_p95_ms", labels, t, stats.p95_ms)
            self.record("sla_window_count", labels, t, float(stats.count))
            if stats.errors:
                self.record(
                    "sla_window_errors", labels, t, float(stats.errors)
                )
        self._windows_seen = len(windows)

    def _scrape_engine(self, now_min: float) -> None:
        """Live engine state at scrape cadence (read-only, no gauges touched)."""
        sim = self._sim
        if sim is None:
            return
        depth = 0
        busy = 0
        total_threads = 0
        for name, state in sim._microservices.items():
            threads = state.spec.threads
            self.record(
                "containers",
                {"microservice": name},
                now_min,
                float(len(state.containers)),
            )
            for container in state.containers:
                total_threads += threads
                busy += threads - container.free_threads
                depth += (
                    len(container.fifo)
                    if container.fifo is not None
                    else len(container.queue)
                )
        self.record("queue_depth", {}, now_min, float(depth))
        self.record(
            "busy_fraction",
            {},
            now_min,
            busy / total_threads if total_threads else 0.0,
        )

    # ------------------------------------------------------------------
    # Writes & reads
    # ------------------------------------------------------------------
    def record(
        self, name: str, labels: Optional[Dict[str, str]], t: float, value: float
    ) -> Series:
        """Append one sample, creating the series on first touch.

        With ``labels=None`` the dotted registry-name convention is
        parsed into (family, labels) via :func:`parse_metric_name`.
        """
        if labels is None:
            name, labels = parse_metric_name(name)
        key = series_key(name, labels)
        series = self.series.get(key)
        if series is None:
            config = self.config
            series = self.series[key] = Series(
                name,
                labels,
                raw_capacity=config.raw_capacity,
                downsample_factor=config.downsample_factor,
                downsample_levels=config.downsample_levels,
                level_capacity=config.level_capacity,
            )
        series.append(t, value)
        return series

    def select(
        self, name: Optional[str] = None, labels: Optional[Dict[str, str]] = None
    ) -> List[Series]:
        """Series matching an exact name and/or label subset (sorted)."""
        out = []
        for key in sorted(self.series):
            series = self.series[key]
            if name is not None and series.name != name:
                continue
            if labels and any(
                series.labels.get(k) != v for k, v in labels.items()
            ):
                continue
            out.append(series)
        return out

    def get(self, name: str, labels: Optional[Dict[str, str]] = None) -> Optional[Series]:
        """The single series with this exact identity, or ``None``."""
        return self.series.get(series_key(name, labels or {}))

    def query(self, expr: str, at: Optional[float] = None):
        """Evaluate a query expression; see :mod:`.query`.

        Returns ``[(series, value)]`` for every matching series, with
        ``at`` defaulting to the latest scrape time.
        """
        from repro.telemetry.timeseries.query import evaluate

        if at is None:
            if self.last_scrape_min is not None:
                at = self.last_scrape_min
            else:  # manual-record mode: latest sample anywhere
                at = max(
                    (s.times[-1] for s in self.series.values() if s.times),
                    default=0.0,
                )
        return evaluate(self, expr, at)

    @property
    def total_samples(self) -> int:
        return sum(len(s) for s in self.series.values())

    def to_dict(self, max_points: Optional[int] = None) -> Dict:
        """JSON-ready summary (bounded by ``max_points`` per series)."""
        return {
            "scrape_interval_min": self.config.scrape_interval_min,
            "scrapes": self.scrapes,
            "series": len(self.series),
            "samples": self.total_samples,
            "rule_alerts": (
                [a.to_dict() for a in self.engine.alerts]
                if self.engine is not None
                else []
            ),
            "series_data": [
                self.series[key].to_dict(max_points)
                for key in sorted(self.series)
            ],
        }
