"""Embedded deterministic time-series database for the telemetry layer.

See :mod:`repro.telemetry.timeseries.store` for the store and scrape
loop, :mod:`~repro.telemetry.timeseries.query` for selectors and range
functions, and :mod:`~repro.telemetry.timeseries.rules` for the
recording/alerting rules engine.
"""

from repro.telemetry.timeseries.query import (
    Expr,
    Matcher,
    Selector,
    evaluate,
    parse_expr,
    parse_selector,
    range_functions,
)
from repro.telemetry.timeseries.rules import (
    AlertRule,
    RecordingRule,
    RuleAlert,
    RuleEngine,
    RuleSet,
    load_rules,
)
from repro.telemetry.timeseries.store import (
    Bin,
    Series,
    TimeSeriesConfig,
    TimeSeriesStore,
    parse_metric_name,
    series_key,
)

__all__ = [
    "AlertRule",
    "Bin",
    "Expr",
    "Matcher",
    "RecordingRule",
    "RuleAlert",
    "RuleEngine",
    "RuleSet",
    "Selector",
    "Series",
    "TimeSeriesConfig",
    "TimeSeriesStore",
    "evaluate",
    "load_rules",
    "parse_expr",
    "parse_metric_name",
    "parse_selector",
    "range_functions",
    "series_key",
]
