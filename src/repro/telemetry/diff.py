"""Cross-run regression diff over JSON run reports.

``repro report --diff A B`` compares two
:func:`~repro.telemetry.export.build_run_report` files (run A as the
baseline, run B as the candidate) and produces a verdict table:
per-service latency (p95), SLA violation rate, completion counts,
error/resilience counters, alert counts, and the container bill.  Each
row carries a three-way verdict — ``ok`` / ``improved`` /
``regression`` — under explicit tolerances, so two runs of the *same*
seed diff to zero regressions (the determinism contract) while a real
latency or SLA drift between builds fails loudly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["DiffRow", "DiffTolerances", "RunDiff", "diff_run_reports", "load_run_report"]

OK = "ok"
IMPROVED = "improved"
REGRESSION = "regression"


@dataclass(frozen=True)
class DiffTolerances:
    """How much drift between runs is considered noise.

    Attributes:
        p95_pct: Relative p95 drift tolerated, in percent.
        miss_rate: Absolute SLA violation-rate drift tolerated.
        completed_pct: Relative completed-request drift tolerated.
        errors_pct: Relative failed/shed/dropped drift tolerated (with
            an absolute floor of ``errors_floor`` events).
        errors_floor: Absolute error-count drift always tolerated.
        containers_pct: Relative container-bill drift tolerated.
    """

    p95_pct: float = 5.0
    miss_rate: float = 0.01
    completed_pct: float = 2.0
    errors_pct: float = 10.0
    errors_floor: float = 2.0
    containers_pct: float = 10.0


@dataclass(frozen=True)
class DiffRow:
    """One compared metric of one subject (service or run-wide)."""

    metric: str
    subject: str  # service name, or "run" for run-wide metrics
    a: Optional[float]
    b: Optional[float]
    verdict: str  # ok | improved | regression
    note: str = ""

    @property
    def delta(self) -> Optional[float]:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    def to_dict(self) -> Dict:
        entry: Dict = {
            "metric": self.metric,
            "subject": self.subject,
            "a": self.a,
            "b": self.b,
            "verdict": self.verdict,
        }
        if self.delta is not None:
            entry["delta"] = round(self.delta, 6)
        if self.note:
            entry["note"] = self.note
        return entry


@dataclass
class RunDiff:
    """The full verdict of one A-vs-B comparison."""

    rows: List[DiffRow] = field(default_factory=list)
    tolerances: DiffTolerances = field(default_factory=DiffTolerances)

    @property
    def regressions(self) -> List[DiffRow]:
        return [r for r in self.rows if r.verdict == REGRESSION]

    @property
    def improvements(self) -> List[DiffRow]:
        return [r for r in self.rows if r.verdict == IMPROVED]

    @property
    def verdict(self) -> str:
        return REGRESSION if self.regressions else OK

    def to_dict(self) -> Dict:
        return {
            "verdict": self.verdict,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "rows": [r.to_dict() for r in self.rows],
        }

    def table_rows(self) -> List[Dict]:
        """Rows shaped for :func:`repro.experiments.format_table`."""
        out = []
        for row in self.rows:
            delta = row.delta
            out.append(
                {
                    "metric": row.metric,
                    "subject": row.subject,
                    "run_a": row.a if row.a is not None else "-",
                    "run_b": row.b if row.b is not None else "-",
                    "delta": delta if delta is not None else "-",
                    "verdict": row.verdict,
                }
            )
        return out


def load_run_report(path: str) -> Dict:
    """Read one JSON run report, validating the schema version."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    schema = report.get("schema")
    if schema != 1:
        raise ValueError(f"{path}: unsupported run-report schema {schema!r}")
    return report


def _relative_verdict(
    a: Optional[float], b: Optional[float], tol_pct: float, up_is_bad: bool = True
) -> str:
    """Three-way verdict on a relative tolerance (percent of baseline)."""
    if a is None or b is None:
        return OK
    band = abs(a) * tol_pct / 100.0
    if b > a + band:
        return REGRESSION if up_is_bad else IMPROVED
    if b < a - band:
        return IMPROVED if up_is_bad else REGRESSION
    return OK


def _absolute_verdict(
    a: Optional[float], b: Optional[float], tol: float, up_is_bad: bool = True
) -> str:
    if a is None or b is None:
        return OK
    if b > a + tol:
        return REGRESSION if up_is_bad else IMPROVED
    if b < a - tol:
        return IMPROVED if up_is_bad else REGRESSION
    return OK


def _service_errors(report: Dict, service: str) -> float:
    """Failed/shed/dropped requests of one service, from registry counters."""
    counters = report.get("registry", {}).get("counters", {})
    prefix = f"request_errors.{service}."
    return float(
        sum(v for k, v in counters.items() if k.startswith(prefix))
    )


def diff_run_reports(
    report_a: Dict,
    report_b: Dict,
    tolerances: Optional[DiffTolerances] = None,
) -> RunDiff:
    """Compare two run reports; A is the baseline, B the candidate."""
    tol = tolerances or DiffTolerances()
    diff = RunDiff(tolerances=tol)
    rows = diff.rows

    services_a = report_a.get("services", {})
    services_b = report_b.get("services", {})
    only_a = sorted(set(services_a) - set(services_b))
    only_b = sorted(set(services_b) - set(services_a))
    for name in only_a:
        rows.append(
            DiffRow("present", name, 1.0, 0.0, REGRESSION, "service missing in B")
        )
    for name in only_b:
        rows.append(DiffRow("present", name, 0.0, 1.0, OK, "service new in B"))

    for name in sorted(set(services_a) & set(services_b)):
        a, b = services_a[name], services_b[name]
        p95_a, p95_b = a.get("p95_ms"), b.get("p95_ms")
        rows.append(
            DiffRow(
                "p95_ms", name, p95_a, p95_b,
                _relative_verdict(p95_a, p95_b, tol.p95_pct),
                f"tol {tol.p95_pct:g}%",
            )
        )
        miss_a, miss_b = a.get("violation_rate"), b.get("violation_rate")
        rows.append(
            DiffRow(
                "violation_rate", name, miss_a, miss_b,
                _absolute_verdict(miss_a, miss_b, tol.miss_rate),
                f"tol {tol.miss_rate:g}",
            )
        )
        comp_a = a.get("completed")
        comp_b = b.get("completed")
        rows.append(
            DiffRow(
                "completed", name,
                float(comp_a) if comp_a is not None else None,
                float(comp_b) if comp_b is not None else None,
                _relative_verdict(
                    float(comp_a) if comp_a is not None else None,
                    float(comp_b) if comp_b is not None else None,
                    tol.completed_pct,
                    up_is_bad=False,
                ),
                f"tol {tol.completed_pct:g}%",
            )
        )
        err_a = _service_errors(report_a, name)
        err_b = _service_errors(report_b, name)
        if err_a or err_b:
            band = max(tol.errors_floor, err_a * tol.errors_pct / 100.0)
            rows.append(
                DiffRow(
                    "errors", name, err_a, err_b,
                    _absolute_verdict(err_a, err_b, band),
                    f"tol max({tol.errors_floor:g}, {tol.errors_pct:g}%)",
                )
            )

    alerts_a = float(len(report_a.get("alerts", [])))
    alerts_b = float(len(report_b.get("alerts", [])))
    rows.append(
        DiffRow(
            "sla_alerts", "run", alerts_a, alerts_b,
            _absolute_verdict(alerts_a, alerts_b, 0.0),
        )
    )
    containers_a = float(sum(report_a.get("containers", {}).values()))
    containers_b = float(sum(report_b.get("containers", {}).values()))
    rows.append(
        DiffRow(
            "containers", "run", containers_a, containers_b,
            _relative_verdict(containers_a, containers_b, tol.containers_pct),
            f"tol {tol.containers_pct:g}%",
        )
    )
    events_a = report_a.get("events_processed")
    events_b = report_b.get("events_processed")
    rows.append(
        DiffRow(
            "events_processed", "run",
            float(events_a) if events_a is not None else None,
            float(events_b) if events_b is not None else None,
            OK,
            "informational",
        )
    )
    return diff
