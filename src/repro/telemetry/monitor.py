"""SLA violation monitor and autoscaler decision audit log.

Two structured event streams that make a run explainable after the fact:

* :class:`SLAMonitor` — closes one :class:`WindowStats` per (service,
  window) with the window's request count, violation count, and tail
  latency, and raises an :class:`AlertEvent` whenever a window's P95
  exceeds the service's SLA.  Its per-window violation counts agree
  exactly with the post-hoc
  :meth:`~repro.simulator.simulation.SimulationResult.violation_rate_by_window`
  API — both bucket a request by ``int(finish_minute // window)``.
* :class:`DecisionLog` — every container-count change (in-DES
  ``scale_container_count``, autoscaler reconcile, deployment-controller
  reconcile) appends a :class:`DecisionRecord` carrying the observed
  workload, the latency/SLA context, the container delta, and a
  human-readable reason, so "why did it scale?" has an answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "AlertEvent",
    "DecisionLog",
    "DecisionRecord",
    "SLAMonitor",
    "WindowStats",
]


@dataclass(frozen=True)
class WindowStats:
    """One closed observation window of one service."""

    service: str
    window: int  # window index: int(minute // window_min)
    start_min: float
    count: int
    violations: int
    p95_ms: float
    sla_ms: float

    @property
    def violation_rate(self) -> float:
        return self.violations / self.count if self.count else 0.0

    def to_dict(self) -> Dict:
        return {
            "service": self.service,
            "window": self.window,
            "start_min": round(self.start_min, 6),
            "count": self.count,
            "violations": self.violations,
            "violation_rate": round(self.violation_rate, 6),
            "p95_ms": round(self.p95_ms, 4),
            "sla_ms": self.sla_ms,
        }


@dataclass(frozen=True)
class AlertEvent:
    """A window whose tail latency broke the service's SLA."""

    service: str
    window: int
    start_min: float
    p95_ms: float
    sla_ms: float
    violations: int
    count: int

    def to_dict(self) -> Dict:
        return {
            "service": self.service,
            "window": self.window,
            "start_min": round(self.start_min, 6),
            "p95_ms": round(self.p95_ms, 4),
            "sla_ms": self.sla_ms,
            "violations": self.violations,
            "count": self.count,
        }


class SLAMonitor:
    """Watches windowed tail latency against per-service SLAs.

    The telemetry sink feeds it raw end-to-end samples via
    :meth:`observe`; window closing is driven externally (by the sink's
    window ticks and run finalization), so the monitor itself holds no
    clock.  Services without a registered SLA are tracked but never
    alerted.
    """

    def __init__(self, slas: Optional[Dict[str, float]] = None, percentile: float = 95.0):
        self.slas: Dict[str, float] = dict(slas or {})
        self.percentile = percentile
        self.windows: List[WindowStats] = []
        self.alerts: List[AlertEvent] = []
        #: open window buffers: service -> window index -> raw samples (ms)
        self._open: Dict[str, Dict[int, List[float]]] = {}

    # -- ingest ---------------------------------------------------------
    def observe(self, service: str, window: int, latency_ms: float) -> None:
        """Record one end-to-end latency sample into an open window."""
        by_window = self._open.get(service)
        if by_window is None:
            by_window = self._open[service] = {}
        samples = by_window.get(window)
        if samples is None:
            samples = by_window[window] = []
        samples.append(latency_ms)

    def close_windows(self, before: int, window_min: float) -> List[WindowStats]:
        """Close (and return) every open window with index < ``before``."""
        closed: List[WindowStats] = []
        for service in sorted(self._open):
            by_window = self._open[service]
            for index in sorted(w for w in by_window if w < before):
                closed.append(
                    self._close(service, index, by_window.pop(index), window_min)
                )
        return closed

    def close_all(self, window_min: float) -> List[WindowStats]:
        """Close every remaining open window (run finalization)."""
        closed = self.close_windows(before=1 << 62, window_min=window_min)
        return closed

    def _close(
        self, service: str, index: int, samples: List[float], window_min: float
    ) -> WindowStats:
        sla = self.slas.get(service, float("inf"))
        values = np.asarray(samples, dtype=float)
        stats = WindowStats(
            service=service,
            window=index,
            start_min=index * window_min,
            count=len(samples),
            violations=int(np.count_nonzero(values > sla)),
            p95_ms=float(np.percentile(values, self.percentile)),
            sla_ms=sla if sla != float("inf") else 0.0,
        )
        self.windows.append(stats)
        if sla != float("inf") and stats.p95_ms > sla:
            self.alerts.append(
                AlertEvent(
                    service=service,
                    window=index,
                    start_min=stats.start_min,
                    p95_ms=stats.p95_ms,
                    sla_ms=sla,
                    violations=stats.violations,
                    count=stats.count,
                )
            )
        return stats

    # -- queries --------------------------------------------------------
    def windows_of(self, service: str) -> List[WindowStats]:
        return [w for w in self.windows if w.service == service]

    def violation_rate(
        self, service: str, min_window: Optional[int] = None
    ) -> float:
        """Aggregate violation fraction over closed windows of a service."""
        windows = [
            w
            for w in self.windows_of(service)
            if min_window is None or w.window >= min_window
        ]
        total = sum(w.count for w in windows)
        if total == 0:
            raise ValueError(f"no closed windows for service {service!r}")
        return sum(w.violations for w in windows) / total


@dataclass(frozen=True)
class DecisionRecord:
    """One audited scaling decision."""

    minute: float
    actor: str  # "simulator" | "autoscaler" | "controller" | ...
    microservice: str
    before: int
    after: int
    reason: str
    workload: Optional[float] = None  # req/min the decision was based on
    latency_target_ms: Optional[float] = None

    @property
    def delta(self) -> int:
        return self.after - self.before

    def to_dict(self) -> Dict:
        entry = {
            "minute": round(self.minute, 6),
            "actor": self.actor,
            "microservice": self.microservice,
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
            "reason": self.reason,
        }
        if self.workload is not None:
            entry["workload"] = round(self.workload, 4)
        if self.latency_target_ms is not None:
            entry["latency_target_ms"] = round(self.latency_target_ms, 4)
        return entry


class DecisionLog:
    """Append-only audit trail of scaling decisions."""

    def __init__(self) -> None:
        self.records: List[DecisionRecord] = []

    def record(
        self,
        minute: float,
        actor: str,
        microservice: str,
        before: int,
        after: int,
        reason: str,
        workload: Optional[float] = None,
        latency_target_ms: Optional[float] = None,
    ) -> DecisionRecord:
        entry = DecisionRecord(
            minute=minute,
            actor=actor,
            microservice=microservice,
            before=before,
            after=after,
            reason=reason,
            workload=workload,
            latency_target_ms=latency_target_ms,
        )
        self.records.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self.records)

    def by_actor(self, actor: str) -> List[DecisionRecord]:
        return [r for r in self.records if r.actor == actor]

    def scale_ups(self) -> List[DecisionRecord]:
        return [r for r in self.records if r.delta > 0]

    def scale_downs(self) -> List[DecisionRecord]:
        return [r for r in self.records if r.delta < 0]

    def to_dicts(self) -> List[Dict]:
        return [r.to_dict() for r in self.records]
