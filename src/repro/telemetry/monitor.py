"""SLA violation monitor and autoscaler decision audit log.

Two structured event streams that make a run explainable after the fact:

* :class:`SLAMonitor` — closes one :class:`WindowStats` per (service,
  window) with the window's request count, violation count, and tail
  latency, and raises an :class:`AlertEvent` whenever a window's P95
  exceeds the service's SLA.  Its per-window violation counts agree
  exactly with the post-hoc
  :meth:`~repro.simulator.simulation.SimulationResult.violation_rate_by_window`
  API — both bucket a request by ``int(finish_minute // window)``.
* :class:`DecisionLog` — every container-count change (in-DES
  ``scale_container_count``, autoscaler reconcile, deployment-controller
  reconcile) appends a :class:`DecisionRecord` carrying the observed
  workload, the latency/SLA context, the container delta, and a
  human-readable reason, so "why did it scale?" has an answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "AlertEvent",
    "DecisionLog",
    "DecisionRecord",
    "ErrorBudgetAlert",
    "SLAMonitor",
    "WindowStats",
]


@dataclass(frozen=True)
class WindowStats:
    """One closed observation window of one service.

    ``count`` / ``violations`` / ``p95_ms`` cover *completed* requests;
    ``errors`` counts requests that failed or were shed in the window
    (resilience layer) — a window can close with errors and no
    completions, in which case ``p95_ms`` is 0.
    """

    service: str
    window: int  # window index: int(minute // window_min)
    start_min: float
    count: int
    violations: int
    p95_ms: float
    sla_ms: float
    errors: int = 0

    @property
    def violation_rate(self) -> float:
        return self.violations / self.count if self.count else 0.0

    @property
    def error_rate(self) -> float:
        """Errors over all requests the window saw (completed + errored)."""
        total = self.count + self.errors
        return self.errors / total if total else 0.0

    def to_dict(self) -> Dict:
        entry = {
            "service": self.service,
            "window": self.window,
            "start_min": round(self.start_min, 6),
            "count": self.count,
            "violations": self.violations,
            "violation_rate": round(self.violation_rate, 6),
            "p95_ms": round(self.p95_ms, 4),
            "sla_ms": self.sla_ms,
        }
        if self.errors:
            entry["errors"] = self.errors
            entry["error_rate"] = round(self.error_rate, 6)
        return entry


@dataclass(frozen=True)
class AlertEvent:
    """A window whose tail latency broke the service's SLA."""

    service: str
    window: int
    start_min: float
    p95_ms: float
    sla_ms: float
    violations: int
    count: int

    def to_dict(self) -> Dict:
        return {
            "service": self.service,
            "window": self.window,
            "start_min": round(self.start_min, 6),
            "p95_ms": round(self.p95_ms, 4),
            "sla_ms": self.sla_ms,
            "violations": self.violations,
            "count": self.count,
        }


@dataclass(frozen=True)
class ErrorBudgetAlert:
    """A window whose error fraction exhausted the service's error budget.

    Raised by the :class:`SLAMonitor` when failed/shed requests (fed via
    :meth:`SLAMonitor.observe_error` by the resilience layer) exceed
    ``error_budget`` as a fraction of all requests the window saw.
    """

    service: str
    window: int
    start_min: float
    errors: int
    count: int
    error_rate: float
    budget: float

    def to_dict(self) -> Dict:
        return {
            "service": self.service,
            "window": self.window,
            "start_min": round(self.start_min, 6),
            "errors": self.errors,
            "count": self.count,
            "error_rate": round(self.error_rate, 6),
            "budget": self.budget,
        }


class SLAMonitor:
    """Watches windowed tail latency against per-service SLAs.

    The telemetry sink feeds it raw end-to-end samples via
    :meth:`observe` (and, with the resilience layer attached, failed/shed
    requests via :meth:`observe_error`); window closing is driven
    externally (by the sink's window ticks and run finalization), so the
    monitor itself holds no clock.  Services without a registered SLA are
    tracked but never latency-alerted; with ``error_budget`` set, any
    window whose error fraction exceeds it raises an
    :class:`ErrorBudgetAlert`.
    """

    def __init__(
        self,
        slas: Optional[Dict[str, float]] = None,
        percentile: float = 95.0,
        error_budget: Optional[float] = None,
    ):
        if error_budget is not None and not 0.0 < error_budget < 1.0:
            raise ValueError(
                f"error_budget must be in (0, 1), got {error_budget}"
            )
        self.slas: Dict[str, float] = dict(slas or {})
        self.percentile = percentile
        self.error_budget = error_budget
        self.windows: List[WindowStats] = []
        self.alerts: List[AlertEvent] = []
        self.error_alerts: List[ErrorBudgetAlert] = []
        #: Alerts fired by the TSDB rules engine
        #: (:class:`~repro.telemetry.timeseries.RuleAlert` entries) —
        #: declarative alert rules deliver through the same monitor the
        #: built-in SLA/error-budget alerts use.
        self.rule_alerts: List = []
        #: open window buffers: service -> window index -> raw samples (ms)
        self._open: Dict[str, Dict[int, List[float]]] = {}
        #: open error counts: service -> window index -> errored requests
        self._open_errors: Dict[str, Dict[int, int]] = {}

    # -- ingest ---------------------------------------------------------
    def observe(self, service: str, window: int, latency_ms: float) -> None:
        """Record one end-to-end latency sample into an open window."""
        by_window = self._open.get(service)
        if by_window is None:
            by_window = self._open[service] = {}
        samples = by_window.get(window)
        if samples is None:
            samples = by_window[window] = []
        samples.append(latency_ms)

    def observe_error(self, service: str, window: int) -> None:
        """Record one failed/shed request into an open window."""
        by_window = self._open_errors.get(service)
        if by_window is None:
            by_window = self._open_errors[service] = {}
        by_window[window] = by_window.get(window, 0) + 1

    def close_windows(self, before: int, window_min: float) -> List[WindowStats]:
        """Close (and return) every open window with index < ``before``."""
        closed: List[WindowStats] = []
        for service in sorted(set(self._open) | set(self._open_errors)):
            by_window = self._open.get(service, {})
            by_errors = self._open_errors.get(service, {})
            indices = sorted(
                {w for w in by_window if w < before}
                | {w for w in by_errors if w < before}
            )
            for index in indices:
                closed.append(
                    self._close(
                        service,
                        index,
                        by_window.pop(index, []),
                        window_min,
                        errors=by_errors.pop(index, 0),
                    )
                )
        return closed

    def close_all(self, window_min: float) -> List[WindowStats]:
        """Close every remaining open window (run finalization)."""
        closed = self.close_windows(before=1 << 62, window_min=window_min)
        return closed

    def _close(
        self,
        service: str,
        index: int,
        samples: List[float],
        window_min: float,
        errors: int = 0,
    ) -> WindowStats:
        sla = self.slas.get(service, float("inf"))
        count = len(samples)
        if count:
            values = np.asarray(samples, dtype=float)
            violations = int(np.count_nonzero(values > sla))
            p95 = float(np.percentile(values, self.percentile))
        else:  # errors-only window: every request failed or was shed
            violations = 0
            p95 = 0.0
        stats = WindowStats(
            service=service,
            window=index,
            start_min=index * window_min,
            count=count,
            violations=violations,
            p95_ms=p95,
            sla_ms=sla if sla != float("inf") else 0.0,
            errors=errors,
        )
        self.windows.append(stats)
        if sla != float("inf") and count and stats.p95_ms > sla:
            self.alerts.append(
                AlertEvent(
                    service=service,
                    window=index,
                    start_min=stats.start_min,
                    p95_ms=stats.p95_ms,
                    sla_ms=sla,
                    violations=stats.violations,
                    count=stats.count,
                )
            )
        budget = self.error_budget
        if budget is not None and errors and stats.error_rate > budget:
            self.error_alerts.append(
                ErrorBudgetAlert(
                    service=service,
                    window=index,
                    start_min=stats.start_min,
                    errors=errors,
                    count=count,
                    error_rate=stats.error_rate,
                    budget=budget,
                )
            )
        return stats

    # -- queries --------------------------------------------------------
    def windows_of(self, service: str) -> List[WindowStats]:
        return [w for w in self.windows if w.service == service]

    def violation_rate(
        self, service: str, min_window: Optional[int] = None
    ) -> float:
        """Aggregate violation fraction over closed windows of a service."""
        windows = [
            w
            for w in self.windows_of(service)
            if min_window is None or w.window >= min_window
        ]
        total = sum(w.count for w in windows)
        if total == 0:
            raise ValueError(f"no closed windows for service {service!r}")
        return sum(w.violations for w in windows) / total


@dataclass(frozen=True)
class DecisionRecord:
    """One audited scaling decision."""

    minute: float
    actor: str  # "simulator" | "autoscaler" | "controller" | ...
    microservice: str
    before: int
    after: int
    reason: str
    workload: Optional[float] = None  # req/min the decision was based on
    latency_target_ms: Optional[float] = None

    @property
    def delta(self) -> int:
        return self.after - self.before

    def to_dict(self) -> Dict:
        entry = {
            "minute": round(self.minute, 6),
            "actor": self.actor,
            "microservice": self.microservice,
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
            "reason": self.reason,
        }
        if self.workload is not None:
            entry["workload"] = round(self.workload, 4)
        if self.latency_target_ms is not None:
            entry["latency_target_ms"] = round(self.latency_target_ms, 4)
        return entry


class DecisionLog:
    """Append-only audit trail of scaling decisions.

    Set ``logger`` (a
    :class:`~repro.telemetry.logging.StructuredLogger`) to mirror every
    record to stderr as one structured line carrying the run's
    ``run_id`` plus the decision's actor — the CLI wires this up under
    ``--log-format json`` so autoscaler/chaos/breaker activity and the
    observability server's access log share correlation fields.
    """

    def __init__(self, logger=None) -> None:
        self.records: List[DecisionRecord] = []
        self.logger = logger

    def record(
        self,
        minute: float,
        actor: str,
        microservice: str,
        before: int,
        after: int,
        reason: str,
        workload: Optional[float] = None,
        latency_target_ms: Optional[float] = None,
    ) -> DecisionRecord:
        entry = DecisionRecord(
            minute=minute,
            actor=actor,
            microservice=microservice,
            before=before,
            after=after,
            reason=reason,
            workload=workload,
            latency_target_ms=latency_target_ms,
        )
        self.records.append(entry)
        if self.logger is not None:
            self.logger.log(
                "decision",
                actor=actor,
                minute=round(minute, 6),
                microservice=microservice,
                before=before,
                after=after,
                reason=reason,
                workload=workload,
                latency_target_ms=latency_target_ms,
            )
        return entry

    def __len__(self) -> int:
        return len(self.records)

    def by_actor(self, actor: str) -> List[DecisionRecord]:
        return [r for r in self.records if r.actor == actor]

    def scale_ups(self) -> List[DecisionRecord]:
        return [r for r in self.records if r.delta > 0]

    def scale_downs(self) -> List[DecisionRecord]:
        return [r for r in self.records if r.delta < 0]

    def to_dicts(self) -> List[Dict]:
        return [r.to_dict() for r in self.records]
