"""Critical-path extraction and latency attribution (tentpole part 1).

A request's end-to-end latency is not the sum of everything that ran —
parallel stages overlap — but it *is* exactly the sum of own latencies
along the **critical tree**: starting from the root server span, each
stage contributes its slowest call, recursively.  This module walks that
tree per trace and decomposes the end-to-end latency into one
:class:`PathSegment` per on-path microservice occurrence.

With engine timings attached (live :class:`~repro.telemetry.TelemetrySink`
traces carry :class:`~repro.tracing.spans.SpanTiming`), each segment's
own latency further splits exactly into queue wait, service time, and the
interference inflation share of the service time.  Post-hoc traces
(synthesized, imported) decompose to own latencies only.

The identity ``sum(segment.own_ms) == end_to_end`` is exact because the
per-stage maximum telescopes: a server span's duration is its own latency
plus the sum over stages of the slowest child's server duration, and the
recursion replaces each such maximum with that child's full expansion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.tracing.coordinator import group_parallel
from repro.tracing.spans import Span, SpanKind, TraceRecord

__all__ = [
    "CriticalPath",
    "PathSegment",
    "critical_path_summary",
    "extract_critical_path",
]


@dataclass(frozen=True)
class PathSegment:
    """One microservice occurrence on a trace's critical path.

    ``own_ms`` is always present (Eq. 1 residual on the critical tree);
    the queue/service/inflation split is only available when the trace
    carries engine timings, and then satisfies
    ``queue_ms + service_ms == own_ms`` exactly.
    """

    microservice: str
    span_id: str
    own_ms: float
    queue_ms: Optional[float] = None
    service_ms: Optional[float] = None
    inflation_ms: Optional[float] = None

    def to_dict(self) -> Dict:
        entry: Dict = {
            "microservice": self.microservice,
            "span_id": self.span_id,
            "own_ms": round(self.own_ms, 6),
        }
        if self.queue_ms is not None:
            entry["queue_ms"] = round(self.queue_ms, 6)
            entry["service_ms"] = round(self.service_ms, 6)
            entry["inflation_ms"] = round(self.inflation_ms, 6)
        return entry


@dataclass(frozen=True)
class CriticalPath:
    """One trace's end-to-end latency, decomposed along its critical tree."""

    trace_id: str
    service: str
    end_to_end_ms: float
    segments: Tuple[PathSegment, ...]

    @property
    def total_own_ms(self) -> float:
        """Sum of segment own latencies (equals ``end_to_end_ms``)."""
        return sum(segment.own_ms for segment in self.segments)

    def by_microservice(self) -> Dict[str, float]:
        """Aggregated critical-path own latency per microservice."""
        totals: Dict[str, float] = {}
        for segment in self.segments:
            totals[segment.microservice] = (
                totals.get(segment.microservice, 0.0) + segment.own_ms
            )
        return totals

    def to_dict(self) -> Dict:
        return {
            "trace_id": self.trace_id,
            "service": self.service,
            "end_to_end_ms": round(self.end_to_end_ms, 6),
            "segments": [segment.to_dict() for segment in self.segments],
        }


def _child_index(trace: TraceRecord) -> Dict[Optional[str], List[Span]]:
    """parent_id -> children, start-ordered (one pass; avoids O(n²) walks)."""
    index: Dict[Optional[str], List[Span]] = {}
    for span in trace.spans:
        index.setdefault(span.parent_id, []).append(span)
    for children in index.values():
        children.sort(key=lambda s: (s.start, s.span_id))
    return index


def extract_critical_path(trace: TraceRecord) -> CriticalPath:
    """Decompose one trace's end-to-end latency along its critical tree.

    At every server span, stages are regrouped from client-span overlap
    (the coordinator's rule); each stage's slowest call — by server span
    duration, client duration when the server span was lost — joins the
    path, and the recursion descends into it.  Segments are listed in
    root-first path order.
    """
    children = _child_index(trace)
    timings = trace.timings
    segments: List[PathSegment] = []

    def _walk(server_span: Span) -> None:
        client_children = [
            s
            for s in children.get(server_span.span_id, ())
            if s.kind is SpanKind.CLIENT
        ]
        downstream = 0.0
        critical_children: List[Span] = []
        for stage in group_parallel(client_children):
            best_duration = float("-inf")
            best_server: Optional[Span] = None
            for client_span in stage:
                servers = [
                    s
                    for s in children.get(client_span.span_id, ())
                    if s.kind is SpanKind.SERVER
                ]
                if servers:
                    candidate = max(servers, key=lambda s: s.duration)
                    duration = candidate.duration
                else:
                    candidate = None
                    duration = client_span.duration
                if duration > best_duration:
                    best_duration = duration
                    best_server = candidate
            downstream += best_duration
            if best_server is not None:
                critical_children.append(best_server)
        own = max(server_span.duration - downstream, 0.0)
        timing = timings.get(server_span.span_id) if timings else None
        if timing is not None:
            segments.append(
                PathSegment(
                    microservice=server_span.microservice,
                    span_id=server_span.span_id,
                    own_ms=own,
                    queue_ms=timing.queue_ms,
                    service_ms=timing.service_ms,
                    inflation_ms=timing.inflation_ms,
                )
            )
        else:
            segments.append(
                PathSegment(
                    microservice=server_span.microservice,
                    span_id=server_span.span_id,
                    own_ms=own,
                )
            )
        for child in critical_children:
            _walk(child)

    root = trace.root()
    _walk(root)
    return CriticalPath(
        trace_id=trace.trace_id,
        service=trace.service,
        end_to_end_ms=root.duration,
        segments=tuple(segments),
    )


def critical_path_summary(paths: Iterable[CriticalPath]) -> List[Dict]:
    """Aggregate critical paths into per-microservice attribution rows.

    Each row carries the microservice's appearance count, its total and
    mean own latency on critical paths, its share of the summed
    end-to-end latency, and — where engine timings were present — the
    queue/service/inflation split of its contribution.  Rows are sorted
    by total own latency, the most latency-responsible microservice
    first.
    """
    totals: Dict[str, Dict[str, float]] = {}
    total_e2e = 0.0
    n_paths = 0
    for path in paths:
        n_paths += 1
        total_e2e += path.end_to_end_ms
        for segment in path.segments:
            row = totals.setdefault(
                segment.microservice,
                {
                    "appearances": 0.0,
                    "own_ms": 0.0,
                    "queue_ms": 0.0,
                    "service_ms": 0.0,
                    "inflation_ms": 0.0,
                    "timed": 0.0,
                },
            )
            row["appearances"] += 1
            row["own_ms"] += segment.own_ms
            if segment.queue_ms is not None:
                row["timed"] += 1
                row["queue_ms"] += segment.queue_ms
                row["service_ms"] += segment.service_ms
                row["inflation_ms"] += segment.inflation_ms

    rows: List[Dict] = []
    for name, row in totals.items():
        appearances = int(row["appearances"])
        entry: Dict = {
            "microservice": name,
            "appearances": appearances,
            "total_own_ms": round(row["own_ms"], 4),
            "mean_own_ms": round(row["own_ms"] / appearances, 4),
            "share_pct": round(100.0 * row["own_ms"] / total_e2e, 2)
            if total_e2e > 0
            else 0.0,
        }
        if row["timed"]:
            entry["mean_queue_ms"] = round(row["queue_ms"] / row["timed"], 4)
            entry["mean_service_ms"] = round(row["service_ms"] / row["timed"], 4)
            entry["mean_inflation_ms"] = round(
                row["inflation_ms"] / row["timed"], 4
            )
        rows.append(entry)
    rows.sort(key=lambda r: r["total_own_ms"], reverse=True)
    return rows
