"""Profile-drift detection (tentpole part 3).

Erms' offline profiler fits each microservice a piecewise-linear latency
model (Eq. 15) once; every provisioning decision afterwards trusts it.
When the floor changes — a neighbour's interference grows, a code path
slows, a cache warms differently — the model silently under- or
over-provisions.  This module watches live profiling windows (the same
``(per-container load, tail latency)`` joins the offline profiler
trains on, via :class:`~repro.tracing.metrics.MetricsStore`), refits the
piecewise model, and compares:

* **prediction error** — the primary signal: median relative error of the
  offline model against the live windows.  Works at any load spread.
* **parameter drift** — effective slope, intercept, and cut-off point of
  the refit against the offline model, only consulted when the live
  windows span enough of the load axis for a refit to be identified.

Confirmed drift raises an :class:`~repro.telemetry.monitor.AlertEvent`
(service ``profile-drift:<microservice>``) through the run's existing
:class:`~repro.telemetry.monitor.SLAMonitor` alert stream and appends a
zero-delta audit record (actor ``drift-detector``) to the
:class:`~repro.telemetry.monitor.DecisionLog`, so drift shows up in the
same places operators already watch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.model import PiecewiseLatencyModel
from repro.profiling.piecewise import PiecewiseFit, fit_piecewise
from repro.telemetry.monitor import AlertEvent, DecisionLog, SLAMonitor
from repro.tracing.metrics import MetricsStore, ProfilingWindow

__all__ = [
    "DriftReport",
    "DriftThresholds",
    "detect_profile_drift",
    "refit_profile",
]


@dataclass(frozen=True)
class DriftThresholds:
    """Tolerances for declaring a live profile drifted from the offline fit.

    Attributes:
        prediction_rel: Median relative prediction error above which drift
            is declared regardless of parameter comparison.
        slope_rel: Relative change of the effective slope (secant over the
            observed load range) that counts as slope drift.
        intercept_abs_ms: Absolute change (ms) of the predicted latency at
            the low end of the observed range that counts as intercept
            drift.
        cutoff_rel: Relative displacement of the cut-off point (σ) that
            counts as cut-off drift; only checked when both the offline
            cut-off lies inside the observed range and the refit is
            genuinely two-segment.
        min_windows: Minimum live windows before any verdict is attempted.
        min_load_spread_rel: Observed load range must span at least this
            fraction of the mean load before parameter comparison (and the
            refit) is trusted; below it only prediction error is used.
    """

    prediction_rel: float = 0.35
    slope_rel: float = 0.75
    intercept_abs_ms: float = 10.0
    cutoff_rel: float = 0.5
    min_windows: int = 4
    min_load_spread_rel: float = 0.3


@dataclass(frozen=True)
class DriftReport:
    """Verdict for one microservice's live windows vs its offline profile."""

    microservice: str
    drifted: bool
    reason: str
    n_windows: int
    median_rel_error: float
    observed_p95_ms: float  # median of live window tail latencies
    predicted_p95_ms: float  # median of offline-model predictions
    slope_rel_change: Optional[float] = None
    intercept_change_ms: Optional[float] = None
    cutoff_rel_change: Optional[float] = None
    refit: Optional[PiecewiseFit] = None

    def to_dict(self) -> Dict:
        entry: Dict = {
            "microservice": self.microservice,
            "drifted": self.drifted,
            "reason": self.reason,
            "n_windows": self.n_windows,
            "median_rel_error": round(self.median_rel_error, 4),
            "observed_p95_ms": round(self.observed_p95_ms, 4),
            "predicted_p95_ms": round(self.predicted_p95_ms, 4),
        }
        if self.slope_rel_change is not None:
            entry["slope_rel_change"] = round(self.slope_rel_change, 4)
        if self.intercept_change_ms is not None:
            entry["intercept_change_ms"] = round(self.intercept_change_ms, 4)
        if self.cutoff_rel_change is not None:
            entry["cutoff_rel_change"] = round(self.cutoff_rel_change, 4)
        return entry


def refit_profile(windows: Sequence[ProfilingWindow]) -> PiecewiseFit:
    """Refit the Eq. 15 piecewise model from live profiling windows."""
    if len(windows) < 2:
        raise ValueError(f"need at least 2 windows to refit, got {len(windows)}")
    loads = np.asarray([w.per_container_load for w in windows], dtype=float)
    latencies = np.asarray([w.tail_latency for w in windows], dtype=float)
    return fit_piecewise(loads, latencies, min_segment_points=2)


def _effective_slope(model: PiecewiseLatencyModel, lo: float, hi: float) -> float:
    """Secant slope of the model over [lo, hi] — comparable across fits
    whose breakpoints landed in different places."""
    if hi <= lo:
        return 0.0
    return (model.latency(hi) - model.latency(lo)) / (hi - lo)


def _detect_one(
    name: str,
    windows: Sequence[ProfilingWindow],
    model: PiecewiseLatencyModel,
    thresholds: DriftThresholds,
) -> DriftReport:
    n = len(windows)
    if n < thresholds.min_windows:
        return DriftReport(
            microservice=name,
            drifted=False,
            reason=f"insufficient windows ({n} < {thresholds.min_windows})",
            n_windows=n,
            median_rel_error=0.0,
            observed_p95_ms=float(
                np.median([w.tail_latency for w in windows]) if n else 0.0
            ),
            predicted_p95_ms=0.0,
        )

    loads = np.asarray([w.per_container_load for w in windows], dtype=float)
    observed = np.asarray([w.tail_latency for w in windows], dtype=float)
    predicted = np.asarray([model.latency(load) for load in loads], dtype=float)
    rel_errors = np.abs(observed - predicted) / np.maximum(np.abs(predicted), 1e-9)
    median_rel = float(np.median(rel_errors))
    observed_med = float(np.median(observed))
    predicted_med = float(np.median(predicted))

    reasons: List[str] = []
    if median_rel > thresholds.prediction_rel:
        reasons.append(
            f"median prediction error {median_rel:.0%} > "
            f"{thresholds.prediction_rel:.0%}"
        )

    slope_rel_change: Optional[float] = None
    intercept_change: Optional[float] = None
    cutoff_rel_change: Optional[float] = None
    lo, hi = float(loads.min()), float(loads.max())
    mean_load = float(loads.mean())
    spread_ok = (
        mean_load > 0
        and (hi - lo) >= thresholds.min_load_spread_rel * mean_load
    )
    if spread_ok:
        refit = refit_profile(windows)
        live = refit.model
        base_slope = _effective_slope(model, lo, hi)
        live_slope = _effective_slope(live, lo, hi)
        slope_rel_change = abs(live_slope - base_slope) / max(abs(base_slope), 1e-9)
        if slope_rel_change > thresholds.slope_rel:
            reasons.append(
                f"effective slope changed {slope_rel_change:.0%} over "
                f"load [{lo:.0f}, {hi:.0f}]"
            )
        intercept_change = live.latency(lo) - model.latency(lo)
        if abs(intercept_change) > thresholds.intercept_abs_ms:
            reasons.append(
                f"latency at load {lo:.0f} moved {intercept_change:+.1f} ms"
            )
        # The cut-off is only identified when the offline σ sits inside the
        # observed range and the refit actually found two segments.
        two_segment = (
            live.low.slope != live.high.slope
            or live.low.intercept != live.high.intercept
        )
        if two_segment and lo < model.cutoff < hi:
            cutoff_rel_change = abs(live.cutoff - model.cutoff) / model.cutoff
            if cutoff_rel_change > thresholds.cutoff_rel:
                reasons.append(
                    f"cut-off moved {cutoff_rel_change:.0%} "
                    f"({model.cutoff:.0f} → {live.cutoff:.0f})"
                )
    else:
        refit = None

    return DriftReport(
        microservice=name,
        drifted=bool(reasons),
        reason="; ".join(reasons) if reasons else "within thresholds",
        n_windows=n,
        median_rel_error=median_rel,
        observed_p95_ms=observed_med,
        predicted_p95_ms=predicted_med,
        slope_rel_change=slope_rel_change,
        intercept_change_ms=intercept_change,
        cutoff_rel_change=cutoff_rel_change,
        refit=refit,
    )


def detect_profile_drift(
    store: MetricsStore,
    profiles: Mapping[str, PiecewiseLatencyModel],
    thresholds: Optional[DriftThresholds] = None,
    monitor: Optional[SLAMonitor] = None,
    decisions: Optional[DecisionLog] = None,
    minute: Optional[float] = None,
) -> List[DriftReport]:
    """Compare live profiling windows against offline profiles.

    Args:
        store: Live metrics (the sink's ``MetricsStore`` or a
            ``SimulationResult.to_metrics_store()`` conversion).
        profiles: Offline piecewise models per microservice, as handed to
            the resource allocator.
        thresholds: Drift tolerances (defaults: :class:`DriftThresholds`).
        monitor: When given, each drifted microservice appends an
            :class:`AlertEvent` with service ``profile-drift:<name>`` to
            ``monitor.alerts``.
        decisions: When given, each drifted microservice appends a
            zero-delta ``actor="drift-detector"`` audit record.
        minute: Timestamp for the emitted alert/audit records; defaults to
            the last live window's minute.

    Returns:
        One :class:`DriftReport` per profiled microservice, name-sorted.
    """
    thresholds = thresholds or DriftThresholds()
    reports: List[DriftReport] = []
    for name in sorted(profiles):
        windows = store.profiling_windows(name)
        report = _detect_one(name, windows, profiles[name], thresholds)
        reports.append(report)
        if not report.drifted:
            continue
        stamp = minute if minute is not None else (
            float(windows[-1].minute) if windows else 0.0
        )
        if monitor is not None:
            monitor.alerts.append(
                AlertEvent(
                    service=f"profile-drift:{name}",
                    window=int(stamp),
                    start_min=stamp,
                    p95_ms=report.observed_p95_ms,
                    sla_ms=report.predicted_p95_ms,
                    violations=int(
                        np.count_nonzero(
                            [w.tail_latency for w in windows]
                            > np.asarray(
                                [profiles[name].latency(w.per_container_load) for w in windows]
                            )
                        )
                    ),
                    count=report.n_windows,
                )
            )
        if decisions is not None:
            decisions.record(
                minute=stamp,
                actor="drift-detector",
                microservice=name,
                before=0,
                after=0,
                reason=f"profile drift: {report.reason}",
            )
    return reports
