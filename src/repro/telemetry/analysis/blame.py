"""SLA blame attribution (tentpole part 2).

For every observation window in which a service broke its SLA, compare
each microservice's *observed* own latency tail (Eq. 1 over the window's
traces) against the latency target Erms assigned it (the Eq. 5 KKT
split), and rank the offenders by how far past their budget they ran.
A microservice over its target in a violating window is where the SLA
went missing; one under its target is exonerated even if slow in
absolute terms.

At shared microservices the priority assignment of Eqs. 13–14 adds a
second check: a *priority inversion* is flagged when, in the same window
and at the same shared microservice, a higher-priority service blew its
target while a lower-priority one met its own — the scheduling order the
allocation paid for did not hold on the floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.tracing.coordinator import trace_own_latencies
from repro.tracing.spans import TraceRecord

_MS_PER_MINUTE = 60_000.0

__all__ = ["BlameEntry", "BlameReport", "PriorityInversion", "attribute_blame"]


@dataclass(frozen=True)
class BlameEntry:
    """One microservice's showing against its target in one violating window."""

    service: str
    window: int
    microservice: str
    observed_ms: float  # tail own latency over the window's traces
    target_ms: float  # KKT-assigned latency target (Eq. 5)
    excess_ms: float  # observed - target (positive = over budget)
    excess_ratio: float  # excess / target
    samples: int

    def to_dict(self) -> Dict:
        return {
            "service": self.service,
            "window": self.window,
            "microservice": self.microservice,
            "observed_ms": round(self.observed_ms, 4),
            "target_ms": round(self.target_ms, 4),
            "excess_ms": round(self.excess_ms, 4),
            "excess_ratio": round(self.excess_ratio, 4),
            "samples": self.samples,
        }


@dataclass(frozen=True)
class PriorityInversion:
    """A window where priority order failed at a shared microservice."""

    microservice: str
    window: int
    victim: str  # higher-priority service that missed its target
    victim_rank: int
    victim_excess_ms: float
    offender: str  # lower-priority service that met its own target
    offender_rank: int
    offender_headroom_ms: float  # target - observed of the offender

    def to_dict(self) -> Dict:
        return {
            "microservice": self.microservice,
            "window": self.window,
            "victim": self.victim,
            "victim_rank": self.victim_rank,
            "victim_excess_ms": round(self.victim_excess_ms, 4),
            "offender": self.offender,
            "offender_rank": self.offender_rank,
            "offender_headroom_ms": round(self.offender_headroom_ms, 4),
        }


@dataclass
class BlameReport:
    """Ranked blame entries plus flagged priority inversions."""

    window_min: float
    percentile: float
    #: (service, window) pairs that contained at least one SLA-violating
    #: trace — the windows the entries were computed for.
    violating_windows: List[Tuple[str, int]] = field(default_factory=list)
    #: All entries across violating windows, worst excess first.
    entries: List[BlameEntry] = field(default_factory=list)
    inversions: List[PriorityInversion] = field(default_factory=list)

    def offenders(
        self,
        service: Optional[str] = None,
        window: Optional[int] = None,
    ) -> List[BlameEntry]:
        """Entries over their target (excess > 0), optionally filtered."""
        return [
            entry
            for entry in self.entries
            if entry.excess_ms > 0.0
            and (service is None or entry.service == service)
            and (window is None or entry.window == window)
        ]

    def top_offender(self, service: Optional[str] = None) -> Optional[BlameEntry]:
        offenders = self.offenders(service=service)
        return offenders[0] if offenders else None

    def to_dict(self) -> Dict:
        return {
            "window_min": self.window_min,
            "percentile": self.percentile,
            "violating_windows": [
                {"service": service, "window": window}
                for service, window in self.violating_windows
            ],
            "entries": [entry.to_dict() for entry in self.entries],
            "inversions": [inv.to_dict() for inv in self.inversions],
        }


def attribute_blame(
    traces: List[TraceRecord],
    targets: Mapping[str, Mapping[str, float]],
    slas: Mapping[str, float],
    priorities: Optional[Mapping[str, Mapping[str, int]]] = None,
    window_min: float = 1.0,
    percentile: float = 95.0,
) -> BlameReport:
    """Attribute SLA violations to microservices over their targets.

    Args:
        traces: Collected traces (live sink output or post-hoc records).
        targets: Per service, the latency target per microservice — e.g.
            ``Allocation.targets`` from an Erms scaling decision.
        slas: End-to-end SLA per service (ms).
        priorities: Per shared microservice, the service priority ranks
            (rank 0 = highest) — e.g. ``Allocation.priorities``; enables
            priority-inversion detection.
        window_min: Observation window length in minutes (same bucketing
            as the live SLA monitor: ``int(finish_minute / window_min)``).
        percentile: Tail percentile compared against the targets.

    Returns:
        A :class:`BlameReport` with entries ranked worst-excess-first.

    A window is *violating* when any of its traces exceeded the service's
    SLA — a presence test rather than a rate estimate, so it stays
    correct under tail-based sampling, which keeps every violating trace
    but only a floor of healthy ones.
    """
    if window_min <= 0:
        raise ValueError("window_min must be positive")
    # (service, window) -> microservice -> own-latency samples
    own: Dict[Tuple[str, int], Dict[str, List[float]]] = {}
    violating: List[Tuple[str, int]] = []
    seen_violating = set()
    for trace in traces:
        root = trace.root()
        window = int(root.end / _MS_PER_MINUTE / window_min)
        key = (trace.service, window)
        bucket = own.setdefault(key, {})
        for name, values in trace_own_latencies(trace).items():
            bucket.setdefault(name, []).extend(values)
        sla = slas.get(trace.service)
        if sla is not None and root.duration > sla and key not in seen_violating:
            seen_violating.add(key)
            violating.append(key)

    violating.sort()
    entries: List[BlameEntry] = []
    tails: Dict[Tuple[str, int, str], Tuple[float, int]] = {}

    def _tail(service: str, window: int, name: str) -> Optional[Tuple[float, int]]:
        cache_key = (service, window, name)
        if cache_key in tails:
            return tails[cache_key]
        samples = own.get((service, window), {}).get(name)
        if not samples:
            return None
        value = (float(np.percentile(samples, percentile)), len(samples))
        tails[cache_key] = value
        return value

    for service, window in violating:
        for name, target in sorted(targets.get(service, {}).items()):
            observed = _tail(service, window, name)
            if observed is None:
                continue
            observed_ms, samples = observed
            excess = observed_ms - target
            entries.append(
                BlameEntry(
                    service=service,
                    window=window,
                    microservice=name,
                    observed_ms=observed_ms,
                    target_ms=target,
                    excess_ms=excess,
                    excess_ratio=excess / target if target > 0 else float("inf"),
                    samples=samples,
                )
            )
    entries.sort(key=lambda entry: entry.excess_ms, reverse=True)

    inversions: List[PriorityInversion] = []
    if priorities:
        for service, window in violating:
            for name, ranks in sorted(priorities.items()):
                victim_rank = ranks.get(service)
                victim_target = targets.get(service, {}).get(name)
                if victim_rank is None or victim_target is None:
                    continue
                victim = _tail(service, window, name)
                if victim is None or victim[0] <= victim_target:
                    continue  # the high-priority class met its target here
                for other, other_rank in sorted(ranks.items()):
                    if other == service or other_rank <= victim_rank:
                        continue  # only lower-priority services can invert
                    other_target = targets.get(other, {}).get(name)
                    if other_target is None:
                        continue
                    observed = _tail(other, window, name)
                    if observed is None or observed[0] > other_target:
                        continue  # the low-priority class suffered too
                    inversions.append(
                        PriorityInversion(
                            microservice=name,
                            window=window,
                            victim=service,
                            victim_rank=victim_rank,
                            victim_excess_ms=victim[0] - victim_target,
                            offender=other,
                            offender_rank=other_rank,
                            offender_headroom_ms=other_target - observed[0],
                        )
                    )

    return BlameReport(
        window_min=window_min,
        percentile=percentile,
        violating_windows=violating,
        entries=entries,
        inversions=inversions,
    )
