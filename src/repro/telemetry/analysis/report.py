"""One-call run analysis: critical paths + blame + drift + sampling stats.

:func:`analyze_run` is the front door of the trace analytics engine — the
``python -m repro analyze`` subcommand and the run-report exporter both
call it.  It consumes either a live :class:`~repro.telemetry.TelemetrySink`
(traces, metrics store, SLA monitor, and decision log all in one) or the
equivalent pieces passed explicitly for post-hoc analysis, and returns a
:class:`RunAnalysis` whose ``to_dict()`` is JSON-ready.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.model import PiecewiseLatencyModel
from repro.telemetry.analysis.blame import BlameReport, attribute_blame
from repro.telemetry.analysis.critical_path import (
    CriticalPath,
    critical_path_summary,
    extract_critical_path,
)
from repro.telemetry.analysis.drift import (
    DriftReport,
    DriftThresholds,
    detect_profile_drift,
)
from repro.tracing.metrics import MetricsStore
from repro.tracing.spans import TraceRecord

__all__ = ["AnalysisOptions", "RunAnalysis", "analyze_run"]


@dataclass(frozen=True)
class AnalysisOptions:
    """Knobs of :func:`analyze_run`."""

    window_min: float = 1.0
    percentile: float = 95.0
    #: How many slowest traces get a full per-segment breakdown.
    top_paths: int = 5
    drift_thresholds: DriftThresholds = field(default_factory=DriftThresholds)


@dataclass
class RunAnalysis:
    """Everything the trace analytics engine extracted from one run."""

    n_traces: int
    #: Per-microservice critical-path attribution rows (see
    #: :func:`~repro.telemetry.analysis.critical_path.critical_path_summary`).
    critical_path: List[Dict] = field(default_factory=list)
    #: The ``top_paths`` slowest traces, with full segment breakdowns.
    slowest: List[CriticalPath] = field(default_factory=list)
    #: Largest |sum(own) − e2e| across all decomposed traces — an audit of
    #: the exactness identity (float association noise only).
    decomposition_max_abs_error_ms: float = 0.0
    blame: Optional[BlameReport] = None
    drift: List[DriftReport] = field(default_factory=list)
    #: Trace-retention accounting (sampled/kept/tail_dropped/threshold).
    sampling: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        entry: Dict = {
            "n_traces": self.n_traces,
            "critical_path": self.critical_path,
            "slowest": [path.to_dict() for path in self.slowest],
            "decomposition_max_abs_error_ms": round(
                self.decomposition_max_abs_error_ms, 9
            ),
        }
        if self.blame is not None:
            entry["blame"] = self.blame.to_dict()
        if self.drift:
            entry["drift"] = [report.to_dict() for report in self.drift]
        if self.sampling:
            entry["sampling"] = self.sampling
        return entry


def analyze_run(
    *,
    sink=None,
    traces: Optional[Sequence[TraceRecord]] = None,
    store: Optional[MetricsStore] = None,
    slas: Optional[Mapping[str, float]] = None,
    targets: Optional[Mapping[str, Mapping[str, float]]] = None,
    priorities: Optional[Mapping[str, Mapping[str, int]]] = None,
    profiles: Optional[Mapping[str, PiecewiseLatencyModel]] = None,
    options: Optional[AnalysisOptions] = None,
) -> RunAnalysis:
    """Run the full analytics pipeline over one run's telemetry.

    Args:
        sink: A finalized :class:`~repro.telemetry.TelemetrySink`; supplies
            defaults for ``traces`` (retained traces), ``store`` (live
            metrics), and ``slas`` (the monitor's registry), and receives
            drift alerts/audit records through its monitor and decision
            log.
        traces: Traces to analyze (overrides the sink's).
        store: Live profiling windows for drift detection.
        slas: End-to-end SLA per service — enables blame attribution when
            ``targets`` is also given.
        targets: Per-service latency targets per microservice (Eq. 5
            split), e.g. ``Allocation.targets``.
        priorities: Shared-microservice priority ranks (Eqs. 13–14), e.g.
            ``Allocation.priorities`` — enables inversion detection.
        profiles: Offline piecewise models — enables drift detection.
        options: Analysis knobs; defaults to :class:`AnalysisOptions`.

    Returns:
        A populated :class:`RunAnalysis`.
    """
    options = options or AnalysisOptions()
    if sink is not None:
        if traces is None:
            traces = sink.traces
        if store is None:
            store = sink.metrics
        if slas is None:
            slas = dict(sink.monitor.slas)
    traces = list(traces or [])

    paths = [extract_critical_path(trace) for trace in traces]
    max_err = 0.0
    for path in paths:
        err = abs(path.total_own_ms - path.end_to_end_ms)
        if err > max_err:
            max_err = err
    slowest = sorted(paths, key=lambda p: p.end_to_end_ms, reverse=True)
    slowest = slowest[: options.top_paths]

    blame: Optional[BlameReport] = None
    if targets is not None and slas:
        blame = attribute_blame(
            traces,
            targets=targets,
            slas=slas,
            priorities=priorities,
            window_min=options.window_min,
            percentile=options.percentile,
        )

    drift: List[DriftReport] = []
    if profiles is not None and store is not None:
        drift = detect_profile_drift(
            store,
            profiles,
            thresholds=options.drift_thresholds,
            monitor=sink.monitor if sink is not None else None,
            decisions=sink.decisions if sink is not None else None,
        )

    sampling: Dict = {}
    if sink is not None:
        sampling = {
            "sampled_traces": sink.sampled_traces,
            "kept_traces": sink.kept_traces,
            "tail_dropped": sink.tail_dropped,
            "tail_threshold_ms": sink.config.tail_threshold_ms,
            "sampling_rate": sink.config.sampling_rate,
        }

    return RunAnalysis(
        n_traces=len(traces),
        critical_path=critical_path_summary(paths),
        slowest=slowest,
        decomposition_max_abs_error_ms=max_err,
        blame=blame,
        drift=drift,
        sampling=sampling,
    )
