"""Trace analytics engine (paper §5.1–§5.3 turned inward on the DES).

Four analyses over one run's telemetry — live
:class:`~repro.telemetry.TelemetrySink` output or post-hoc
:class:`~repro.tracing.spans.TraceRecord` lists are consumed uniformly:

* :mod:`~repro.telemetry.analysis.critical_path` — per-trace critical-path
  extraction, decomposing end-to-end latency exactly into per-microservice
  own latency (and, with engine timings, queue wait / service time /
  interference inflation).
* :mod:`~repro.telemetry.analysis.blame` — SLA blame attribution against
  the Eq. 5 latency targets, with priority-inversion flagging at shared
  microservices (Eqs. 13–14).
* :mod:`~repro.telemetry.analysis.drift` — profile-drift detection by
  refitting the Eq. 15 piecewise model on live windows, alerting through
  the existing SLA monitor / decision log.
* :mod:`~repro.telemetry.analysis.report` — :func:`analyze_run`, the
  one-call pipeline behind ``python -m repro analyze``.

Tail-based sampling itself lives in the sink
(:class:`~repro.telemetry.TelemetryConfig` ``tail_threshold_ms`` /
``tail_floor``); the analyses are designed to stay correct under it —
blame tests violating-trace *presence*, never healthy-traffic rates.
"""

from repro.telemetry.analysis.blame import (
    BlameEntry,
    BlameReport,
    PriorityInversion,
    attribute_blame,
)
from repro.telemetry.analysis.critical_path import (
    CriticalPath,
    PathSegment,
    critical_path_summary,
    extract_critical_path,
)
from repro.telemetry.analysis.drift import (
    DriftReport,
    DriftThresholds,
    detect_profile_drift,
    refit_profile,
)
from repro.telemetry.analysis.report import (
    AnalysisOptions,
    RunAnalysis,
    analyze_run,
)

__all__ = [
    "AnalysisOptions",
    "BlameEntry",
    "BlameReport",
    "CriticalPath",
    "DriftReport",
    "DriftThresholds",
    "PathSegment",
    "PriorityInversion",
    "RunAnalysis",
    "analyze_run",
    "attribute_blame",
    "critical_path_summary",
    "detect_profile_drift",
    "extract_critical_path",
    "refit_profile",
]
