"""Live telemetry for the cluster simulator (paper §5.1–§5.2, online).

Stands in for the *online* half of Erms' Jaeger + Prometheus stack: where
:mod:`repro.tracing` models the span data and the Tracing Coordinator's
extraction rules, this package produces that telemetry live from a
running simulation — span emission per request, a windowed metrics
registry, an SLA violation monitor with structured alerts, an autoscaler
decision audit log, and exporters (chrome://tracing timelines, JSON run
reports).  Attach a :class:`TelemetrySink` via the simulator's
``telemetry=`` parameter; a run without one pays a single null-check
branch per event.

:mod:`repro.telemetry.serve` adds the *interactive* half: an in-process
HTTP observability plane (``/metrics`` scrapes with exemplars, label
queries over the embedded TSDB, SSE event streaming, a live dashboard,
and replay of archived run reports) attached to a run via the CLI's
``--serve`` flag or :class:`ObservabilityServer` directly.
"""

from repro.telemetry.hooks import TelemetryConfig, TelemetrySink
from repro.telemetry.monitor import (
    AlertEvent,
    DecisionLog,
    DecisionRecord,
    ErrorBudgetAlert,
    SLAMonitor,
    WindowStats,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
    parse_prometheus_text,
)
from repro.telemetry.export import (
    build_run_report,
    chrome_trace_events,
    write_chrome_trace,
    write_run_report,
)
from repro.telemetry.timeseries import (
    AlertRule,
    RecordingRule,
    RuleAlert,
    RuleSet,
    TimeSeriesConfig,
    TimeSeriesStore,
    load_rules,
    parse_selector,
)
from repro.telemetry.diff import RunDiff, diff_run_reports
from repro.telemetry.dashboard import (
    dashboard_css,
    dashboard_data,
    render_dashboard,
    render_dashboard_body,
    write_dashboard,
)
from repro.telemetry.logging import StructuredLogger
from repro.telemetry.serve import (
    ObservabilityServer,
    ReplaySource,
    RunSource,
    load_replay_source,
    render_top,
)

__all__ = [
    "AlertEvent",
    "AlertRule",
    "Counter",
    "DecisionLog",
    "DecisionRecord",
    "ErrorBudgetAlert",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityServer",
    "RecordingRule",
    "ReplaySource",
    "RuleAlert",
    "RuleSet",
    "RunDiff",
    "RunSource",
    "SLAMonitor",
    "StructuredLogger",
    "TelemetryConfig",
    "TelemetrySink",
    "TimeSeriesConfig",
    "TimeSeriesStore",
    "WindowStats",
    "build_run_report",
    "chrome_trace_events",
    "dashboard_css",
    "dashboard_data",
    "default_latency_buckets",
    "diff_run_reports",
    "load_replay_source",
    "load_rules",
    "parse_prometheus_text",
    "parse_selector",
    "render_dashboard",
    "render_dashboard_body",
    "render_top",
    "write_chrome_trace",
    "write_dashboard",
    "write_run_report",
]
