"""Telemetry exporters: Chrome-tracing timelines and JSON run reports.

Two human-facing views of an instrumented run:

* :func:`chrome_trace_events` / :func:`write_chrome_trace` — render
  collected traces as ``chrome://tracing`` / Perfetto "trace event"
  JSON: one complete ("X") event per span, processes named after
  services, threads after individual requests, so a run's request
  timelines open directly in a browser profiler.
* :func:`build_run_report` / :func:`write_run_report` — a plain-JSON
  summary of one run: per-service outcomes, the SLA monitor's window
  timeline and alerts, the autoscaler decision audit log, the window
  health series, and a registry snapshot.  ``python -m repro report``
  prints the same structure as tables.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.tracing.spans import TraceRecord

__all__ = [
    "build_run_report",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_run_report",
]

_US_PER_MS = 1000.0


def chrome_trace_events(traces: Iterable[TraceRecord]) -> List[Dict]:
    """Spans as Chrome trace-event dicts (timestamps in microseconds).

    Services map to numeric ``pid``s and individual traces to ``tid``s,
    with "M"-phase metadata events carrying the readable names — the
    scheme chrome://tracing expects.
    """
    events: List[Dict] = []
    pids: Dict[str, int] = {}
    tids: Dict[str, int] = {}
    for trace in traces:
        pid = pids.get(trace.service)
        if pid is None:
            pid = pids[trace.service] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"service:{trace.service}"},
                }
            )
        tid = tids.get(trace.trace_id)
        if tid is None:
            tid = tids[trace.trace_id] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": trace.trace_id},
                }
            )
        for span in trace.spans:
            events.append(
                {
                    "name": span.microservice,
                    "cat": span.kind.value,
                    "ph": "X",
                    "ts": span.start * _US_PER_MS,
                    "dur": span.duration * _US_PER_MS,
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                    },
                }
            )
    return events


def write_chrome_trace(traces: Iterable[TraceRecord], path: str) -> int:
    """Write traces as a chrome://tracing JSON file; returns event count."""
    events = chrome_trace_events(traces)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(events)


def build_run_report(
    sink, result, specs: Optional[Sequence] = None, analysis=None
) -> Dict:
    """Assemble the plain-JSON report of one instrumented run.

    Args:
        sink: The run's :class:`~repro.telemetry.hooks.TelemetrySink`.
        result: The run's
            :class:`~repro.simulator.simulation.SimulationResult`.
        specs: Optional service specs; adds per-service SLA context when
            the sink's monitor has none.
        analysis: Optional
            :class:`~repro.telemetry.analysis.RunAnalysis` — adds an
            ``"analysis"`` section (critical-path attribution, SLA blame,
            drift verdicts, sampling stats) to the report.
    """
    slas = dict(sink.monitor.slas)
    if specs:
        for spec in specs:
            slas.setdefault(spec.name, spec.sla)

    services: Dict[str, Dict] = {}
    for name, completed in sorted(result.completed.items()):
        entry: Dict = {
            "generated": result.generated.get(name, 0),
            "completed": completed,
            "sla_ms": slas.get(name),
        }
        if completed:
            entry["p95_ms"] = round(result.tail_latency(name), 4)
            sla = slas.get(name)
            if sla is not None:
                entry["violation_rate"] = round(
                    result.sla_violation_rate(name, sla), 6
                )
        services[name] = entry

    report: Dict = {
        "schema": 1,
        "duration_min": result.duration_min,
        "warmup_min": result.warmup_min,
        "window_min": sink.config.window_min,
        "events_processed": result.events_processed,
        "containers": dict(sorted(result.containers.items())),
        "services": services,
        "windows": [w.to_dict() for w in sink.monitor.windows],
        "alerts": [a.to_dict() for a in sink.monitor.alerts],
        "decisions": sink.decisions.to_dicts(),
        "window_series": list(sink.window_series),
        "registry": sink.registry.snapshot(),
        "traces_collected": len(sink.traces),
        "traces_sampled": sink.sampled_traces,
        "traces_kept": sink.kept_traces,
        "tail_dropped": sink.tail_dropped,
        "tail_threshold_ms": sink.config.tail_threshold_ms,
        "profiling_samples": {
            "latencies": len(sink.metrics.latencies),
            "call_counts": len(sink.metrics.call_counts),
            "utilization": len(sink.metrics.utilization),
        },
    }
    if sink.monitor.error_alerts:
        report["error_alerts"] = [
            a.to_dict() for a in sink.monitor.error_alerts
        ]
    store = getattr(sink, "timeseries", None)
    if store is not None:
        # Bounded TSDB dump: lets `repro serve --replay` answer
        # /api/query and /api/series for an archived run.
        report["timeseries"] = store.to_dict(max_points=2000)
    if analysis is not None:
        report["analysis"] = analysis.to_dict()
    return report


def write_run_report(report: Dict, path: str) -> None:
    """Write a :func:`build_run_report` dict as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
