"""Self-contained HTML dashboard of one instrumented run.

``python -m repro dashboard`` renders one dependency-free HTML file —
inline SVG charts, inline CSS, no scripts, no external URLs — showing
what the paper's §5 monitoring loop sees over a run:

* per-service **latency percentiles over time** (p50/p95/p99 from the
  TSDB's delta-windowed histogram scrapes) with the service's SLA as a
  target line (the input Eq. 5 decomposes into per-microservice
  targets);
* **SLA miss rate per window**, sourced from the live
  :class:`~repro.telemetry.monitor.SLAMonitor` windows — so the plotted
  series matches ``SimulationResult.violation_rate_by_window`` window
  for window — with the Eq. 5 tail budget (1 − P, e.g. 5 % at P95) as a
  target line;
* **circuit-breaker state** step charts with chaos-event overlays
  (error windows, latency spikes, crash markers);
* **container-allocation timelines** per microservice, reconstructed
  exactly from the :class:`~repro.telemetry.monitor.DecisionLog`.

Split in two layers so tests can assert on data rather than markup:
:func:`dashboard_data` assembles a plain dict from the sink/result, and
:func:`render_dashboard` turns that dict into HTML.  Chart styling
follows a fixed design spec (categorical series slots, status colors
reserved for state, text in ink tokens, 2 px lines, hairline solid
gridlines, legends for multi-series charts, a data table per chart).
"""

from __future__ import annotations

import html
import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "dashboard_css",
    "dashboard_data",
    "render_dashboard",
    "render_dashboard_body",
    "write_dashboard",
]

_RULES_ACTOR = "rules-engine"

# ----------------------------------------------------------------------
# Data assembly
# ----------------------------------------------------------------------


def dashboard_data(
    sink,
    result,
    specs: Optional[Sequence] = None,
    meta: Optional[Dict] = None,
    targets: Optional[Dict] = None,
    chaos=None,
) -> Dict:
    """Assemble the dashboard's plain-dict model from one run.

    Args:
        sink: The run's :class:`~repro.telemetry.hooks.TelemetrySink`
            (with or without an attached
            :class:`~repro.telemetry.timeseries.TimeSeriesStore`).
        result: The run's ``SimulationResult``.
        specs: Optional service specs (adds SLAs the monitor lacks).
        meta: Optional run description (app/scheme/workload/seed/...).
        targets: Optional Eq. 5 latency targets,
            ``{service: {microservice: target_ms}}``.
        chaos: Optional :class:`~repro.resilience.ChaosSchedule`.
    """
    slas = dict(sink.monitor.slas)
    if specs:
        for spec in specs:
            slas.setdefault(spec.name, spec.sla)
    store = getattr(sink, "timeseries", None)
    window_min = sink.config.window_min
    tail_budget = round(1.0 - sink.config.percentile / 100.0, 6)

    services: Dict[str, Dict] = {}
    monitored = sorted({w.service for w in sink.monitor.windows})
    for service in monitored:
        windows = [w for w in sink.monitor.windows if w.service == service]
        sla = slas.get(service)
        entry: Dict = {
            "sla_ms": sla if sla not in (None, float("inf")) else None,
            "tail_budget": tail_budget,
            "windows": [
                {
                    "window": w.window,
                    "start_min": round(w.start_min, 6),
                    "end_min": round(w.start_min + window_min, 6),
                    "miss_rate": round(w.violation_rate, 6),
                    "p95_ms": round(w.p95_ms, 4),
                    "count": w.count,
                    "errors": w.errors,
                }
                for w in windows
            ],
            "latency": {},
        }
        if store is not None:
            for stat in ("p50", "p95", "p99"):
                series = store.get(
                    "e2e_latency_ms", {"service": service, "stat": stat}
                )
                if series is not None and len(series):
                    entry["latency"][stat] = [
                        [round(t, 6), v]
                        for t, v in zip(series.times, series.values)
                    ]
        services[service] = entry

    breakers: List[Dict] = []
    if store is not None:
        for series in store.select("breaker_state"):
            points = [
                [round(t, 6), v] for t, v in zip(series.times, series.values)
            ]
            if any(v for _, v in points):  # only breakers that ever left CLOSED
                breakers.append(
                    {
                        "service": series.labels.get("service", ""),
                        "microservice": series.labels.get("microservice", ""),
                        "points": points,
                    }
                )

    duration = float(getattr(result, "duration_min", 0.0))
    containers = _container_timelines(sink, result, duration)

    chaos_dict = None
    if chaos is not None and not chaos.is_empty():
        chaos_dict = chaos.to_dict()

    rule_alerts = [a.to_dict() for a in sink.monitor.rule_alerts]
    windows_all = sink.monitor.windows
    total_count = sum(w.count for w in windows_all)
    total_violations = sum(w.violations for w in windows_all)
    summary = {
        "duration_min": duration,
        "window_min": window_min,
        "completed": int(sum(result.completed.values())),
        "generated": int(sum(result.generated.values())),
        "events_processed": int(result.events_processed),
        "containers": int(sum(result.containers.values())),
        "miss_rate": round(
            total_violations / total_count if total_count else 0.0, 6
        ),
        "sla_alerts": len(sink.monitor.alerts),
        "error_alerts": len(sink.monitor.error_alerts),
        "rule_alerts": len(rule_alerts),
        "decisions": len(sink.decisions),
    }
    if store is not None:
        summary["tsdb_series"] = len(store.series)
        summary["tsdb_samples"] = store.total_samples
        summary["tsdb_scrapes"] = store.scrapes

    return {
        "meta": dict(meta or {}),
        "summary": summary,
        "services": services,
        "targets": {
            svc: {ms: round(t, 4) for ms, t in by_ms.items()}
            for svc, by_ms in (targets or {}).items()
        },
        "breakers": breakers,
        "containers": containers,
        "chaos": chaos_dict,
        "alerts": {
            "sla": [a.to_dict() for a in sink.monitor.alerts],
            "error_budget": [a.to_dict() for a in sink.monitor.error_alerts],
            "rules": rule_alerts,
        },
    }


def _container_timelines(sink, result, duration: float) -> Dict[str, List]:
    """Exact per-microservice container step series from the DecisionLog."""
    records: Dict[str, List] = {}
    for rec in sink.decisions.records:
        if rec.actor == _RULES_ACTOR:
            continue  # rule firings carry 0/1 markers, not container counts
        records.setdefault(rec.microservice, []).append(rec)
    timelines: Dict[str, List] = {}
    for name in sorted(result.containers):
        events = records.get(name, [])
        initial = events[0].before if events else result.containers[name]
        points: List[List[float]] = [[0.0, float(initial)]]
        for rec in events:
            points.append([round(rec.minute, 6), float(rec.after)])
        if duration > 0 and points[-1][0] < duration:
            points.append([duration, points[-1][1]])
        timelines[name] = points
    return timelines


# ----------------------------------------------------------------------
# SVG chart rendering
# ----------------------------------------------------------------------

_W = 720
_H = 240
_ML, _MR, _MT, _MB = 52, 14, 14, 30


def _esc(text) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: float) -> str:
    """Compact, trailing-zero-free number rendering."""
    if value is None:
        return "-"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e12:
        value = int(value)
    if isinstance(value, int):
        return f"{value:,}"
    if abs(value) >= 100:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:,.2f}".rstrip("0").rstrip(".")
    return f"{value:.4f}".rstrip("0").rstrip(".") or "0"


def _nice_step(raw: float) -> float:
    if raw <= 0:
        return 1.0
    magnitude = 10 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mult * magnitude
        if step >= raw - 1e-12:
            return step
    return 10.0 * magnitude


def _ticks(vmax: float, target: int = 4) -> List[float]:
    if vmax <= 0:
        vmax = 1.0
    step = _nice_step(vmax / target)
    top = step * math.ceil(vmax / step - 1e-9)
    count = int(round(top / step))
    return [round(i * step, 10) for i in range(count + 1)]


class _Chart:
    """One inline-SVG line/step chart with the fixed mark specs."""

    def __init__(
        self,
        x_max: float,
        y_max: float,
        height: int = _H,
        y_ticks: Optional[Sequence[float]] = None,
        y_tick_labels: Optional[Dict[float, str]] = None,
        y_fmt=_fmt,
        x_label: str = "sim minutes",
    ):
        self.x_max = max(x_max, 1e-9)
        self.y_ticks = list(y_ticks) if y_ticks is not None else _ticks(y_max)
        self.y_top = max(self.y_ticks[-1], 1e-9)
        self.y_tick_labels = y_tick_labels or {}
        self.y_fmt = y_fmt
        self.h = height
        self.x_label = x_label
        self.parts: List[str] = []

    def x(self, v: float) -> float:
        return _ML + (v / self.x_max) * (_W - _ML - _MR)

    def y(self, v: float) -> float:
        return self.h - _MB - (v / self.y_top) * (self.h - _MT - _MB)

    def band(self, x0: float, x1: float, color: str, title: str) -> None:
        x0p, x1p = self.x(max(0.0, x0)), self.x(min(self.x_max, x1))
        if x1p <= x0p:
            return
        self.parts.append(
            f'<rect x="{x0p:.1f}" y="{_MT}" width="{x1p - x0p:.1f}" '
            f'height="{self.h - _MT - _MB:.1f}" fill="{color}" '
            f'opacity="0.12"><title>{_esc(title)}</title></rect>'
        )

    def vline(self, xv: float, color: str, title: str) -> None:
        xp = self.x(xv)
        self.parts.append(
            f'<line x1="{xp:.1f}" y1="{_MT}" x2="{xp:.1f}" '
            f'y2="{self.h - _MB}" stroke="{color}" stroke-width="2" '
            f'opacity="0.8"><title>{_esc(title)}</title></line>'
        )

    def ref_line(self, yv: float, color: str, label: str) -> None:
        if yv > self.y_top:
            return
        yp = self.y(yv)
        self.parts.append(
            f'<line x1="{_ML}" y1="{yp:.1f}" x2="{_W - _MR}" y2="{yp:.1f}" '
            f'stroke="{color}" stroke-width="1.5" opacity="0.75"/>'
        )
        self.parts.append(
            f'<text x="{_W - _MR}" y="{yp - 4:.1f}" text-anchor="end" '
            f'class="ref-label">{_esc(label)}</text>'
        )

    def series(
        self,
        points: Sequence[Sequence[float]],
        color: str,
        label: str,
        step: bool = False,
        markers: bool = False,
        unit: str = "",
    ) -> None:
        if not points:
            return
        coords = [(self.x(px), self.y(min(py, self.y_top))) for px, py in points]
        if len(coords) > 1:
            if step:
                path = f"M{coords[0][0]:.1f} {coords[0][1]:.1f}"
                for (x0, _), (x1, y1) in zip(coords, coords[1:]):
                    path += f" H{x1:.1f} V{y1:.1f}"
            else:
                path = "M" + " L".join(f"{xp:.1f} {yp:.1f}" for xp, yp in coords)
            self.parts.append(
                f'<path d="{path}" fill="none" stroke="{color}" '
                f'stroke-width="2" stroke-linejoin="round" '
                f'stroke-linecap="round"/>'
            )
        if markers or len(coords) == 1:
            for (px, py), (xv, yv) in zip(coords, points):
                title = f"{label} @ {_fmt(xv)} min: {self.y_fmt(yv)}{unit}"
                self.parts.append(
                    f'<circle cx="{px:.1f}" cy="{py:.1f}" r="4" '
                    f'fill="{color}" stroke="var(--surface-1)" '
                    f'stroke-width="2"><title>{_esc(title)}</title></circle>'
                )

    def render(self) -> str:
        grid: List[str] = []
        for tick in self.y_ticks:
            yp = self.y(tick)
            if tick > 0:
                grid.append(
                    f'<line x1="{_ML}" y1="{yp:.1f}" x2="{_W - _MR}" '
                    f'y2="{yp:.1f}" stroke="var(--gridline)" stroke-width="1"/>'
                )
            label = self.y_tick_labels.get(tick, self.y_fmt(tick))
            grid.append(
                f'<text x="{_ML - 8}" y="{yp + 4:.1f}" text-anchor="end" '
                f'class="tick">{_esc(label)}</text>'
            )
        baseline_y = self.y(0.0)
        grid.append(
            f'<line x1="{_ML}" y1="{baseline_y:.1f}" x2="{_W - _MR}" '
            f'y2="{baseline_y:.1f}" stroke="var(--baseline)" stroke-width="1"/>'
        )
        for tick in _ticks(self.x_max, target=6):
            if tick > self.x_max + 1e-9:
                continue
            xp = self.x(tick)
            grid.append(
                f'<text x="{xp:.1f}" y="{self.h - _MB + 16}" '
                f'text-anchor="middle" class="tick">{_fmt(tick)}</text>'
            )
        grid.append(
            f'<text x="{(_ML + _W - _MR) / 2:.1f}" y="{self.h - 2}" '
            f'text-anchor="middle" class="tick">{_esc(self.x_label)}</text>'
        )
        return (
            f'<svg viewBox="0 0 {_W} {self.h}" role="img" '
            f'preserveAspectRatio="xMidYMid meet">'
            + "".join(grid)
            + "".join(self.parts)
            + "</svg>"
        )


def _legend(entries: Sequence[Tuple[str, str]]) -> str:
    """Legend row (always for >= 2 series; never for one)."""
    if len(entries) < 2:
        return ""
    keys = "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:{color}"></span>{_esc(label)}</span>'
        for label, color in entries
    )
    return f'<div class="legend">{keys}</div>'


def _table(headers: Sequence[str], rows: Sequence[Sequence], summary: str) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(_fmt(c) if isinstance(c, (int, float)) else c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return (
        f"<details><summary>{_esc(summary)}</summary>"
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{body}</tbody></table></details>"
    )


def _chaos_overlays(chart: _Chart, chaos: Optional[Dict], microservice: Optional[str] = None) -> None:
    """Paint chaos windows/crashes onto a chart (status colors + tooltips)."""
    if not chaos:
        return
    for window in chaos.get("error_windows", []):
        if microservice and window["microservice"] != microservice:
            continue
        chart.band(
            window["start_min"],
            window["end_min"],
            "var(--serious)",
            f"error window: {window['microservice']} "
            f"rate {window['error_rate']:g}",
        )
    for spike in chaos.get("latency_spikes", []):
        if microservice and spike["microservice"] != microservice:
            continue
        chart.band(
            spike["start_min"],
            spike["end_min"],
            "var(--warning)",
            f"latency spike: {spike['microservice']} "
            f"x{spike['multiplier']:g}",
        )
    for crash in chaos.get("crashes", []):
        if microservice and crash["microservice"] != microservice:
            continue
        restart = crash.get("restart_after_ms")
        note = f", restart after {restart:g} ms" if restart else ""
        chart.vline(
            crash["at_min"],
            "var(--critical)",
            f"crash: {crash['microservice']}{note}",
        )


# ----------------------------------------------------------------------
# Page rendering
# ----------------------------------------------------------------------

_CSS = """
:root { color-scheme: light; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--ink);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}
.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --gridline: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --s8: #e34948;
  --good: #0ca30c; --warning: #fab219; --serious: #ec835a;
  --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root { color-scheme: dark; }
  .viz-root {
    --page: #0d0d0d; --surface-1: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --gridline: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 10px; }
h3 { font-size: 14px; margin: 0 0 2px; font-weight: 600; }
.meta { color: var(--ink-2); margin: 0 0 18px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 120px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 24px; font-weight: 600; }
.chart {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px 8px; margin: 12px 0;
  max-width: 780px;
}
.chart .sub { color: var(--muted); font-size: 12px; margin: 0 0 8px; }
.grid2 { display: flex; flex-wrap: wrap; gap: 12px; }
.grid2 .chart { flex: 1 1 340px; max-width: 380px; }
.grid2 .chart svg { width: 100%; height: auto; }
svg { display: block; width: 100%; height: auto; }
svg text.tick, svg text.ref-label {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 11px; fill: var(--muted);
}
svg text.ref-label { fill: var(--ink-2); }
.legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 8px 0 4px; color: var(--ink-2); font-size: 12px; }
.legend .key { display: inline-flex; align-items: center; gap: 6px; }
.legend .swatch { width: 12px; height: 3px; border-radius: 2px; display: inline-block; }
details { margin: 8px 0 4px; }
summary { color: var(--ink-2); font-size: 12px; cursor: pointer; }
table { border-collapse: collapse; margin-top: 8px; font-size: 12px; }
th, td { padding: 3px 10px; text-align: right; font-variant-numeric: tabular-nums; }
th:first-child, td:first-child { text-align: left; }
thead th { color: var(--ink-2); font-weight: 600; border-bottom: 1px solid var(--baseline); }
tbody tr:nth-child(even) { background: var(--page); }
.status { display: inline-flex; align-items: center; gap: 6px; }
.status .dot { width: 8px; height: 8px; border-radius: 50%; display: inline-block; }
.footnote { color: var(--muted); font-size: 12px; margin-top: 24px; }
"""

_SLOTS = ["var(--s1)", "var(--s2)", "var(--s3)", "var(--s4)",
          "var(--s5)", "var(--s6)", "var(--s7)", "var(--s8)"]


def _tile(label: str, value: str) -> str:
    return (
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div></div>'
    )


def _latency_section(name: str, entry: Dict, duration: float, chaos) -> str:
    latency = entry.get("latency", {})
    sla = entry.get("sla_ms")
    windows = entry["windows"]
    stats = [s for s in ("p50", "p95", "p99") if latency.get(s)]
    values = [v for s in stats for _, v in latency[s]]
    if not values:  # no TSDB: fall back to the monitor's per-window p95
        stats = []
        values = [w["p95_ms"] for w in windows]
    y_max = max(values + ([sla] if sla else []) + [1.0]) * 1.1
    chart = _Chart(duration, y_max, y_fmt=_fmt)
    _chaos_overlays(chart, chaos)
    legend_entries: List[Tuple[str, str]] = []
    if stats:
        for slot, stat in enumerate(stats):
            chart.series(
                latency[stat], _SLOTS[slot], stat, markers=len(latency[stat]) <= 48,
                unit=" ms",
            )
            legend_entries.append((stat, _SLOTS[slot]))
    else:
        points = [[min(w["end_min"], duration), w["p95_ms"]] for w in windows]
        chart.series(points, _SLOTS[0], "window p95", step=True, markers=True, unit=" ms")
    if sla:
        chart.ref_line(sla, "var(--critical)", f"SLA {_fmt(sla)} ms (Eq. 5 input)")
    rows = [
        [f"[{_fmt(w['start_min'])}, {_fmt(w['end_min'])})", w["count"],
         w["p95_ms"], w["miss_rate"], w["errors"]]
        for w in windows
    ]
    return (
        f'<figure class="chart"><h3>{_esc(name)} · latency percentiles over time</h3>'
        f'<p class="sub">delta-windowed percentiles per TSDB scrape'
        f'{" · no TSDB attached: monitor window p95" if not stats else ""}</p>'
        + chart.render()
        + _legend(legend_entries)
        + _table(
            ["window", "count", "p95 ms", "miss rate", "errors"],
            rows,
            "Window data",
        )
        + "</figure>"
    )


def _miss_section(name: str, entry: Dict, duration: float, chaos) -> str:
    windows = entry["windows"]
    budget = entry.get("tail_budget") or 0.0
    # A request finishing exactly at the duration opens one last window
    # whose nominal end lies past the run — clamp its plot position.
    points = [
        [min(w["end_min"], duration), w["miss_rate"]] for w in windows
    ]
    y_max = max([p[1] for p in points] + [budget, 0.1]) * 1.15
    chart = _Chart(duration, y_max, y_fmt=lambda v: f"{v * 100:.3g}%")
    _chaos_overlays(chart, chaos)
    chart.series(points, _SLOTS[0], "miss rate", step=True, markers=True)
    if budget:
        chart.ref_line(
            budget,
            "var(--critical)",
            f"Eq. 5 tail budget {budget * 100:g}%",
        )
    rows = [[w["window"], f"{w['miss_rate'] * 100:.3f}%", w["count"]] for w in windows]
    return (
        f'<figure class="chart"><h3>{_esc(name)} · SLA miss rate per window</h3>'
        f'<p class="sub">fraction of requests over the SLA, per '
        f'{_fmt(windows[0]["end_min"] - windows[0]["start_min"]) if windows else "1"}-minute window '
        f"(matches violation_rate_by_window)</p>"
        + chart.render()
        + _table(["window #", "miss rate", "count"], rows, "Miss-rate data")
        + "</figure>"
    )


_BREAKER_STATES = {0.0: "closed", 1.0: "open", 2.0: "half-open"}


def _breaker_section(breakers: List[Dict], duration: float, chaos) -> str:
    charts = []
    for index, breaker in enumerate(breakers[:8]):
        chart = _Chart(
            duration,
            2.0,
            height=170,
            y_ticks=[0.0, 1.0, 2.0],
            y_tick_labels={0.0: "closed", 1.0: "open", 2.0: "half-open"},
        )
        _chaos_overlays(chart, chaos, microservice=breaker["microservice"])
        label = f"{breaker['service']} -> {breaker['microservice']}"
        chart.series(
            breaker["points"], _SLOTS[index % len(_SLOTS)], label, step=True,
            markers=len(breaker["points"]) <= 32,
        )
        charts.append(
            f'<figure class="chart"><h3>breaker · {_esc(label)}</h3>'
            + chart.render()
            + "</figure>"
        )
    dropped = len(breakers) - 8
    note = f"<p class='sub'>… and {dropped} more breakers (see run report)</p>" if dropped > 0 else ""
    return (
        "<h2>Circuit breakers &amp; chaos</h2>"
        '<div class="grid2">' + "".join(charts) + "</div>" + note
    )


def _containers_section(containers: Dict[str, List], duration: float, chaos) -> str:
    # Small multiples, one per microservice: single series each (no
    # legend needed), scaling activity first, capped at 12 charts with
    # the full data in the table.
    def activity(item):
        name, points = item
        return (-(len(points)), name)

    ordered = sorted(containers.items(), key=activity)
    charts = []
    for name, points in ordered[:12]:
        y_max = max(v for _, v in points) * 1.25 + 0.5
        chart = _Chart(duration, y_max, height=150)
        _chaos_overlays(chart, chaos, microservice=name)
        chart.series(points, _SLOTS[0], name, step=True, markers=len(points) <= 24)
        charts.append(
            f'<figure class="chart"><h3>{_esc(name)}</h3>' + chart.render() + "</figure>"
        )
    rows = [
        [name, points[0][1], points[-1][1], len(points) - 2]
        for name, points in sorted(containers.items())
    ]
    note = (
        f"<p class='sub'>showing {min(12, len(ordered))} of {len(ordered)} "
        f"microservices (most scaling activity first); all in the table</p>"
        if len(ordered) > 12
        else ""
    )
    return (
        "<h2>Container allocation timelines</h2>"
        + note
        + '<div class="grid2">'
        + "".join(charts)
        + "</div>"
        + _table(
            ["microservice", "initial", "final", "changes"],
            rows,
            "Container allocation data",
        )
    )


def _alerts_section(alerts: Dict) -> str:
    parts = ["<h2>Alerts</h2>"]
    sla = alerts.get("sla", [])
    if sla:
        rows = [
            [a["service"], a["window"], a["p95_ms"], a["sla_ms"], a["violations"], a["count"]]
            for a in sla
        ]
        parts.append(_table(
            ["service", "window", "p95 ms", "SLA ms", "violations", "count"],
            rows, f"SLA alerts ({len(sla)})",
        ))
    budget = alerts.get("error_budget", [])
    if budget:
        rows = [
            [a["service"], a["window"], a["errors"], a["count"], a["error_rate"], a["budget"]]
            for a in budget
        ]
        parts.append(_table(
            ["service", "window", "errors", "count", "error rate", "budget"],
            rows, f"Error-budget alerts ({len(budget)})",
        ))
    rules = alerts.get("rules", [])
    if rules:
        rows = [
            [a["rule"], a["minute"],
             ", ".join(f"{k}={v}" for k, v in sorted(a.get("labels", {}).items())),
             a["value"], f"{a['op']} {_fmt(a['threshold'])}", a["severity"]]
            for a in rules
        ]
        parts.append(_table(
            ["rule", "minute", "labels", "value", "condition", "severity"],
            rows, f"Rule alerts ({len(rules)})",
        ))
    if len(parts) == 1:
        parts.append('<p class="sub status"><span class="dot" style="background:var(--good)"></span>no alerts fired</p>')
    return "".join(parts)


def _targets_section(targets: Dict) -> str:
    if not targets:
        return ""
    rows = [
        [svc, ms, t]
        for svc in sorted(targets)
        for ms, t in sorted(targets[svc].items())
    ]
    return (
        "<h2>Eq. 5 latency targets</h2>"
        '<p class="sub">per-microservice latency targets the allocation '
        "decomposed each SLA into (the target lines' input)</p>"
        + _table(["service", "microservice", "target ms"], rows, "Targets")
    )


def dashboard_css() -> str:
    """The dashboard's inline stylesheet (shared with the live server)."""
    return _CSS


def render_dashboard_body(data: Dict) -> str:
    """Render the page *body* of one :func:`dashboard_data` dict.

    The static artifact (:func:`render_dashboard`) wraps this in a full
    HTML document; the live observability server re-renders just this
    fragment on every SSE tick and swaps it into its shell page, so both
    views share one chart pipeline.
    """
    meta = data.get("meta", {})
    summary = data.get("summary", {})
    duration = float(summary.get("duration_min") or 1.0)
    chaos = data.get("chaos")
    title = meta.get("title") or "repro run dashboard"
    meta_line = " · ".join(
        f"{key}={value}" for key, value in meta.items() if key != "title"
    )

    tiles = [
        _tile("Requests completed", _fmt(summary.get("completed", 0))),
        _tile("Overall SLA miss rate", f"{summary.get('miss_rate', 0.0) * 100:.2f}%"),
        _tile("Containers (final)", _fmt(summary.get("containers", 0))),
        _tile(
            "Alerts (SLA / budget / rules)",
            f"{summary.get('sla_alerts', 0)} / "
            f"{summary.get('error_alerts', 0)} / "
            f"{summary.get('rule_alerts', 0)}",
        ),
        _tile("Events processed", _fmt(summary.get("events_processed", 0))),
    ]
    if "tsdb_samples" in summary:
        tiles.append(
            _tile(
                "TSDB series · samples",
                f"{_fmt(summary['tsdb_series'])} · {_fmt(summary['tsdb_samples'])}",
            )
        )

    body: List[str] = [
        f"<h1>{_esc(title)}</h1>",
        f'<p class="meta">{_esc(meta_line)}</p>' if meta_line else "",
        '<div class="tiles">' + "".join(tiles) + "</div>",
    ]
    services = data.get("services", {})
    for name in sorted(services):
        entry = services[name]
        body.append(f"<h2>Service · {_esc(name)}</h2>")
        body.append(_latency_section(name, entry, duration, chaos))
        body.append(_miss_section(name, entry, duration, chaos))
    if data.get("breakers"):
        body.append(_breaker_section(data["breakers"], duration, chaos))
    if data.get("containers"):
        body.append(_containers_section(data["containers"], duration, chaos))
    body.append(_alerts_section(data.get("alerts", {})))
    body.append(_targets_section(data.get("targets", {})))
    body.append(
        '<p class="footnote">Self-contained report: inline SVG, no '
        "scripts, no external resources.  Deterministic for a fixed "
        "seed and configuration.</p>"
    )
    return "\n".join(part for part in body if part)


def render_dashboard(data: Dict) -> str:
    """Render one :func:`dashboard_data` dict as self-contained HTML."""
    meta = data.get("meta", {})
    title = meta.get("title") or "repro run dashboard"
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style>\n"
        '</head><body class="viz-root">\n'
        + render_dashboard_body(data)
        + "\n</body></html>\n"
    )


def write_dashboard(data: Dict, path: str) -> str:
    """Render and write the dashboard; returns the HTML."""
    html_text = render_dashboard(data)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(html_text)
    return html_text
