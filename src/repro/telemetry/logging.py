"""Structured stderr logging shared by the CLI, DecisionLog, and server.

``python -m repro --log-format json <command>`` turns every decision the
run takes (autoscaler reconciles, chaos injections, breaker transitions
— everything that lands in the :class:`~repro.telemetry.monitor.
DecisionLog`) and every request the observability server handles into
one JSON object per stderr line, all carrying the same ``run_id`` so a
log aggregator can join the simulation's control-plane activity with
the HTTP access log of whoever was watching it.

Deliberately stdlib-only and clock-free: lines carry the *simulation*
minute where one exists (decisions) and no wall-clock timestamp
otherwise, keeping output deterministic for a fixed seed.
"""

from __future__ import annotations

import json
import sys
import threading
from typing import Dict, Optional, TextIO

__all__ = ["StructuredLogger"]


class StructuredLogger:
    """One line per event, JSON (``fmt="json"``) or key=value text.

    Every line carries ``run_id`` and ``actor`` correlation fields; the
    CLI hands one logger to the telemetry sink's
    :class:`~repro.telemetry.monitor.DecisionLog` (actor = the decision
    record's actor) and to the observability server (actor ``serve``).
    Writes are serialized with a lock — the server's handler threads and
    the simulation thread log concurrently.
    """

    def __init__(
        self,
        fmt: str = "json",
        run_id: str = "run",
        stream: Optional[TextIO] = None,
    ):
        if fmt not in ("json", "text"):
            raise ValueError(f"log format must be 'json' or 'text', got {fmt!r}")
        self.fmt = fmt
        self.run_id = run_id
        self.stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()
        self.lines = 0

    def log(self, event: str, actor: str = "cli", **fields) -> None:
        """Emit one structured line (fields with value ``None`` dropped)."""
        entry: Dict = {"event": event, "run_id": self.run_id, "actor": actor}
        entry.update((k, v) for k, v in fields.items() if v is not None)
        if self.fmt == "json":
            line = json.dumps(entry, sort_keys=False, default=str)
        else:
            line = " ".join(f"{k}={v}" for k, v in entry.items())
        with self._lock:
            self.stream.write(line + "\n")
            self.stream.flush()
            self.lines += 1
