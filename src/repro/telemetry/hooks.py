"""Live in-simulation telemetry: span emission, windowed metrics, SLA watch.

The paper's control loop runs on *online* telemetry: Jaeger spans and
Prometheus utilization, joined per-minute by the Tracing Coordinator
(§5.1–§5.2).  This module closes that loop for the DES: a
:class:`TelemetrySink` attached to a
:class:`~repro.simulator.simulation.ClusterSimulator` observes the run as
it happens —

* every completed request emits real CLIENT/SERVER
  :class:`~repro.tracing.spans.Span` pairs (one pair per call, zero
  network delay, matching the engine's timing exactly), assembled into
  :class:`~repro.tracing.spans.TraceRecord` objects and offered to a
  :class:`~repro.tracing.coordinator.TracingCoordinator`;
* every processed call streams its own latency and per-minute call
  counts into a live :class:`~repro.tracing.metrics.MetricsStore`, so
  the profiler consumes *observed* telemetry — byte-identical to what
  :meth:`SimulationResult.to_metrics_store` reconstructs post-hoc;
* a self-rescheduling *window tick* (one event per window — off the hot
  path) closes SLA windows, snapshots queue depth / busy fraction /
  event throughput into the metrics registry, and flushes completed
  minutes into the MetricsStore.

The disabled path is a null check: the engine's hot loops each test
``telemetry is None`` once and touch nothing else, so a run without a
sink pays a single predictable branch per event (verified by the
``telemetry_overhead`` perf benchmark).

Span timing contract (kept in lockstep with the engine): a call's SERVER
span runs from the call entering its container's queue to the call's
whole subtree completing; the caller's CLIENT span covers the same
interval (zero transmission delay).  Eq. 1 then recovers exactly the own
latency the engine recorded — server duration minus the per-stage max of
child server durations telescopes to (thread release − queue entry) —
and calls of one stage share a start timestamp, so
:func:`~repro.tracing.coordinator.group_parallel` regroups them into the
original stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.telemetry.monitor import DecisionLog, SLAMonitor
from repro.telemetry.registry import MetricsRegistry
from repro.tracing.metrics import MetricsStore
from repro.tracing.spans import Span, SpanKind, SpanTiming, TraceRecord

_MS_PER_MINUTE = 60_000.0

__all__ = ["TelemetryConfig", "TelemetrySink"]


@dataclass
class TelemetryConfig:
    """Knobs of the live telemetry layer.

    Attributes:
        window_min: Observation window length in minutes (the paper joins
            telemetry at one-minute windows).
        spans: Emit spans per request.  Off, the sink still tracks
            windowed metrics, the SLA monitor, and the MetricsStore.
        sampling_rate: Fraction of requests that produce spans (head
            sampling, decided at request start so unsampled requests
            allocate nothing; Jaeger's 10 % would be ``0.1``).
        seed: Seed of the sampling decision stream — deliberately a
            *separate* RNG so enabling telemetry never perturbs the
            engine's pinned draw order.
        tail_threshold_ms: When set, switch trace retention to
            *tail-based* sampling: every (head-sampled) request buffers
            raw span tuples, but full traces are materialized only for
            requests whose end-to-end latency exceeds this threshold —
            plus a uniform ``tail_floor`` of baseline traffic.  With a
            threshold at/below the SLA, every violating request keeps its
            trace while the bulk of healthy traffic is dropped before any
            Span object is built.  ``None`` (default) keeps every buffered
            trace (head sampling only).
        tail_floor: Uniform keep probability for requests under the tail
            threshold (a small healthy-baseline sample, like production
            tail samplers retain).  Drawn from the sink's own RNG.
        max_traces: Retain at most this many assembled traces on the sink
            (``None`` = unbounded).  Traces are still offered to the
            coordinator after the cap.
        cpu_utilization / memory_utilization / host_id: Constant host
            utilization recorded per minute, mirroring
            ``SimulationResult.to_metrics_store``.
        percentile: Tail percentile the SLA monitor watches.
        error_budget: When set, the SLA monitor raises an
            :class:`~repro.telemetry.monitor.ErrorBudgetAlert` for any
            window whose failed/shed request fraction (fed by the
            resilience layer) exceeds this budget.
    """

    window_min: float = 1.0
    spans: bool = True
    sampling_rate: float = 1.0
    seed: int = 0
    tail_threshold_ms: Optional[float] = None
    tail_floor: float = 0.01
    max_traces: Optional[int] = None
    cpu_utilization: float = 0.0
    memory_utilization: float = 0.0
    host_id: str = "sim-host"
    percentile: float = 95.0
    error_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.window_min <= 0:
            raise ValueError("window_min must be positive")
        if not 0.0 < self.sampling_rate <= 1.0:
            raise ValueError(
                f"sampling_rate must be in (0, 1], got {self.sampling_rate}"
            )
        if self.tail_threshold_ms is not None and self.tail_threshold_ms <= 0:
            raise ValueError(
                f"tail_threshold_ms must be positive, got {self.tail_threshold_ms}"
            )
        if not 0.0 <= self.tail_floor <= 1.0:
            raise ValueError(
                f"tail_floor must be in [0, 1], got {self.tail_floor}"
            )
        if self.error_budget is not None and not 0.0 < self.error_budget < 1.0:
            raise ValueError(
                f"error_budget must be in (0, 1), got {self.error_budget}"
            )


class _TraceCtx:
    """Per-request span buffer (sampled requests only).

    Spans are buffered as raw tuples — ``(server_id, client_id,
    parent_id, microservice, caller, start, finish, proc_start, proc_ms,
    mult)`` — and materialized into :class:`Span` objects only when the
    trace is actually retained (see ``TelemetrySink._complete_trace``).
    With tail-based sampling that skips the two frozen-dataclass
    constructions per call for every dropped trace, which is where the
    bulk of the full-sampling overhead went.
    """

    __slots__ = ("sink", "trace_id", "service", "start", "raw", "n")

    def __init__(self, sink: "TelemetrySink", trace_id: str, service: str, start: float):
        self.sink = sink
        self.trace_id = trace_id
        self.service = service
        self.start = start
        self.raw: List[tuple] = []
        self.n = 1  # span-id counter (id 0 is the root server span)


class _SpanDone:
    """Completion continuation that buffers this call's span pair.

    Fired when the call's whole subtree finishes (the engine's ``done``
    chain); appends one raw tuple covering the callee's SERVER span and —
    for non-root calls — the caller's CLIENT span, then delegates to the
    wrapped continuation.  The root instance finalizes the trace.

    ``proc_start`` / ``proc_ms`` / ``mult`` are stamped by the engine via
    ``TelemetrySink.note_processing`` the moment the call acquires a
    worker thread, making the queue-wait / service-time / interference
    split exact (``SpanTiming``) for retained traces.
    """

    __slots__ = (
        "ctx",
        "server_id",
        "client_id",
        "parent_id",
        "microservice",
        "caller",
        "start",
        "inner",
        "root",
        "proc_start",
        "proc_ms",
        "mult",
    )

    def __init__(
        self, ctx, server_id, client_id, parent_id, microservice, caller, start, inner, root
    ):
        self.ctx = ctx
        self.server_id = server_id
        self.client_id = client_id
        self.parent_id = parent_id
        self.microservice = microservice
        self.caller = caller
        self.start = start
        self.inner = inner
        self.root = root
        self.proc_start = start
        self.proc_ms = None
        self.mult = 1.0

    def __call__(self, finish: float) -> None:
        ctx = self.ctx
        ctx.raw.append(
            (
                self.server_id,
                self.client_id,
                self.parent_id,
                self.microservice,
                self.caller,
                self.start,
                finish,
                self.proc_start,
                self.proc_ms,
                self.mult,
            )
        )
        if self.root:
            ctx.sink._complete_trace(ctx, finish)
        self.inner(finish)


class _E2EDone:
    """Root continuation for unsampled requests: e2e recording only."""

    __slots__ = ("sink", "service", "start", "inner")

    def __init__(self, sink, service, start, inner):
        self.sink = sink
        self.service = service
        self.start = start
        self.inner = inner

    def __call__(self, finish: float) -> None:
        self.sink.record_e2e(self.service, self.start, finish)
        self.inner(finish)


@dataclass
class TelemetrySink:
    """Everything one instrumented simulation run observes.

    Attach by passing as ``telemetry=`` to
    :class:`~repro.simulator.simulation.ClusterSimulator` (or through
    ``evaluate_allocation`` / :class:`AutoscaledSimulation`); the
    simulator calls :meth:`begin_run` / :meth:`finalize` around the event
    loop.  One sink serves exactly one run.
    """

    config: TelemetryConfig = field(default_factory=TelemetryConfig)
    coordinator: Optional[object] = None  # TracingCoordinator, duck-typed
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    monitor: SLAMonitor = field(default=None)  # type: ignore[assignment]
    decisions: DecisionLog = field(default_factory=DecisionLog)
    metrics: MetricsStore = field(default_factory=MetricsStore)
    traces: List[TraceRecord] = field(default_factory=list)
    #: One row per closed window: engine/queue health over time.
    window_series: List[Dict] = field(default_factory=list)
    #: Optional embedded TSDB
    #: (:class:`~repro.telemetry.timeseries.TimeSeriesStore`): scrapes
    #: the registry / SLA monitor / engine state on its own sim-clock
    #: cadence and evaluates recording+alert rules.  ``None`` (default)
    #: costs nothing — no events are scheduled.
    timeseries: Optional[object] = None

    def __post_init__(self) -> None:
        if self.monitor is None:
            self.monitor = SLAMonitor(
                percentile=self.config.percentile,
                error_budget=self.config.error_budget,
            )
        self._rng = np.random.default_rng(self.config.seed)
        self._sim = None
        self._trace_n = 0
        self._window_ms = self.config.window_min * _MS_PER_MINUTE
        self._warmup_min = 0.0
        self._duration_min = 0.0
        #: live per-minute call counts: microservice -> minute -> calls
        self._calls: Dict[str, Dict[int, int]] = {}
        self._flushed_minute = 0
        self._last_event_counter = 0
        self._sampled = 0
        self._kept = 0
        self._tail_dropped = 0

    # ------------------------------------------------------------------
    # Run lifecycle (called by ClusterSimulator)
    # ------------------------------------------------------------------
    def begin_run(self, simulator) -> None:
        if self._sim is not None:
            raise RuntimeError("a TelemetrySink serves exactly one run")
        self._sim = simulator
        self._warmup_min = simulator.config.warmup_min
        self._duration_min = simulator.config.duration_min
        for spec in simulator.services:
            self.monitor.slas.setdefault(spec.name, spec.sla)
        self._last_event_counter = simulator.events._counter
        duration_ms = self._duration_min * _MS_PER_MINUTE
        if self._window_ms <= duration_ms:
            simulator.events.schedule(self._window_ms, self._on_window)
        if self.timeseries is not None:
            self.timeseries.attach(self, simulator)

    def finalize(self, simulator) -> None:
        """Close remaining windows and flush the tail (post-drain)."""
        self.monitor.close_all(self.config.window_min)
        self._flush_minutes(int(self._duration_min) + 1)
        self._snapshot_engine(simulator)
        self.registry.gauge("events_processed").set(
            simulator.result.events_processed
        )
        if self.timeseries is not None:
            # After close_all: the final scrape sees every SLA window.
            self.timeseries.finalize(simulator)

    # ------------------------------------------------------------------
    # Hot-path hooks (engine side guards with `telemetry is not None`)
    # ------------------------------------------------------------------
    def wrap_root(self, service: str, node, t: float, inner):
        """Wrap a request's end continuation at arrival time ``t``."""
        if self.config.spans and (
            self.config.sampling_rate >= 1.0
            or self._rng.random() < self.config.sampling_rate
        ):
            self._sampled += 1
            trace_id = f"{service}-t{self._trace_n}"
            self._trace_n += 1
            ctx = _TraceCtx(self, trace_id, service, t)
            return _SpanDone(
                ctx, f"{trace_id}-s0", None, None, node.microservice, None,
                t, inner, True,
            )
        return _E2EDone(self, service, t, inner)

    def wrap_call(self, done, child, t: float, frame):
        """Wrap one downstream call's continuation (from ``_run_stages``).

        ``done`` is the *parent* call's continuation; span context flows
        through it.  Unsampled requests carry no context, so the frame
        passes through untouched.
        """
        if type(done) is not _SpanDone:
            return frame
        ctx = done.ctx
        n = ctx.n
        ctx.n = n + 2
        trace_id = ctx.trace_id
        return _SpanDone(
            ctx,
            f"{trace_id}-s{n + 1}",
            f"{trace_id}-s{n}",
            done.server_id,
            child.microservice,
            done.microservice,
            t,
            frame,
            False,
        )

    def note_processing(
        self, done, start_ms: float, proc_ms: float, mult: float
    ) -> None:
        """Engine hook: the call behind ``done`` acquired a thread.

        Called by the simulator at every job start (all four scheduling
        sites) with the processing start time, the drawn processing
        duration, and the container's interference multiplier at that
        moment.  A no-op for unsampled requests (``done`` is not a span
        continuation), and never touches the engine RNG.
        """
        if type(done) is _SpanDone:
            done.proc_start = start_ms
            done.proc_ms = proc_ms
            done.mult = mult

    def record_call(self, microservice: str, finish_ms: float, own_ms: float) -> None:
        """One processed call: own latency + per-minute call count."""
        minute = finish_ms / _MS_PER_MINUTE
        if self._warmup_min <= minute < self._duration_min:
            self.metrics.record_latency(minute, microservice, own_ms)
        by_minute = self._calls.get(microservice)
        if by_minute is None:
            by_minute = self._calls[microservice] = {}
        key = int(minute)
        by_minute[key] = by_minute.get(key, 0) + 1

    def record_e2e(self, service: str, start: float, finish: float) -> None:
        """One completed request: SLA window sample + latency histogram."""
        e2e = finish - start
        minute = finish / _MS_PER_MINUTE
        self.monitor.observe(
            service, int(minute / self.config.window_min), e2e
        )
        self.registry.histogram(f"e2e_latency_ms.{service}").observe(e2e)
        self.registry.counter("requests_completed").inc()

    def record_request_error(self, service: str, t: float, kind: str) -> None:
        """One failed or shed request (resilience layer).

        Feeds the SLA monitor's error-budget accounting for the window
        containing ``t`` and counts the error by kind (``error`` /
        ``timeout`` / ``breaker-open`` / ``shed`` / ``downstream
        failure``) in the metrics registry.
        """
        minute = t / _MS_PER_MINUTE
        self.monitor.observe_error(
            service, int(minute / self.config.window_min)
        )
        self.registry.counter(f"request_errors.{service}.{kind}").inc()

    # ------------------------------------------------------------------
    # Window machinery (one event per window; off the hot path)
    # ------------------------------------------------------------------
    def _on_window(self, now_ms: float) -> None:
        index = int(round(now_ms / self._window_ms))
        self.monitor.close_windows(index, self.config.window_min)
        self._flush_minutes(int(now_ms / _MS_PER_MINUTE))
        self._snapshot_engine(self._sim, window_end_min=now_ms / _MS_PER_MINUTE)
        next_tick = (index + 1) * self._window_ms
        if next_tick <= self._duration_min * _MS_PER_MINUTE:
            self._sim.events.schedule(next_tick, self._on_window)

    def _flush_minutes(self, through: int) -> None:
        """Flush completed integer minutes < ``through`` into the store.

        Applies the same steady-state filter as
        ``SimulationResult.to_metrics_store``: call counts only for
        minutes in [warmup, duration); utilization for every minute of
        the run (0 .. int(duration)).
        """
        start = self._flushed_minute
        if through <= start:
            return
        containers = self._sim.result.containers if self._sim else {}
        for minute in range(start, through):
            if self._warmup_min <= minute < self._duration_min:
                for name, by_minute in self._calls.items():
                    calls = by_minute.pop(minute, None)
                    if calls:
                        self.metrics.record_calls(
                            float(minute),
                            name,
                            float(calls),
                            max(containers.get(name, 1), 1),
                        )
            if minute <= int(self._duration_min):
                self.metrics.record_utilization(
                    float(minute),
                    self.config.host_id,
                    self.config.cpu_utilization,
                    self.config.memory_utilization,
                )
        self._flushed_minute = through

    def _snapshot_engine(self, simulator, window_end_min: Optional[float] = None) -> None:
        """Gauge queue depth, busy fraction, and event throughput."""
        if simulator is None:
            return
        depth = 0
        busy = 0
        total_threads = 0
        containers = 0
        for state in simulator._microservices.values():
            threads = state.spec.threads
            for container in state.containers:
                containers += 1
                total_threads += threads
                busy += threads - container.free_threads
                depth += (
                    len(container.fifo)
                    if container.fifo is not None
                    else len(container.queue)
                )
        busy_fraction = busy / total_threads if total_threads else 0.0
        registry = self.registry
        registry.gauge("queue_depth").set(depth)
        registry.gauge("busy_threads").set(busy)
        registry.gauge("busy_fraction").set(busy_fraction)
        registry.gauge("containers").set(containers)
        counter = simulator.events._counter
        delta = counter - self._last_event_counter
        self._last_event_counter = counter
        registry.counter("events_scheduled").inc(delta)
        if window_end_min is not None:
            events_per_sec = delta / (self.config.window_min * 60.0)
            registry.gauge("events_per_sec").set(events_per_sec)
            self.window_series.append(
                {
                    "end_min": round(window_end_min, 6),
                    "queue_depth": depth,
                    "busy_fraction": round(busy_fraction, 6),
                    "containers": containers,
                    "events_per_sec": round(events_per_sec, 2),
                }
            )

    # ------------------------------------------------------------------
    # Trace assembly
    # ------------------------------------------------------------------
    def _complete_trace(self, ctx: _TraceCtx, finish: float) -> None:
        self.record_e2e(ctx.service, ctx.start, finish)
        config = self.config
        threshold = config.tail_threshold_ms
        if threshold is not None and finish - ctx.start <= threshold:
            # Tail decision: under the latency threshold, keep only the
            # uniform floor (drawn from the sink's RNG, never the
            # engine's).  Dropped traces discard their raw buffer without
            # ever building a Span.
            if config.tail_floor <= 0.0 or self._rng.random() >= config.tail_floor:
                self._tail_dropped += 1
                return
        self._kept += 1
        # Kept traces exemplify their latency bucket: the /metrics
        # exposition links the histogram to a trace id an operator can
        # actually pull up.  Off the e2e hot path (kept traces only),
        # no RNG, one dict write.
        self.registry.histogram(f"e2e_latency_ms.{ctx.service}").attach_exemplar(
            finish - ctx.start, ctx.trace_id
        )
        retain = (
            config.max_traces is None or len(self.traces) < config.max_traces
        )
        coordinator = self.coordinator
        if not retain and coordinator is None:
            return  # nobody would see the materialized record
        record = self._materialize(ctx)
        if retain:
            self.traces.append(record)
        if coordinator is not None:
            coordinator.offer(record)

    def _materialize(self, ctx: _TraceCtx) -> TraceRecord:
        """Build the Span objects of one retained trace from raw tuples."""
        spans: List[Span] = []
        append = spans.append
        timings: Dict[str, SpanTiming] = {}
        server = SpanKind.SERVER
        client = SpanKind.CLIENT
        for (
            server_id,
            client_id,
            parent_id,
            microservice,
            caller,
            start,
            finish,
            proc_start,
            proc_ms,
            mult,
        ) in ctx.raw:
            append(Span(server_id, client_id, microservice, server, start, finish))
            if client_id is not None:
                append(Span(client_id, parent_id, caller, client, start, finish))
            if proc_ms is not None:
                timings[server_id] = SpanTiming(
                    queue_ms=proc_start - start,
                    service_ms=proc_ms,
                    inflation_ms=0.0 if mult == 1.0 else proc_ms - proc_ms / mult,
                )
        return TraceRecord(
            trace_id=ctx.trace_id,
            service=ctx.service,
            spans=spans,
            timings=timings or None,
        )

    # ------------------------------------------------------------------
    @property
    def sampled_traces(self) -> int:
        """Requests that buffered spans (before any tail/``max_traces`` cap)."""
        return self._sampled

    @property
    def kept_traces(self) -> int:
        """Traces that survived the tail-sampling decision.

        Equal to :attr:`sampled_traces` without a tail threshold; the
        ``max_traces`` retention cap applies after this count.
        """
        return self._kept

    @property
    def tail_dropped(self) -> int:
        """Buffered traces dropped by the tail-sampling decision."""
        return self._tail_dropped
