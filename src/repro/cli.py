"""Command-line interface: ``python -m repro <command>``.

Mirrors the paper artifact's shell scripts (Appendix B) as subcommands:

* ``scale`` — run a scheme on a benchmark application at a given workload
  and SLA, print targets/priorities/containers (the artifact's
  ``latency-target-computation.sh`` + ``priority-scheduling.sh``).
* ``simulate`` — additionally replay the allocation on the cluster
  simulator and report tail latency and violations (``static-workload.sh``).
* ``compare`` — the static (workload × SLA) sweep across all schemes
  (``theoretical-resource.sh``); ``--simulate --workers N`` replays the
  allocations on the simulator in parallel.
* ``trace-sim`` — the Taobao-scale synthetic evaluation (§6.5).
* ``report`` — run the autoscaled control loop with live telemetry and
  print/export the observability report (SLA windows, alerts, scaling
  decisions, chrome://tracing timelines); ``--format prom`` dumps the
  metrics registry in Prometheus text exposition instead; ``--diff A B``
  skips the run entirely and compares two saved JSON run reports,
  printing a per-metric verdict table (exit 1 on any regression).
* ``dashboard`` — run the autoscaled control loop with the embedded
  time-series store scraping it, then write one self-contained HTML
  dashboard (inline SVG, no scripts, no external resources): latency
  percentiles over time, SLA miss rate per window against the Eq. 5
  tail budget, breaker state with chaos overlays, and container
  timelines.  ``--rules FILE`` attaches declarative recording/alert
  rules evaluated on the sim clock.
* ``analyze`` — run the trace analytics engine on an instrumented run:
  critical-path attribution, SLA blame against the Eq. 5 targets,
  priority-inversion flags, and profile-drift verdicts.
* ``chaos`` — replay one deterministic fault schedule (container
  crashes, error windows, latency spikes) twice — observation-only vs
  the full retry/timeout/breaker/admission stack — and compare SLA miss
  rates; ``--controlled`` runs the two-tenant resilience sweep instead.
* ``serve`` — put a saved JSON run report behind the live observability
  plane (``/``, ``/metrics``, ``/api/*``) without re-running anything.
* ``top`` — terminal live view of a serving run: p95/p99 vs SLA,
  per-service miss rate, breaker states, container counts, refreshed
  from the plane's ``/api/summary``.

``simulate``, ``compare``, ``report``, and ``analyze`` all accept
``--sampling-rate`` (head sampling) and ``--tail-threshold`` (tail-based
sampling: keep full traces only for requests slower than the threshold,
plus a small uniform floor).  ``simulate`` and ``compare`` also accept
``--chaos`` (seeded random fault schedule) and ``--resilience`` (attach
the default policy bundle).  ``simulate``, ``compare``, and ``chaos``
accept ``--serve [PORT]`` to attach the in-process observability HTTP
server to the run; the global ``--log-format json`` switches stderr to
structured JSON lines sharing ``run_id``/``actor`` correlation fields
between scaling decisions and the server's access log.

Exit codes are uniform across subcommands: 0 success, 1 regression
verdict (``report --diff`` only), 2 usage error (bad argument values —
the same code argparse uses for unparseable flags), 3 runtime failure.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines import Firm, GrandSLAm, Rhythm
from repro.core import ErmsScaler
from repro.experiments import (
    evaluate_allocation,
    format_table,
    render_run_report,
    run_static_sweep,
    run_trace_simulation,
)
from repro.workloads import (
    generate_taobao,
    hotel_reservation,
    media_service,
    social_network,
)

APPLICATIONS = {
    "social-network": social_network,
    "media-service": media_service,
    "hotel-reservation": hotel_reservation,
}

EXIT_USAGE = 2
EXIT_RUNTIME = 3

_EXIT_CODE_EPILOG = (
    "exit codes: 0 success · 1 regression verdict (report --diff only) · "
    "2 usage error (bad argument values) · 3 runtime failure"
)


class CLIError(Exception):
    """Runtime failure — ``main`` maps it to exit code 3."""


class UsageError(CLIError):
    """Bad argument values — exit code 2, matching argparse's own."""


def _make_scheme(name: str):
    schemes = {
        "erms": ErmsScaler,
        "erms-fcfs": lambda: ErmsScaler(use_priority=False),
        "grandslam": GrandSLAm,
        "rhythm": Rhythm,
        "firm": Firm,
    }
    if name not in schemes:
        raise UsageError(
            f"unknown scheme {name!r}; choose from {sorted(schemes)}"
        )
    return schemes[name]()


def _app(name: str):
    if name not in APPLICATIONS:
        raise UsageError(
            f"unknown application {name!r}; choose from {sorted(APPLICATIONS)}"
        )
    return APPLICATIONS[name]()


def _logger_for(args: argparse.Namespace):
    """A StructuredLogger under ``--log-format json``, else ``None``."""
    if getattr(args, "log_format", "text") != "json":
        return None
    from repro.telemetry import StructuredLogger

    return StructuredLogger(
        fmt="json",
        run_id=f"{args.command}-seed{getattr(args, 'seed', 0)}",
    )


class _ServeSession:
    """Lifecycle of one ``--serve`` attachment: attach → run → linger.

    ``attach`` is the ``on_simulator`` callback the experiment harness
    invokes with the constructed simulator *before* the event loop, so
    every endpoint is live while the run is in flight; ``finish`` marks
    the source complete and blocks until a client POSTs ``/shutdown``
    (or Ctrl-C).
    """

    def __init__(
        self, args, meta, logger=None, specs=None, targets=None, chaos=None
    ):
        self.port = getattr(args, "serve", None)
        self.meta = meta
        self.logger = logger
        self.specs = specs
        self.targets = targets
        self.chaos = chaos
        self.server = None
        self.source = None

    @property
    def enabled(self) -> bool:
        return self.port is not None

    def attach(self, simulator) -> None:
        from repro.telemetry.serve import RunSource

        sink = simulator._telemetry
        if sink is None:
            raise CLIError("--serve needs a telemetry sink on the run")
        if self.logger is not None:
            sink.decisions.logger = self.logger
        self.source = RunSource(
            sink,
            simulator=simulator,
            specs=self.specs
            if self.specs is not None
            else getattr(simulator, "services", None),
            meta=self.meta,
            targets=self.targets,
            chaos=self.chaos,
        )
        self._start()

    def serve_source(self, source) -> None:
        """Serve a pre-built source (sweeps with no single simulator)."""
        self.source = source
        self._start()

    def _start(self) -> None:
        from repro.telemetry.serve import ObservabilityServer

        self.server = ObservabilityServer(
            self.source, port=self.port, logger=self.logger
        )
        self.server.start()
        print(
            f"observability plane: {self.server.url} "
            f"(GET /, /metrics, /api/summary, /events; "
            f"POST /shutdown to stop)",
            file=sys.stderr,
        )

    def finish(self, result=None) -> None:
        if self.server is None:
            return
        self.source.mark_complete(result)
        print(
            "run complete — serving until POST /shutdown (or Ctrl-C)",
            file=sys.stderr,
        )
        self.server.wait_for_shutdown()


def _chaos_from_args(args: argparse.Namespace, app, duration_min: float):
    """Seeded random :class:`ChaosSchedule` over the app, or ``None``."""
    if not getattr(args, "chaos", False):
        return None
    from repro.resilience import ChaosSchedule

    return ChaosSchedule.random(
        sorted(app.simulated),
        duration_min=duration_min,
        seed=args.chaos_seed,
        crashes=args.chaos_crashes,
        restart_after_ms=args.chaos_restart_ms,
        error_rate=args.chaos_error_rate,
        spike_multiplier=args.chaos_spike,
    )


def _resilience_from_args(args: argparse.Namespace):
    """Default policy bundle when ``--resilience`` was given, else ``None``."""
    if not getattr(args, "resilience", False):
        return None
    from repro.resilience import ResiliencePolicies

    return ResiliencePolicies.default(seed=getattr(args, "seed", 0))


def _run_pool(workers: int):
    """One persistent worker pool for a whole command (``None`` if serial).

    Sweeps within the command then share workers and shipped context
    instead of cold-starting a pool per map.
    """
    if workers == 1:
        import contextlib

        return contextlib.nullcontext(None)
    from repro.experiments import WorkerPool

    return WorkerPool(workers)


def cmd_scale(args: argparse.Namespace) -> int:
    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    profiles = app.analytic_profiles(args.interference)
    specs = app.with_workloads(
        {s.name: args.workload for s in app.services}, sla=args.sla
    )
    allocation = scheme.scale(specs, profiles)

    rows = [
        {"microservice": name, "containers": count}
        for name, count in sorted(allocation.containers.items())
    ]
    print(format_table(rows, f"{scheme.name} allocation ({app.name})"))
    print(f"\nTotal containers: {allocation.total_containers()}")
    if allocation.priorities:
        print("\nPriorities (rank 0 first):")
        for ms_name, ranks in allocation.priorities.items():
            print(f"  {ms_name}: {ranks}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    profiles = app.analytic_profiles(args.interference)
    specs = app.with_workloads(
        {s.name: args.workload for s in app.services}, sla=args.sla
    )
    allocation = scheme.scale(specs, profiles)
    multipliers = None
    if args.interference != 1.0:
        multipliers = {
            name: [args.interference] * count
            for name, count in allocation.containers.items()
        }
    serving = getattr(args, "serve", None) is not None
    sink = None
    if serving or args.sampling_rate < 1.0 or args.tail_threshold is not None:
        from repro.telemetry import TelemetryConfig, TelemetrySink

        sink = TelemetrySink(
            config=TelemetryConfig(
                sampling_rate=args.sampling_rate,
                tail_threshold_ms=args.tail_threshold,
                seed=args.seed,
                max_traces=0,
                # Serving wants windows/scrapes at a live-view cadence.
                window_min=0.25 if serving else 1.0,
            )
        )
    logger = _logger_for(args)
    if sink is not None and logger is not None:
        sink.decisions.logger = logger
    if serving:
        from repro.telemetry import TimeSeriesConfig, TimeSeriesStore

        sink.timeseries = TimeSeriesStore(
            TimeSeriesConfig(scrape_interval_min=0.1)
        )
    chaos = _chaos_from_args(args, app, args.duration)
    session = _ServeSession(
        args,
        meta={
            "app": args.app,
            "scheme": args.scheme,
            "workload": args.workload,
            "sla": args.sla,
            "seed": args.seed,
            "duration_min": args.duration,
        },
        logger=logger,
        specs=specs,
        targets=allocation.targets,
        chaos=chaos,
    )
    result = evaluate_allocation(
        specs,
        app.simulated,
        allocation,
        duration_min=args.duration,
        warmup_min=min(0.5, args.duration / 3),
        seed=args.seed,
        container_multipliers=multipliers,
        telemetry=sink,
        chaos=chaos,
        resilience=_resilience_from_args(args),
        on_simulator=session.attach if session.enabled else None,
    )
    rows = []
    for spec in specs:
        if result.completed.get(spec.name, 0) == 0:
            continue
        row = {
            "service": spec.name,
            "completed": result.completed[spec.name],
            "p95_ms": result.tail_latency(spec.name),
            "violation": result.sla_violation_rate(spec.name, spec.sla),
        }
        failed = result.failed_requests.get(spec.name, 0)
        shed = result.shed_requests.get(spec.name, 0)
        dropped = result.dropped_requests.get(spec.name, 0)
        if failed or shed or dropped:
            row["failed"] = failed
            row["shed"] = shed
            row["dropped"] = dropped
        rows.append(row)
    print(
        format_table(
            rows,
            f"{scheme.name} on {app.name}: "
            f"{allocation.total_containers()} containers",
            "{:.3f}",
        )
    )
    if result.resilience is not None:
        interesting = {k: v for k, v in result.resilience.items() if v}
        print(f"\nResilience: {interesting or 'no faults, no policy activity'}")
    if sink is not None:
        print(
            f"\nTraces: buffered={sink.sampled_traces} "
            f"kept={sink.kept_traces} tail_dropped={sink.tail_dropped}"
        )
    session.finish(result)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    app = _app(args.app)
    schemes = [ErmsScaler(), ErmsScaler(use_priority=False), GrandSLAm(), Rhythm(), Firm()]
    session = _ServeSession(
        args,
        meta={
            "app": args.app,
            "mode": "sweep-aggregate",
            "seed": args.seed,
        },
        logger=_logger_for(args),
    )
    if session.enabled:
        # Sweep cells run in worker processes, so there is no single
        # simulator to attach to; serve an aggregate source whose
        # registry carries sweep-level gauges instead.  Every endpoint
        # still answers (with empty series/alert payloads).
        from repro.telemetry import TelemetryConfig, TelemetrySink
        from repro.telemetry.serve import RunSource

        agg_sink = TelemetrySink(config=TelemetryConfig(max_traces=0))
        agg_sink.registry.gauge("sweep_cells_total").set(
            len(args.workloads) * len(args.slas) * len(schemes)
        )
        session.serve_source(RunSource(agg_sink, meta=session.meta))
    with _run_pool(args.workers) as pool:
        sweep = run_static_sweep(
            app,
            schemes,
            workloads=args.workloads,
            slas=args.slas,
            interference_multiplier=args.interference,
            simulate=args.simulate,
            duration_min=args.duration,
            warmup_min=min(0.5, args.duration / 3),
            seed=args.seed,
            workers=args.workers,
            sampling_rate=args.sampling_rate,
            tail_threshold_ms=args.tail_threshold,
            pool=pool,
            chaos=_chaos_from_args(args, app, args.duration),
            resilience=_resilience_from_args(args),
        )
    rows = []
    for scheme in sweep.schemes():
        row = {"scheme": scheme, "avg_containers": sweep.average_containers(scheme)}
        if args.simulate:
            row["avg_violation"] = sweep.average_violation(scheme)
            row["avg_p95_ms"] = sweep.average_p95(scheme)
        rows.append(row)
    if session.enabled:
        registry = session.source.sink.registry
        registry.gauge("sweep_rows").set(len(sweep.rows))
        for row in rows:
            registry.gauge(
                f"sweep_avg_containers.{row['scheme']}"
            ).set(row["avg_containers"])
    print(format_table(rows, f"Static sweep on {app.name}"))
    sampled = sum(r.get("traces_sampled") or 0 for r in sweep.rows)
    if sampled:
        kept = sum(r.get("traces_kept") or 0 for r in sweep.rows)
        dropped = sum(r.get("tail_dropped") or 0 for r in sweep.rows)
        print(
            f"\nTraces across cells: buffered={sampled} kept={kept} "
            f"tail_dropped={dropped}"
        )
    session.finish()
    return 0


def cmd_trace_sim(args: argparse.Namespace) -> int:
    workload = generate_taobao(n_services=args.services, seed=args.seed)
    schemes = [ErmsScaler(), ErmsScaler(use_priority=False), GrandSLAm(), Rhythm()]
    with _run_pool(args.workers) as pool:
        result = run_trace_simulation(
            workload, schemes, workers=args.workers, pool=pool
        )
    rows = [
        {
            "scheme": scheme,
            "total_containers": result.totals[scheme],
            "avg_per_service": result.average_per_service(scheme),
        }
        for scheme in result.totals
    ]
    print(format_table(rows, f"Taobao-scale simulation ({args.services} services)"))
    print(
        f"\nErms vs GrandSLAm: "
        f"{result.reduction_factor('erms', 'grandslam'):.2f}x fewer containers"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.diff:
        from repro.telemetry.diff import diff_run_reports, load_run_report

        path_a, path_b = args.diff
        diff = diff_run_reports(
            load_run_report(path_a), load_run_report(path_b)
        )
        print(
            format_table(
                diff.table_rows(),
                f"Run diff: {path_a} (A) vs {path_b} (B)",
                "{:.4f}",
            )
        )
        print(
            f"\nverdict: {diff.verdict} "
            f"({len(diff.regressions)} regressions, "
            f"{len(diff.improvements)} improvements)"
        )
        return 1 if diff.regressions else 0

    from repro.simulator.autoscaled import AutoscaleConfig, AutoscaledSimulation
    from repro.simulator.simulation import SimulationConfig
    from repro.telemetry import (
        TelemetryConfig,
        TelemetrySink,
        build_run_report,
        write_chrome_trace,
        write_run_report,
    )
    from repro.tracing.coordinator import TracingCoordinator

    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    profiles = app.analytic_profiles(args.interference)
    specs = app.with_workloads(
        {s.name: args.workload for s in app.services}, sla=args.sla
    )
    sink = TelemetrySink(
        config=TelemetryConfig(
            window_min=args.window,
            sampling_rate=args.sampling,
            tail_threshold_ms=args.tail_threshold,
            max_traces=args.max_traces,
        ),
        coordinator=TracingCoordinator(),
    )
    simulation = AutoscaledSimulation(
        specs,
        app.simulated,
        scheme,
        profiles,
        rates={spec.name: args.workload for spec in specs},
        config=SimulationConfig(
            duration_min=args.duration,
            warmup_min=min(0.5, args.duration / 3),
            seed=args.seed,
        ),
        autoscale=AutoscaleConfig(interval_min=args.interval),
        telemetry=sink,
    )
    outcome = simulation.run()
    if args.format == "prom":
        print(sink.registry.expose_text(), end="")
        return 0
    report = build_run_report(sink, outcome.simulation, specs)
    print(render_run_report(report))
    if args.output:
        write_run_report(report, args.output)
        print(f"\nwrote report: {args.output}")
    if args.chrome_trace:
        count = write_chrome_trace(sink.traces, args.chrome_trace)
        print(f"wrote chrome trace: {args.chrome_trace} ({count} events)")
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.core.model import InfeasibleSLAError
    from repro.simulator.autoscaled import AutoscaleConfig, AutoscaledSimulation
    from repro.simulator.simulation import SimulationConfig
    from repro.telemetry import (
        TelemetryConfig,
        TelemetrySink,
        TimeSeriesConfig,
        TimeSeriesStore,
        dashboard_data,
        load_rules,
        write_dashboard,
    )

    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    profiles = app.analytic_profiles(args.interference)
    specs = app.with_workloads(
        {s.name: args.workload for s in app.services}, sla=args.sla
    )
    # A throwaway allocation just for its Eq. 5 latency targets — the
    # autoscaled run recomputes its own, but the targets table on the
    # dashboard shows what the SLA decomposed into.
    try:
        allocation = scheme.scale(specs, profiles)
    except InfeasibleSLAError as error:
        raise CLIError(f"infeasible setting: {error}")
    rules = load_rules(args.rules) if args.rules else None
    store = TimeSeriesStore(
        TimeSeriesConfig(scrape_interval_min=args.scrape_interval),
        rules=rules,
    )
    sink = TelemetrySink(
        config=TelemetryConfig(window_min=args.window, max_traces=0),
        timeseries=store,
    )
    chaos = _chaos_from_args(args, app, args.duration)
    simulation = AutoscaledSimulation(
        specs,
        app.simulated,
        scheme,
        profiles,
        rates={spec.name: args.workload for spec in specs},
        config=SimulationConfig(
            duration_min=args.duration,
            warmup_min=min(0.5, args.duration / 3),
            seed=args.seed,
        ),
        autoscale=AutoscaleConfig(interval_min=args.interval),
        telemetry=sink,
        chaos=chaos,
        resilience=_resilience_from_args(args),
    )
    outcome = simulation.run()
    data = dashboard_data(
        sink,
        outcome.simulation,
        specs=specs,
        meta={
            "app": args.app,
            "scheme": args.scheme,
            "workload": args.workload,
            "sla": args.sla,
            "seed": args.seed,
            "duration_min": args.duration,
        },
        targets=allocation.targets,
        chaos=chaos,
    )
    write_dashboard(data, args.output)
    summary = data["summary"]
    print(
        f"wrote dashboard: {args.output} "
        f"({len(data['services'])} services, "
        f"{summary.get('tsdb_series', 0)} series, "
        f"{summary.get('tsdb_samples', 0)} samples, "
        f"{summary['sla_alerts']} SLA alerts, "
        f"{summary['rule_alerts']} rule alerts)"
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import render_analysis_sections
    from repro.simulator.autoscaled import AutoscaleConfig, AutoscaledSimulation
    from repro.simulator.simulation import SimulationConfig
    from repro.telemetry import (
        TelemetryConfig,
        TelemetrySink,
        build_run_report,
        write_run_report,
    )
    from repro.telemetry.analysis import AnalysisOptions, analyze_run

    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    profiles = app.analytic_profiles(args.interference)
    specs = app.with_workloads(
        {s.name: args.workload for s in app.services}, sla=args.sla
    )
    from repro.core.model import InfeasibleSLAError

    # The allocation the run starts from also carries the Eq. 5 latency
    # targets and the Eqs. 13-14 priorities — the ground truth blame
    # attribution compares against.
    try:
        allocation = scheme.scale(specs, profiles)
    except InfeasibleSLAError as error:
        raise CLIError(f"infeasible setting: {error}")
    sink = TelemetrySink(
        config=TelemetryConfig(
            window_min=args.window,
            sampling_rate=args.sampling_rate,
            tail_threshold_ms=args.tail_threshold,
            max_traces=args.max_traces,
        )
    )
    simulation = AutoscaledSimulation(
        specs,
        app.simulated,
        scheme,
        profiles,
        rates={spec.name: args.workload for spec in specs},
        config=SimulationConfig(
            duration_min=args.duration,
            warmup_min=min(0.5, args.duration / 3),
            seed=args.seed,
        ),
        autoscale=AutoscaleConfig(interval_min=args.interval),
        telemetry=sink,
    )
    outcome = simulation.run()
    analysis = analyze_run(
        sink=sink,
        targets=allocation.targets,
        priorities=allocation.priorities or None,
        profiles={name: prof.model for name, prof in profiles.items()},
        options=AnalysisOptions(
            window_min=args.window, top_paths=args.top_paths
        ),
    )
    sections = render_analysis_sections(analysis.to_dict())
    print(
        "\n\n".join(sections)
        if sections
        else "(no traces collected — nothing to analyze)"
    )
    slowest = analysis.slowest
    if slowest:
        print(f"\nSlowest trace ({slowest[0].trace_id}):")
        rows = [segment.to_dict() for segment in slowest[0].segments]
        print(format_table(rows, f"e2e={slowest[0].end_to_end_ms:.3f} ms"))
    if args.output:
        report = build_run_report(
            sink, outcome.simulation, specs, analysis=analysis
        )
        write_run_report(report, args.output)
        print(f"\nwrote report: {args.output}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments import run_chaos_comparison, run_resilience_sweep

    if args.controlled:
        sweep = run_resilience_sweep(
            duration_min=args.duration, seed=args.seed, workers=args.workers
        )
        rows = [
            {
                key: row[key]
                for key in (
                    "policy", "service", "generated", "failed", "shed",
                    "violations", "sla_miss_rate",
                )
            }
            for row in sweep.rows
        ]
        print(format_table(rows, "Controlled resilience sweep", "{:.4f}"))
        print(
            f"\ngold miss-rate reduction, full policies vs no-policy: "
            f"{sweep.improvement('gold'):+.4f}"
        )
        return 0

    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    args.chaos = True  # the subcommand always injects its schedule
    chaos = _chaos_from_args(args, app, args.duration)
    session = _ServeSession(
        args,
        meta={
            "app": args.app,
            "scheme": args.scheme,
            "workload": args.workload,
            "sla": args.sla,
            "seed": args.seed,
            "duration_min": args.duration,
            "mode": "chaos-resilient",
        },
        logger=_logger_for(args),
        chaos=chaos,
    )
    comparison = run_chaos_comparison(
        app,
        scheme,
        workload=args.workload,
        sla=args.sla,
        chaos=chaos,
        duration_min=args.duration,
        seed=args.seed,
        on_simulator=session.attach if session.enabled else None,
    )
    for mode in ("no-policy", "resilient"):
        rows = [
            {
                key: row[key]
                for key in (
                    "service", "generated", "failed", "shed", "violations",
                    "sla_miss_rate",
                )
            }
            for row in comparison.rows[mode]
        ]
        print(format_table(rows, f"{mode} under the same fault schedule", "{:.4f}"))
        interesting = {k: v for k, v in comparison.stats[mode].items() if v}
        print(f"  stats: {interesting}\n")
    faults = comparison.decisions["resilient"]
    print(f"Fault / policy decisions (resilient run): {len(faults)}")
    for record in faults[: args.max_decisions]:
        print(
            f"  [{record['minute']:7.3f} min] {record['actor']:>15} "
            f"{record['microservice']}: {record['reason']}"
        )
    if len(faults) > args.max_decisions:
        print(f"  ... and {len(faults) - args.max_decisions} more")
    session.finish()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.telemetry.serve import ObservabilityServer, load_replay_source

    try:
        source = load_replay_source(args.replay)
    except OSError as error:
        raise UsageError(f"cannot read replay report: {error}")
    except ValueError as error:
        raise CLIError(f"invalid run report {args.replay!r}: {error}")
    server = ObservabilityServer(
        source, host=args.host, port=args.port, logger=_logger_for(args)
    ).start()
    print(f"serving replay of {args.replay}: {server.url}")
    print(
        f"POST {server.url}/shutdown (or Ctrl-C) to stop", file=sys.stderr
    )
    server.wait_for_shutdown()
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    import json
    import time
    import urllib.error
    import urllib.request

    from repro.telemetry.serve import render_top

    url = args.url.rstrip("/") + "/api/summary"
    clear = sys.stdout.isatty()  # plain appending frames when piped
    frames = 0
    try:
        while args.frames is None or frames < args.frames:
            if frames:
                time.sleep(args.interval)
            try:
                with urllib.request.urlopen(url, timeout=10) as response:
                    summary = json.loads(response.read().decode("utf-8"))
            except (urllib.error.URLError, OSError) as error:
                raise CLIError(f"cannot fetch {url}: {error}")
            sys.stdout.write(render_top(summary, clear=clear))
            sys.stdout.flush()
            frames += 1
    except KeyboardInterrupt:
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Erms (ASPLOS'23) reproduction command-line interface",
        epilog=_EXIT_CODE_EPILOG,
    )
    parser.add_argument(
        "--log-format",
        choices=["text", "json"],
        default="text",
        dest="log_format",
        help="stderr logging: text (default) or structured JSON lines "
             "with run_id/actor correlation shared by scaling decisions "
             "and the observability server's access log",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--app", default="social-network",
                       help="benchmark application (default: social-network)")
        p.add_argument("--scheme", default="erms",
                       help="erms | erms-fcfs | grandslam | rhythm | firm")
        p.add_argument("--workload", type=float, default=20_000.0,
                       help="requests/minute per service")
        p.add_argument("--sla", type=float, default=200.0, help="SLA in ms")
        p.add_argument("--interference", type=float, default=1.0,
                       help="host colocation multiplier (>= 1)")

    def add_sampling(p):
        p.add_argument("--sampling-rate", type=float, default=1.0,
                       dest="sampling_rate",
                       help="trace head-sampling rate in (0, 1]")
        p.add_argument("--tail-threshold", type=float, default=None,
                       dest="tail_threshold",
                       help="tail-based sampling: keep full traces only "
                            "for requests slower than this many ms "
                            "(plus a small uniform floor)")

    def add_chaos(p, with_toggle=True):
        if with_toggle:
            p.add_argument("--chaos", action="store_true",
                           help="inject a seeded random fault schedule")
            p.add_argument("--resilience", action="store_true",
                           help="attach the default retry/timeout/breaker/"
                                "admission policy bundle")
        p.add_argument("--chaos-seed", type=int, default=0, dest="chaos_seed",
                       help="fault-schedule seed (independent of --seed)")
        p.add_argument("--chaos-crashes", type=int, default=1,
                       dest="chaos_crashes",
                       help="container crashes to schedule")
        p.add_argument("--chaos-error-rate", type=float, default=0.05,
                       dest="chaos_error_rate",
                       help="per-RPC error probability inside error windows")
        p.add_argument("--chaos-spike", type=float, default=3.0,
                       dest="chaos_spike",
                       help="latency multiplier inside spike windows")
        p.add_argument("--chaos-restart-ms", type=float, default=5_000.0,
                       dest="chaos_restart_ms",
                       help="crashed containers restart after this long")

    def add_serve(p):
        p.add_argument("--serve", nargs="?", const=0, default=None,
                       type=int, metavar="PORT",
                       help="attach the live observability HTTP plane "
                            "(/, /metrics, /api/*, /events SSE) to the "
                            "run; PORT omitted or 0 binds an ephemeral "
                            "port, printed on stderr; the command then "
                            "serves until POST /shutdown")

    p_scale = sub.add_parser("scale", help="compute an allocation")
    add_common(p_scale)
    p_scale.set_defaults(func=cmd_scale)

    p_sim = sub.add_parser("simulate", help="allocate, then replay on the simulator",
                           epilog=_EXIT_CODE_EPILOG)
    add_common(p_sim)
    p_sim.add_argument("--duration", type=float, default=1.5,
                       help="simulated minutes")
    p_sim.add_argument("--seed", type=int, default=0)
    add_sampling(p_sim)
    add_chaos(p_sim)
    add_serve(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_cmp = sub.add_parser("compare", help="static sweep across all schemes")
    p_cmp.add_argument("--app", default="social-network")
    p_cmp.add_argument("--workloads", type=float, nargs="+",
                       default=[5_000.0, 20_000.0, 60_000.0])
    p_cmp.add_argument("--slas", type=float, nargs="+", default=[150.0, 250.0])
    p_cmp.add_argument("--interference", type=float, default=1.0)
    p_cmp.add_argument("--simulate", action="store_true",
                       help="also replay each allocation on the simulator")
    p_cmp.add_argument("--duration", type=float, default=1.5,
                       help="simulated minutes per replay (with --simulate)")
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--workers", type=int, default=1,
                       help="processes for the replays (0 = one per CPU)")
    add_sampling(p_cmp)
    add_chaos(p_cmp)
    add_serve(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_chaos = sub.add_parser(
        "chaos",
        help="replay one fault schedule with policies off vs on and "
             "compare SLA miss rates",
    )
    add_common(p_chaos)
    p_chaos.add_argument("--duration", type=float, default=2.0,
                         help="simulated minutes")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--controlled", action="store_true",
                         help="run the controlled two-tenant resilience "
                              "sweep instead of an application comparison")
    p_chaos.add_argument("--workers", type=int, default=1,
                         help="processes for the controlled sweep's cells")
    p_chaos.add_argument("--max-decisions", type=int, default=20,
                         dest="max_decisions",
                         help="fault/policy decision records to print")
    add_chaos(p_chaos, with_toggle=False)
    add_serve(p_chaos)
    p_chaos.set_defaults(func=cmd_chaos)

    p_trace = sub.add_parser("trace-sim", help="Taobao-scale synthetic evaluation")
    p_trace.add_argument("--services", type=int, default=60)
    p_trace.add_argument("--seed", type=int, default=42)
    p_trace.add_argument("--workers", type=int, default=1,
                         help="processes for the feasibility pre-filter "
                              "(0 = one per CPU)")
    p_trace.set_defaults(func=cmd_trace_sim)

    p_rep = sub.add_parser(
        "report",
        help="autoscaled run with live telemetry: SLA windows, alerts, "
             "scaling decisions",
        epilog="exit codes: 0 success (or --diff with no regressions) · "
               "1 regression verdict from --diff · 2 usage error · "
               "3 runtime failure",
    )
    add_common(p_rep)
    p_rep.add_argument("--duration", type=float, default=3.0,
                       help="simulated minutes")
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.add_argument("--interval", type=float, default=1.0,
                       help="autoscaler reconcile interval (minutes)")
    p_rep.add_argument("--window", type=float, default=1.0,
                       help="SLA observation window (minutes)")
    p_rep.add_argument("--sampling", "--sampling-rate", type=float,
                       default=1.0, dest="sampling",
                       help="trace head-sampling rate in (0, 1]")
    p_rep.add_argument("--tail-threshold", type=float, default=None,
                       dest="tail_threshold",
                       help="tail-based sampling threshold in ms")
    p_rep.add_argument("--max-traces", type=int, default=1000,
                       help="retain at most this many traces in memory")
    p_rep.add_argument("--format", choices=["tables", "prom"],
                       default="tables",
                       help="tables (default) or Prometheus text "
                            "exposition of the metrics registry")
    p_rep.add_argument("--output", default=None,
                       help="write the JSON run report to this path")
    p_rep.add_argument("--chrome-trace", default=None,
                       help="write a chrome://tracing JSON to this path")
    p_rep.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                       help="skip the run: compare two saved JSON run "
                            "reports (A = baseline, B = candidate) and "
                            "print a regression verdict table; exits 1 "
                            "on any regression")
    p_rep.set_defaults(func=cmd_report)

    p_dash = sub.add_parser(
        "dashboard",
        help="instrumented run -> self-contained HTML dashboard "
             "(latency percentiles, SLA miss rate, breakers, container "
             "timelines)",
    )
    add_common(p_dash)
    p_dash.add_argument("--duration", type=float, default=3.0,
                        help="simulated minutes")
    p_dash.add_argument("--seed", type=int, default=0)
    p_dash.add_argument("--interval", type=float, default=1.0,
                        help="autoscaler reconcile interval (minutes)")
    p_dash.add_argument("--window", type=float, default=1.0,
                        help="SLA observation window (minutes)")
    p_dash.add_argument("--scrape-interval", type=float, default=0.25,
                        dest="scrape_interval",
                        help="TSDB scrape cadence in simulated minutes")
    p_dash.add_argument("--rules", default=None,
                        help="JSON file of recording/alert rules to "
                             "evaluate at every scrape")
    p_dash.add_argument("--output", default="dashboard.html",
                        help="HTML output path (default: dashboard.html)")
    add_chaos(p_dash)
    p_dash.set_defaults(func=cmd_dashboard)

    p_an = sub.add_parser(
        "analyze",
        help="trace analytics: critical paths, SLA blame, priority "
             "inversions, profile drift",
    )
    add_common(p_an)
    p_an.add_argument("--duration", type=float, default=3.0,
                      help="simulated minutes")
    p_an.add_argument("--seed", type=int, default=0)
    p_an.add_argument("--interval", type=float, default=1.0,
                      help="autoscaler reconcile interval (minutes)")
    p_an.add_argument("--window", type=float, default=1.0,
                      help="blame/SLA observation window (minutes)")
    p_an.add_argument("--max-traces", type=int, default=5000,
                      help="retain at most this many traces in memory")
    p_an.add_argument("--top-paths", type=int, default=5,
                      help="slowest traces to break down in full")
    add_sampling(p_an)
    p_an.add_argument("--output", default=None,
                      help="write the JSON run report (with analysis) here")
    p_an.set_defaults(func=cmd_analyze)

    p_srv = sub.add_parser(
        "serve",
        help="serve a saved JSON run report through the observability "
             "plane (replay mode: /, /metrics, /api/*)",
        epilog=_EXIT_CODE_EPILOG,
    )
    p_srv.add_argument("--replay", required=True, metavar="REPORT",
                       help="run-report JSON from `repro report --output` "
                            "or `repro analyze --output`")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8000,
                       help="bind port (default: 8000; 0 = ephemeral)")
    p_srv.set_defaults(func=cmd_serve)

    p_top = sub.add_parser(
        "top",
        help="terminal live view of a serving run: p95/p99 vs SLA, "
             "per-service miss rate, breaker states, container counts",
        epilog=_EXIT_CODE_EPILOG,
    )
    p_top.add_argument("--url", default="http://127.0.0.1:8000",
                       help="base URL of a running observability plane "
                            "(default: http://127.0.0.1:8000)")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="seconds between refreshes (default: 1)")
    p_top.add_argument("--frames", type=int, default=None,
                       help="render this many frames then exit "
                            "(default: run until Ctrl-C)")
    p_top.set_defaults(func=cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UsageError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except CLIError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return EXIT_RUNTIME


if __name__ == "__main__":
    sys.exit(main())
