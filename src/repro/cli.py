"""Command-line interface: ``python -m repro <command>``.

Mirrors the paper artifact's shell scripts (Appendix B) as subcommands:

* ``scale`` — run a scheme on a benchmark application at a given workload
  and SLA, print targets/priorities/containers (the artifact's
  ``latency-target-computation.sh`` + ``priority-scheduling.sh``).
* ``simulate`` — additionally replay the allocation on the cluster
  simulator and report tail latency and violations (``static-workload.sh``).
* ``compare`` — the static (workload × SLA) sweep across all schemes
  (``theoretical-resource.sh``); ``--simulate --workers N`` replays the
  allocations on the simulator in parallel.
* ``trace-sim`` — the Taobao-scale synthetic evaluation (§6.5).
* ``report`` — run the autoscaled control loop with live telemetry and
  print/export the observability report (SLA windows, alerts, scaling
  decisions, chrome://tracing timelines); ``--format prom`` dumps the
  metrics registry in Prometheus text exposition instead; ``--diff A B``
  skips the run entirely and compares two saved JSON run reports,
  printing a per-metric verdict table (exit 1 on any regression).
* ``dashboard`` — run the autoscaled control loop with the embedded
  time-series store scraping it, then write one self-contained HTML
  dashboard (inline SVG, no scripts, no external resources): latency
  percentiles over time, SLA miss rate per window against the Eq. 5
  tail budget, breaker state with chaos overlays, and container
  timelines.  ``--rules FILE`` attaches declarative recording/alert
  rules evaluated on the sim clock.
* ``analyze`` — run the trace analytics engine on an instrumented run:
  critical-path attribution, SLA blame against the Eq. 5 targets,
  priority-inversion flags, and profile-drift verdicts.
* ``chaos`` — replay one deterministic fault schedule (container
  crashes, error windows, latency spikes) twice — observation-only vs
  the full retry/timeout/breaker/admission stack — and compare SLA miss
  rates; ``--controlled`` runs the two-tenant resilience sweep instead.

``simulate``, ``compare``, ``report``, and ``analyze`` all accept
``--sampling-rate`` (head sampling) and ``--tail-threshold`` (tail-based
sampling: keep full traces only for requests slower than the threshold,
plus a small uniform floor).  ``simulate`` and ``compare`` also accept
``--chaos`` (seeded random fault schedule) and ``--resilience`` (attach
the default policy bundle).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines import Firm, GrandSLAm, Rhythm
from repro.core import ErmsScaler
from repro.experiments import (
    evaluate_allocation,
    format_table,
    render_run_report,
    run_static_sweep,
    run_trace_simulation,
)
from repro.workloads import (
    generate_taobao,
    hotel_reservation,
    media_service,
    social_network,
)

APPLICATIONS = {
    "social-network": social_network,
    "media-service": media_service,
    "hotel-reservation": hotel_reservation,
}


def _make_scheme(name: str):
    schemes = {
        "erms": ErmsScaler,
        "erms-fcfs": lambda: ErmsScaler(use_priority=False),
        "grandslam": GrandSLAm,
        "rhythm": Rhythm,
        "firm": Firm,
    }
    if name not in schemes:
        raise SystemExit(
            f"unknown scheme {name!r}; choose from {sorted(schemes)}"
        )
    return schemes[name]()


def _app(name: str):
    if name not in APPLICATIONS:
        raise SystemExit(
            f"unknown application {name!r}; choose from {sorted(APPLICATIONS)}"
        )
    return APPLICATIONS[name]()


def _chaos_from_args(args: argparse.Namespace, app, duration_min: float):
    """Seeded random :class:`ChaosSchedule` over the app, or ``None``."""
    if not getattr(args, "chaos", False):
        return None
    from repro.resilience import ChaosSchedule

    return ChaosSchedule.random(
        sorted(app.simulated),
        duration_min=duration_min,
        seed=args.chaos_seed,
        crashes=args.chaos_crashes,
        restart_after_ms=args.chaos_restart_ms,
        error_rate=args.chaos_error_rate,
        spike_multiplier=args.chaos_spike,
    )


def _resilience_from_args(args: argparse.Namespace):
    """Default policy bundle when ``--resilience`` was given, else ``None``."""
    if not getattr(args, "resilience", False):
        return None
    from repro.resilience import ResiliencePolicies

    return ResiliencePolicies.default(seed=getattr(args, "seed", 0))


def _run_pool(workers: int):
    """One persistent worker pool for a whole command (``None`` if serial).

    Sweeps within the command then share workers and shipped context
    instead of cold-starting a pool per map.
    """
    if workers == 1:
        import contextlib

        return contextlib.nullcontext(None)
    from repro.experiments import WorkerPool

    return WorkerPool(workers)


def cmd_scale(args: argparse.Namespace) -> int:
    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    profiles = app.analytic_profiles(args.interference)
    specs = app.with_workloads(
        {s.name: args.workload for s in app.services}, sla=args.sla
    )
    allocation = scheme.scale(specs, profiles)

    rows = [
        {"microservice": name, "containers": count}
        for name, count in sorted(allocation.containers.items())
    ]
    print(format_table(rows, f"{scheme.name} allocation ({app.name})"))
    print(f"\nTotal containers: {allocation.total_containers()}")
    if allocation.priorities:
        print("\nPriorities (rank 0 first):")
        for ms_name, ranks in allocation.priorities.items():
            print(f"  {ms_name}: {ranks}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    profiles = app.analytic_profiles(args.interference)
    specs = app.with_workloads(
        {s.name: args.workload for s in app.services}, sla=args.sla
    )
    allocation = scheme.scale(specs, profiles)
    multipliers = None
    if args.interference != 1.0:
        multipliers = {
            name: [args.interference] * count
            for name, count in allocation.containers.items()
        }
    sink = None
    if args.sampling_rate < 1.0 or args.tail_threshold is not None:
        from repro.telemetry import TelemetryConfig, TelemetrySink

        sink = TelemetrySink(
            config=TelemetryConfig(
                sampling_rate=args.sampling_rate,
                tail_threshold_ms=args.tail_threshold,
                seed=args.seed,
                max_traces=0,
            )
        )
    result = evaluate_allocation(
        specs,
        app.simulated,
        allocation,
        duration_min=args.duration,
        warmup_min=min(0.5, args.duration / 3),
        seed=args.seed,
        container_multipliers=multipliers,
        telemetry=sink,
        chaos=_chaos_from_args(args, app, args.duration),
        resilience=_resilience_from_args(args),
    )
    rows = []
    for spec in specs:
        if result.completed.get(spec.name, 0) == 0:
            continue
        row = {
            "service": spec.name,
            "completed": result.completed[spec.name],
            "p95_ms": result.tail_latency(spec.name),
            "violation": result.sla_violation_rate(spec.name, spec.sla),
        }
        failed = result.failed_requests.get(spec.name, 0)
        shed = result.shed_requests.get(spec.name, 0)
        dropped = result.dropped_requests.get(spec.name, 0)
        if failed or shed or dropped:
            row["failed"] = failed
            row["shed"] = shed
            row["dropped"] = dropped
        rows.append(row)
    print(
        format_table(
            rows,
            f"{scheme.name} on {app.name}: "
            f"{allocation.total_containers()} containers",
            "{:.3f}",
        )
    )
    if result.resilience is not None:
        interesting = {k: v for k, v in result.resilience.items() if v}
        print(f"\nResilience: {interesting or 'no faults, no policy activity'}")
    if sink is not None:
        print(
            f"\nTraces: buffered={sink.sampled_traces} "
            f"kept={sink.kept_traces} tail_dropped={sink.tail_dropped}"
        )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    app = _app(args.app)
    schemes = [ErmsScaler(), ErmsScaler(use_priority=False), GrandSLAm(), Rhythm(), Firm()]
    with _run_pool(args.workers) as pool:
        sweep = run_static_sweep(
            app,
            schemes,
            workloads=args.workloads,
            slas=args.slas,
            interference_multiplier=args.interference,
            simulate=args.simulate,
            duration_min=args.duration,
            warmup_min=min(0.5, args.duration / 3),
            seed=args.seed,
            workers=args.workers,
            sampling_rate=args.sampling_rate,
            tail_threshold_ms=args.tail_threshold,
            pool=pool,
            chaos=_chaos_from_args(args, app, args.duration),
            resilience=_resilience_from_args(args),
        )
    rows = []
    for scheme in sweep.schemes():
        row = {"scheme": scheme, "avg_containers": sweep.average_containers(scheme)}
        if args.simulate:
            row["avg_violation"] = sweep.average_violation(scheme)
            row["avg_p95_ms"] = sweep.average_p95(scheme)
        rows.append(row)
    print(format_table(rows, f"Static sweep on {app.name}"))
    sampled = sum(r.get("traces_sampled") or 0 for r in sweep.rows)
    if sampled:
        kept = sum(r.get("traces_kept") or 0 for r in sweep.rows)
        dropped = sum(r.get("tail_dropped") or 0 for r in sweep.rows)
        print(
            f"\nTraces across cells: buffered={sampled} kept={kept} "
            f"tail_dropped={dropped}"
        )
    return 0


def cmd_trace_sim(args: argparse.Namespace) -> int:
    workload = generate_taobao(n_services=args.services, seed=args.seed)
    schemes = [ErmsScaler(), ErmsScaler(use_priority=False), GrandSLAm(), Rhythm()]
    with _run_pool(args.workers) as pool:
        result = run_trace_simulation(
            workload, schemes, workers=args.workers, pool=pool
        )
    rows = [
        {
            "scheme": scheme,
            "total_containers": result.totals[scheme],
            "avg_per_service": result.average_per_service(scheme),
        }
        for scheme in result.totals
    ]
    print(format_table(rows, f"Taobao-scale simulation ({args.services} services)"))
    print(
        f"\nErms vs GrandSLAm: "
        f"{result.reduction_factor('erms', 'grandslam'):.2f}x fewer containers"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.diff:
        from repro.telemetry.diff import diff_run_reports, load_run_report

        path_a, path_b = args.diff
        diff = diff_run_reports(
            load_run_report(path_a), load_run_report(path_b)
        )
        print(
            format_table(
                diff.table_rows(),
                f"Run diff: {path_a} (A) vs {path_b} (B)",
                "{:.4f}",
            )
        )
        print(
            f"\nverdict: {diff.verdict} "
            f"({len(diff.regressions)} regressions, "
            f"{len(diff.improvements)} improvements)"
        )
        return 1 if diff.regressions else 0

    from repro.simulator.autoscaled import AutoscaleConfig, AutoscaledSimulation
    from repro.simulator.simulation import SimulationConfig
    from repro.telemetry import (
        TelemetryConfig,
        TelemetrySink,
        build_run_report,
        write_chrome_trace,
        write_run_report,
    )
    from repro.tracing.coordinator import TracingCoordinator

    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    profiles = app.analytic_profiles(args.interference)
    specs = app.with_workloads(
        {s.name: args.workload for s in app.services}, sla=args.sla
    )
    sink = TelemetrySink(
        config=TelemetryConfig(
            window_min=args.window,
            sampling_rate=args.sampling,
            tail_threshold_ms=args.tail_threshold,
            max_traces=args.max_traces,
        ),
        coordinator=TracingCoordinator(),
    )
    simulation = AutoscaledSimulation(
        specs,
        app.simulated,
        scheme,
        profiles,
        rates={spec.name: args.workload for spec in specs},
        config=SimulationConfig(
            duration_min=args.duration,
            warmup_min=min(0.5, args.duration / 3),
            seed=args.seed,
        ),
        autoscale=AutoscaleConfig(interval_min=args.interval),
        telemetry=sink,
    )
    outcome = simulation.run()
    if args.format == "prom":
        print(sink.registry.expose_text(), end="")
        return 0
    report = build_run_report(sink, outcome.simulation, specs)
    print(render_run_report(report))
    if args.output:
        write_run_report(report, args.output)
        print(f"\nwrote report: {args.output}")
    if args.chrome_trace:
        count = write_chrome_trace(sink.traces, args.chrome_trace)
        print(f"wrote chrome trace: {args.chrome_trace} ({count} events)")
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.core.model import InfeasibleSLAError
    from repro.simulator.autoscaled import AutoscaleConfig, AutoscaledSimulation
    from repro.simulator.simulation import SimulationConfig
    from repro.telemetry import (
        TelemetryConfig,
        TelemetrySink,
        TimeSeriesConfig,
        TimeSeriesStore,
        dashboard_data,
        load_rules,
        write_dashboard,
    )

    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    profiles = app.analytic_profiles(args.interference)
    specs = app.with_workloads(
        {s.name: args.workload for s in app.services}, sla=args.sla
    )
    # A throwaway allocation just for its Eq. 5 latency targets — the
    # autoscaled run recomputes its own, but the targets table on the
    # dashboard shows what the SLA decomposed into.
    try:
        allocation = scheme.scale(specs, profiles)
    except InfeasibleSLAError as error:
        raise SystemExit(f"infeasible setting: {error}")
    rules = load_rules(args.rules) if args.rules else None
    store = TimeSeriesStore(
        TimeSeriesConfig(scrape_interval_min=args.scrape_interval),
        rules=rules,
    )
    sink = TelemetrySink(
        config=TelemetryConfig(window_min=args.window, max_traces=0),
        timeseries=store,
    )
    chaos = _chaos_from_args(args, app, args.duration)
    simulation = AutoscaledSimulation(
        specs,
        app.simulated,
        scheme,
        profiles,
        rates={spec.name: args.workload for spec in specs},
        config=SimulationConfig(
            duration_min=args.duration,
            warmup_min=min(0.5, args.duration / 3),
            seed=args.seed,
        ),
        autoscale=AutoscaleConfig(interval_min=args.interval),
        telemetry=sink,
        chaos=chaos,
        resilience=_resilience_from_args(args),
    )
    outcome = simulation.run()
    data = dashboard_data(
        sink,
        outcome.simulation,
        specs=specs,
        meta={
            "app": args.app,
            "scheme": args.scheme,
            "workload": args.workload,
            "sla": args.sla,
            "seed": args.seed,
            "duration_min": args.duration,
        },
        targets=allocation.targets,
        chaos=chaos,
    )
    write_dashboard(data, args.output)
    summary = data["summary"]
    print(
        f"wrote dashboard: {args.output} "
        f"({len(data['services'])} services, "
        f"{summary.get('tsdb_series', 0)} series, "
        f"{summary.get('tsdb_samples', 0)} samples, "
        f"{summary['sla_alerts']} SLA alerts, "
        f"{summary['rule_alerts']} rule alerts)"
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import render_analysis_sections
    from repro.simulator.autoscaled import AutoscaleConfig, AutoscaledSimulation
    from repro.simulator.simulation import SimulationConfig
    from repro.telemetry import (
        TelemetryConfig,
        TelemetrySink,
        build_run_report,
        write_run_report,
    )
    from repro.telemetry.analysis import AnalysisOptions, analyze_run

    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    profiles = app.analytic_profiles(args.interference)
    specs = app.with_workloads(
        {s.name: args.workload for s in app.services}, sla=args.sla
    )
    from repro.core.model import InfeasibleSLAError

    # The allocation the run starts from also carries the Eq. 5 latency
    # targets and the Eqs. 13-14 priorities — the ground truth blame
    # attribution compares against.
    try:
        allocation = scheme.scale(specs, profiles)
    except InfeasibleSLAError as error:
        raise SystemExit(f"infeasible setting: {error}")
    sink = TelemetrySink(
        config=TelemetryConfig(
            window_min=args.window,
            sampling_rate=args.sampling_rate,
            tail_threshold_ms=args.tail_threshold,
            max_traces=args.max_traces,
        )
    )
    simulation = AutoscaledSimulation(
        specs,
        app.simulated,
        scheme,
        profiles,
        rates={spec.name: args.workload for spec in specs},
        config=SimulationConfig(
            duration_min=args.duration,
            warmup_min=min(0.5, args.duration / 3),
            seed=args.seed,
        ),
        autoscale=AutoscaleConfig(interval_min=args.interval),
        telemetry=sink,
    )
    outcome = simulation.run()
    analysis = analyze_run(
        sink=sink,
        targets=allocation.targets,
        priorities=allocation.priorities or None,
        profiles={name: prof.model for name, prof in profiles.items()},
        options=AnalysisOptions(
            window_min=args.window, top_paths=args.top_paths
        ),
    )
    sections = render_analysis_sections(analysis.to_dict())
    print(
        "\n\n".join(sections)
        if sections
        else "(no traces collected — nothing to analyze)"
    )
    slowest = analysis.slowest
    if slowest:
        print(f"\nSlowest trace ({slowest[0].trace_id}):")
        rows = [segment.to_dict() for segment in slowest[0].segments]
        print(format_table(rows, f"e2e={slowest[0].end_to_end_ms:.3f} ms"))
    if args.output:
        report = build_run_report(
            sink, outcome.simulation, specs, analysis=analysis
        )
        write_run_report(report, args.output)
        print(f"\nwrote report: {args.output}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments import run_chaos_comparison, run_resilience_sweep

    if args.controlled:
        sweep = run_resilience_sweep(
            duration_min=args.duration, seed=args.seed, workers=args.workers
        )
        rows = [
            {
                key: row[key]
                for key in (
                    "policy", "service", "generated", "failed", "shed",
                    "violations", "sla_miss_rate",
                )
            }
            for row in sweep.rows
        ]
        print(format_table(rows, "Controlled resilience sweep", "{:.4f}"))
        print(
            f"\ngold miss-rate reduction, full policies vs no-policy: "
            f"{sweep.improvement('gold'):+.4f}"
        )
        return 0

    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    args.chaos = True  # the subcommand always injects its schedule
    chaos = _chaos_from_args(args, app, args.duration)
    comparison = run_chaos_comparison(
        app,
        scheme,
        workload=args.workload,
        sla=args.sla,
        chaos=chaos,
        duration_min=args.duration,
        seed=args.seed,
    )
    for mode in ("no-policy", "resilient"):
        rows = [
            {
                key: row[key]
                for key in (
                    "service", "generated", "failed", "shed", "violations",
                    "sla_miss_rate",
                )
            }
            for row in comparison.rows[mode]
        ]
        print(format_table(rows, f"{mode} under the same fault schedule", "{:.4f}"))
        interesting = {k: v for k, v in comparison.stats[mode].items() if v}
        print(f"  stats: {interesting}\n")
    faults = comparison.decisions["resilient"]
    print(f"Fault / policy decisions (resilient run): {len(faults)}")
    for record in faults[: args.max_decisions]:
        print(
            f"  [{record['minute']:7.3f} min] {record['actor']:>15} "
            f"{record['microservice']}: {record['reason']}"
        )
    if len(faults) > args.max_decisions:
        print(f"  ... and {len(faults) - args.max_decisions} more")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Erms (ASPLOS'23) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--app", default="social-network",
                       help="benchmark application (default: social-network)")
        p.add_argument("--scheme", default="erms",
                       help="erms | erms-fcfs | grandslam | rhythm | firm")
        p.add_argument("--workload", type=float, default=20_000.0,
                       help="requests/minute per service")
        p.add_argument("--sla", type=float, default=200.0, help="SLA in ms")
        p.add_argument("--interference", type=float, default=1.0,
                       help="host colocation multiplier (>= 1)")

    def add_sampling(p):
        p.add_argument("--sampling-rate", type=float, default=1.0,
                       dest="sampling_rate",
                       help="trace head-sampling rate in (0, 1]")
        p.add_argument("--tail-threshold", type=float, default=None,
                       dest="tail_threshold",
                       help="tail-based sampling: keep full traces only "
                            "for requests slower than this many ms "
                            "(plus a small uniform floor)")

    def add_chaos(p, with_toggle=True):
        if with_toggle:
            p.add_argument("--chaos", action="store_true",
                           help="inject a seeded random fault schedule")
            p.add_argument("--resilience", action="store_true",
                           help="attach the default retry/timeout/breaker/"
                                "admission policy bundle")
        p.add_argument("--chaos-seed", type=int, default=0, dest="chaos_seed",
                       help="fault-schedule seed (independent of --seed)")
        p.add_argument("--chaos-crashes", type=int, default=1,
                       dest="chaos_crashes",
                       help="container crashes to schedule")
        p.add_argument("--chaos-error-rate", type=float, default=0.05,
                       dest="chaos_error_rate",
                       help="per-RPC error probability inside error windows")
        p.add_argument("--chaos-spike", type=float, default=3.0,
                       dest="chaos_spike",
                       help="latency multiplier inside spike windows")
        p.add_argument("--chaos-restart-ms", type=float, default=5_000.0,
                       dest="chaos_restart_ms",
                       help="crashed containers restart after this long")

    p_scale = sub.add_parser("scale", help="compute an allocation")
    add_common(p_scale)
    p_scale.set_defaults(func=cmd_scale)

    p_sim = sub.add_parser("simulate", help="allocate, then replay on the simulator")
    add_common(p_sim)
    p_sim.add_argument("--duration", type=float, default=1.5,
                       help="simulated minutes")
    p_sim.add_argument("--seed", type=int, default=0)
    add_sampling(p_sim)
    add_chaos(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_cmp = sub.add_parser("compare", help="static sweep across all schemes")
    p_cmp.add_argument("--app", default="social-network")
    p_cmp.add_argument("--workloads", type=float, nargs="+",
                       default=[5_000.0, 20_000.0, 60_000.0])
    p_cmp.add_argument("--slas", type=float, nargs="+", default=[150.0, 250.0])
    p_cmp.add_argument("--interference", type=float, default=1.0)
    p_cmp.add_argument("--simulate", action="store_true",
                       help="also replay each allocation on the simulator")
    p_cmp.add_argument("--duration", type=float, default=1.5,
                       help="simulated minutes per replay (with --simulate)")
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--workers", type=int, default=1,
                       help="processes for the replays (0 = one per CPU)")
    add_sampling(p_cmp)
    add_chaos(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_chaos = sub.add_parser(
        "chaos",
        help="replay one fault schedule with policies off vs on and "
             "compare SLA miss rates",
    )
    add_common(p_chaos)
    p_chaos.add_argument("--duration", type=float, default=2.0,
                         help="simulated minutes")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--controlled", action="store_true",
                         help="run the controlled two-tenant resilience "
                              "sweep instead of an application comparison")
    p_chaos.add_argument("--workers", type=int, default=1,
                         help="processes for the controlled sweep's cells")
    p_chaos.add_argument("--max-decisions", type=int, default=20,
                         dest="max_decisions",
                         help="fault/policy decision records to print")
    add_chaos(p_chaos, with_toggle=False)
    p_chaos.set_defaults(func=cmd_chaos)

    p_trace = sub.add_parser("trace-sim", help="Taobao-scale synthetic evaluation")
    p_trace.add_argument("--services", type=int, default=60)
    p_trace.add_argument("--seed", type=int, default=42)
    p_trace.add_argument("--workers", type=int, default=1,
                         help="processes for the feasibility pre-filter "
                              "(0 = one per CPU)")
    p_trace.set_defaults(func=cmd_trace_sim)

    p_rep = sub.add_parser(
        "report",
        help="autoscaled run with live telemetry: SLA windows, alerts, "
             "scaling decisions",
    )
    add_common(p_rep)
    p_rep.add_argument("--duration", type=float, default=3.0,
                       help="simulated minutes")
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.add_argument("--interval", type=float, default=1.0,
                       help="autoscaler reconcile interval (minutes)")
    p_rep.add_argument("--window", type=float, default=1.0,
                       help="SLA observation window (minutes)")
    p_rep.add_argument("--sampling", "--sampling-rate", type=float,
                       default=1.0, dest="sampling",
                       help="trace head-sampling rate in (0, 1]")
    p_rep.add_argument("--tail-threshold", type=float, default=None,
                       dest="tail_threshold",
                       help="tail-based sampling threshold in ms")
    p_rep.add_argument("--max-traces", type=int, default=1000,
                       help="retain at most this many traces in memory")
    p_rep.add_argument("--format", choices=["tables", "prom"],
                       default="tables",
                       help="tables (default) or Prometheus text "
                            "exposition of the metrics registry")
    p_rep.add_argument("--output", default=None,
                       help="write the JSON run report to this path")
    p_rep.add_argument("--chrome-trace", default=None,
                       help="write a chrome://tracing JSON to this path")
    p_rep.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                       help="skip the run: compare two saved JSON run "
                            "reports (A = baseline, B = candidate) and "
                            "print a regression verdict table; exits 1 "
                            "on any regression")
    p_rep.set_defaults(func=cmd_report)

    p_dash = sub.add_parser(
        "dashboard",
        help="instrumented run -> self-contained HTML dashboard "
             "(latency percentiles, SLA miss rate, breakers, container "
             "timelines)",
    )
    add_common(p_dash)
    p_dash.add_argument("--duration", type=float, default=3.0,
                        help="simulated minutes")
    p_dash.add_argument("--seed", type=int, default=0)
    p_dash.add_argument("--interval", type=float, default=1.0,
                        help="autoscaler reconcile interval (minutes)")
    p_dash.add_argument("--window", type=float, default=1.0,
                        help="SLA observation window (minutes)")
    p_dash.add_argument("--scrape-interval", type=float, default=0.25,
                        dest="scrape_interval",
                        help="TSDB scrape cadence in simulated minutes")
    p_dash.add_argument("--rules", default=None,
                        help="JSON file of recording/alert rules to "
                             "evaluate at every scrape")
    p_dash.add_argument("--output", default="dashboard.html",
                        help="HTML output path (default: dashboard.html)")
    add_chaos(p_dash)
    p_dash.set_defaults(func=cmd_dashboard)

    p_an = sub.add_parser(
        "analyze",
        help="trace analytics: critical paths, SLA blame, priority "
             "inversions, profile drift",
    )
    add_common(p_an)
    p_an.add_argument("--duration", type=float, default=3.0,
                      help="simulated minutes")
    p_an.add_argument("--seed", type=int, default=0)
    p_an.add_argument("--interval", type=float, default=1.0,
                      help="autoscaler reconcile interval (minutes)")
    p_an.add_argument("--window", type=float, default=1.0,
                      help="blame/SLA observation window (minutes)")
    p_an.add_argument("--max-traces", type=int, default=5000,
                      help="retain at most this many traces in memory")
    p_an.add_argument("--top-paths", type=int, default=5,
                      help="slowest traces to break down in full")
    add_sampling(p_an)
    p_an.add_argument("--output", default=None,
                      help="write the JSON run report (with analysis) here")
    p_an.set_defaults(func=cmd_analyze)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
