"""Command-line interface: ``python -m repro <command>``.

Mirrors the paper artifact's shell scripts (Appendix B) as subcommands:

* ``scale`` — run a scheme on a benchmark application at a given workload
  and SLA, print targets/priorities/containers (the artifact's
  ``latency-target-computation.sh`` + ``priority-scheduling.sh``).
* ``simulate`` — additionally replay the allocation on the cluster
  simulator and report tail latency and violations (``static-workload.sh``).
* ``compare`` — the static (workload × SLA) sweep across all schemes
  (``theoretical-resource.sh``).
* ``trace-sim`` — the Taobao-scale synthetic evaluation (§6.5).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines import Firm, GrandSLAm, Rhythm
from repro.core import ErmsScaler
from repro.experiments import (
    evaluate_allocation,
    format_table,
    run_static_sweep,
    run_trace_simulation,
)
from repro.workloads import (
    generate_taobao,
    hotel_reservation,
    media_service,
    social_network,
)

APPLICATIONS = {
    "social-network": social_network,
    "media-service": media_service,
    "hotel-reservation": hotel_reservation,
}


def _make_scheme(name: str):
    schemes = {
        "erms": ErmsScaler,
        "erms-fcfs": lambda: ErmsScaler(use_priority=False),
        "grandslam": GrandSLAm,
        "rhythm": Rhythm,
        "firm": Firm,
    }
    if name not in schemes:
        raise SystemExit(
            f"unknown scheme {name!r}; choose from {sorted(schemes)}"
        )
    return schemes[name]()


def _app(name: str):
    if name not in APPLICATIONS:
        raise SystemExit(
            f"unknown application {name!r}; choose from {sorted(APPLICATIONS)}"
        )
    return APPLICATIONS[name]()


def cmd_scale(args: argparse.Namespace) -> int:
    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    profiles = app.analytic_profiles(args.interference)
    specs = app.with_workloads(
        {s.name: args.workload for s in app.services}, sla=args.sla
    )
    allocation = scheme.scale(specs, profiles)

    rows = [
        {"microservice": name, "containers": count}
        for name, count in sorted(allocation.containers.items())
    ]
    print(format_table(rows, f"{scheme.name} allocation ({app.name})"))
    print(f"\nTotal containers: {allocation.total_containers()}")
    if allocation.priorities:
        print("\nPriorities (rank 0 first):")
        for ms_name, ranks in allocation.priorities.items():
            print(f"  {ms_name}: {ranks}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    app = _app(args.app)
    scheme = _make_scheme(args.scheme)
    profiles = app.analytic_profiles(args.interference)
    specs = app.with_workloads(
        {s.name: args.workload for s in app.services}, sla=args.sla
    )
    allocation = scheme.scale(specs, profiles)
    multipliers = None
    if args.interference != 1.0:
        multipliers = {
            name: [args.interference] * count
            for name, count in allocation.containers.items()
        }
    result = evaluate_allocation(
        specs,
        app.simulated,
        allocation,
        duration_min=args.duration,
        warmup_min=min(0.5, args.duration / 3),
        seed=args.seed,
        container_multipliers=multipliers,
    )
    rows = []
    for spec in specs:
        if result.completed.get(spec.name, 0) == 0:
            continue
        rows.append(
            {
                "service": spec.name,
                "completed": result.completed[spec.name],
                "p95_ms": result.tail_latency(spec.name),
                "violation": result.sla_violation_rate(spec.name, spec.sla),
            }
        )
    print(
        format_table(
            rows,
            f"{scheme.name} on {app.name}: "
            f"{allocation.total_containers()} containers",
            "{:.3f}",
        )
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    app = _app(args.app)
    schemes = [ErmsScaler(), ErmsScaler(use_priority=False), GrandSLAm(), Rhythm(), Firm()]
    sweep = run_static_sweep(
        app,
        schemes,
        workloads=args.workloads,
        slas=args.slas,
        interference_multiplier=args.interference,
    )
    rows = [
        {"scheme": scheme, "avg_containers": sweep.average_containers(scheme)}
        for scheme in sweep.schemes()
    ]
    print(format_table(rows, f"Static sweep on {app.name}"))
    return 0


def cmd_trace_sim(args: argparse.Namespace) -> int:
    workload = generate_taobao(n_services=args.services, seed=args.seed)
    schemes = [ErmsScaler(), ErmsScaler(use_priority=False), GrandSLAm(), Rhythm()]
    result = run_trace_simulation(workload, schemes)
    rows = [
        {
            "scheme": scheme,
            "total_containers": result.totals[scheme],
            "avg_per_service": result.average_per_service(scheme),
        }
        for scheme in result.totals
    ]
    print(format_table(rows, f"Taobao-scale simulation ({args.services} services)"))
    print(
        f"\nErms vs GrandSLAm: "
        f"{result.reduction_factor('erms', 'grandslam'):.2f}x fewer containers"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Erms (ASPLOS'23) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--app", default="social-network",
                       help="benchmark application (default: social-network)")
        p.add_argument("--scheme", default="erms",
                       help="erms | erms-fcfs | grandslam | rhythm | firm")
        p.add_argument("--workload", type=float, default=20_000.0,
                       help="requests/minute per service")
        p.add_argument("--sla", type=float, default=200.0, help="SLA in ms")
        p.add_argument("--interference", type=float, default=1.0,
                       help="host colocation multiplier (>= 1)")

    p_scale = sub.add_parser("scale", help="compute an allocation")
    add_common(p_scale)
    p_scale.set_defaults(func=cmd_scale)

    p_sim = sub.add_parser("simulate", help="allocate, then replay on the simulator")
    add_common(p_sim)
    p_sim.add_argument("--duration", type=float, default=1.5,
                       help="simulated minutes")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=cmd_simulate)

    p_cmp = sub.add_parser("compare", help="static sweep across all schemes")
    p_cmp.add_argument("--app", default="social-network")
    p_cmp.add_argument("--workloads", type=float, nargs="+",
                       default=[5_000.0, 20_000.0, 60_000.0])
    p_cmp.add_argument("--slas", type=float, nargs="+", default=[150.0, 250.0])
    p_cmp.add_argument("--interference", type=float, default=1.0)
    p_cmp.set_defaults(func=cmd_compare)

    p_trace = sub.add_parser("trace-sim", help="Taobao-scale synthetic evaluation")
    p_trace.add_argument("--services", type=int, default=60)
    p_trace.add_argument("--seed", type=int, default=42)
    p_trace.set_defaults(func=cmd_trace_sim)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
