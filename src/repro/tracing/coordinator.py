"""The Tracing Coordinator (paper §3 ①, §5.1).

Consumes recorded traces and produces the two artifacts Erms' other modules
need:

* **dependency graphs** — starting from the root span, an edge is added for
  every call; calls whose client spans overlap in time are marked parallel
  (same stage), otherwise sequential.  Graphs from many traces of the same
  service are merged into a *complete* graph (§7, "Handling dynamic
  dependencies").
* **microservice latency** — paper Eq. 1: a microservice's own latency is
  its server-span response time minus the response time of its downstream
  calls, subtracting the full duration of each sequential stage but only
  the maximum within a parallel stage.

A 10 % sampling rate (Jaeger's default in the paper) is applied on ingest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graphs import CallNode, DependencyGraph
from repro.tracing.spans import Span, SpanKind, TraceRecord


def group_parallel(client_spans: Sequence[Span]) -> List[List[Span]]:
    """Partition a microservice's outgoing calls into stages.

    Client spans are sorted by start time; a span joins the current stage
    if it overlaps the stage's running time window (the paper marks calls
    whose client spans overlap existing calls as parallel), otherwise it
    opens a new sequential stage.
    """
    stages: List[List[Span]] = []
    window_end = float("-inf")
    for span in sorted(client_spans, key=lambda s: (s.start, s.span_id)):
        if stages and span.start < window_end:
            stages[-1].append(span)
        else:
            stages.append([span])
        window_end = max(window_end, span.end)
    return stages


def _server_duration(trace: TraceRecord, client_span: Span) -> float:
    """Server-side response time (S_d − R_d) of a client span's call.

    Eq. 1 subtracts the *server* span duration, so the caller's own
    latency keeps the transmission time — the paper notes L_i includes
    it.  Falls back to the client duration when the server span was
    lost (e.g. sampling).
    """
    servers = [
        s for s in trace.children_of(client_span) if s.kind is SpanKind.SERVER
    ]
    if not servers:
        return client_span.duration
    return max(s.duration for s in servers)


def trace_own_latencies(trace: TraceRecord) -> Dict[str, List[float]]:
    """Own latency of every microservice occurrence in one trace (Eq. 1).

    For each server span: response time minus the summed per-stage
    downstream response times (max within each parallel stage).  The
    residual includes queueing, processing, and transmission, exactly
    the quantity Erms profiles.  Shared by the
    :class:`TracingCoordinator` and the trace analytics engine
    (:mod:`repro.telemetry.analysis`).
    """
    latencies: Dict[str, List[float]] = {}
    for span in trace.server_spans():
        client_children = [
            s for s in trace.children_of(span) if s.kind is SpanKind.CLIENT
        ]
        downstream = sum(
            max(_server_duration(trace, s) for s in stage)
            for stage in group_parallel(client_children)
        )
        own = span.duration - downstream
        latencies.setdefault(span.microservice, []).append(max(own, 0.0))
    return latencies


@dataclass
class TracingCoordinator:
    """Collects traces and extracts graphs and latencies.

    Attributes:
        sampling_rate: Fraction of offered traces that are kept (Jaeger
            samples 10 % in the paper).  ``1.0`` keeps everything — tests
            and deterministic pipelines use that.
        seed: Seed for the sampling decision stream.
    """

    sampling_rate: float = 1.0
    seed: int = 0
    traces: Dict[str, List[TraceRecord]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.sampling_rate <= 1.0:
            raise ValueError(
                f"sampling_rate must be in (0, 1], got {self.sampling_rate}"
            )
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def offer(self, trace: TraceRecord) -> bool:
        """Offer a trace for collection; returns True when sampled in."""
        if self.sampling_rate < 1.0 and self._rng.random() >= self.sampling_rate:
            return False
        self.traces.setdefault(trace.service, []).append(trace)
        return True

    def trace_count(self, service: Optional[str] = None) -> int:
        if service is not None:
            return len(self.traces.get(service, []))
        return sum(len(ts) for ts in self.traces.values())

    # ------------------------------------------------------------------
    # Graph extraction
    # ------------------------------------------------------------------
    def extract_graph(self, service: str) -> DependencyGraph:
        """Reconstruct the (merged) dependency graph of one service."""
        records = self.traces.get(service)
        if not records:
            raise ValueError(f"no traces recorded for service {service!r}")
        merged: Optional[CallNode] = None
        for record in records:
            root = self._build_call_tree(record, record.root())
            if merged is None:
                merged = root
            else:
                _merge_call_trees(merged, root)
        assert merged is not None
        return DependencyGraph(service=service, root=merged)

    def _build_call_tree(self, record: TraceRecord, server_span: Span) -> CallNode:
        node = CallNode(server_span.microservice)
        client_children = [
            s
            for s in record.children_of(server_span)
            if s.kind is SpanKind.CLIENT
        ]
        for stage in group_parallel(client_children):
            stage_nodes: List[CallNode] = []
            for client_span in stage:
                server_children = [
                    s
                    for s in record.children_of(client_span)
                    if s.kind is SpanKind.SERVER
                ]
                for child_server in server_children:
                    stage_nodes.append(self._build_call_tree(record, child_server))
            if stage_nodes:
                node.stages.append(stage_nodes)
        return node

    # ------------------------------------------------------------------
    # Latency extraction (paper Eq. 1)
    # ------------------------------------------------------------------
    def microservice_latencies(self, trace: TraceRecord) -> Dict[str, List[float]]:
        """Own latency of every microservice occurrence in one trace.

        Delegates to the module-level :func:`trace_own_latencies` (shared
        with the trace analytics engine).
        """
        return trace_own_latencies(trace)

    def latency_samples(self, service: str) -> Dict[str, List[float]]:
        """Pooled own-latency samples per microservice across all traces."""
        pooled: Dict[str, List[float]] = {}
        for record in self.traces.get(service, []):
            for name, values in self.microservice_latencies(record).items():
                pooled.setdefault(name, []).extend(values)
        return pooled

    def tail_latency(
        self, service: str, microservice: str, percentile: float = 95.0
    ) -> float:
        """Tail (default P95) own latency of one microservice."""
        samples = self.latency_samples(service).get(microservice)
        if not samples:
            raise ValueError(
                f"no latency samples for {microservice!r} in service {service!r}"
            )
        return float(np.percentile(samples, percentile))

    def end_to_end_latencies(self, service: str) -> List[float]:
        """End-to-end latency of every collected trace of a service."""
        return [t.end_to_end_latency() for t in self.traces.get(service, [])]


def _merge_call_trees(target: CallNode, other: CallNode) -> None:
    """Union ``other``'s call structure into ``target`` (paper §7).

    Children are matched by microservice name within corresponding stages;
    unmatched children of ``other`` are appended — to an existing stage when
    the stage index exists, as a new stage otherwise.  The merged graph
    over-approximates each individual trace, which is the paper's stated
    over-provisioning behaviour for dynamic graphs.
    """
    for index, stage in enumerate(other.stages):
        if index >= len(target.stages):
            target.stages.append([])
        target_stage = target.stages[index]
        by_name = {child.microservice: child for child in target_stage}
        for child in stage:
            existing = by_name.get(child.microservice)
            if existing is None:
                target_stage.append(child)
                by_name[child.microservice] = child
            else:
                _merge_call_trees(existing, child)
