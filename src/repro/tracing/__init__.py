"""Tracing substrate: span model, coordinator, and metrics store.

Stands in for the paper's Jaeger + Prometheus deployment (§5.1).  Jaeger
records two spans per call — a client span on the caller and a server span
on the callee; Prometheus records OS-level utilization.  The *Tracing
Coordinator* combines both: it reconstructs dependency graphs from span
parent/child relations (marking calls whose client spans overlap as
parallel), derives per-microservice latency via paper Eq. 1, and assembles
per-minute profiling samples.
"""

from repro.tracing.spans import (
    Span,
    SpanKind,
    SpanTiming,
    TraceRecord,
    synthesize_trace,
)
from repro.tracing.coordinator import TracingCoordinator
from repro.tracing.metrics import MetricsStore, UtilizationSample
from repro.tracing.serialization import (
    dump_traces,
    load_traces,
    trace_from_dict,
    trace_to_dict,
)

__all__ = [
    "Span",
    "SpanKind",
    "SpanTiming",
    "TraceRecord",
    "synthesize_trace",
    "TracingCoordinator",
    "MetricsStore",
    "UtilizationSample",
    "dump_traces",
    "load_traces",
    "trace_from_dict",
    "trace_to_dict",
]
