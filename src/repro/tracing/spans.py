"""Span data model and trace synthesis.

Following Jaeger's model as described in paper §5.1, every call between a
pair of microservices produces two spans:

* a CLIENT span on the caller — from the client sending the request (SEND)
  to the client receiving the response (RECEIVE);
* a SERVER span on the callee — from the server receiving the request to it
  sending the response back.

The root of a trace is a SERVER span with no parent (the entering
microservice receiving the user request).  A CLIENT span's parent is the
caller's SERVER span; a SERVER span's parent is the corresponding CLIENT
span.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional

from repro.graphs import CallNode, DependencyGraph


class SpanKind(Enum):
    """Which side of a call this span was recorded on."""

    CLIENT = "client"
    SERVER = "server"


@dataclass(frozen=True)
class Span:
    """One recorded span.

    Attributes:
        span_id: Unique id within the trace.
        parent_id: Parent span id, or None for the trace root.
        microservice: The microservice this span was recorded on.
        kind: CLIENT or SERVER.
        start: RECEIVE (server) or SEND (client) timestamp, milliseconds.
        end: SEND (server) or RECEIVE (client) timestamp, milliseconds.
    """

    span_id: str
    parent_id: Optional[str]
    microservice: str
    kind: SpanKind
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"span {self.span_id}: end {self.end} before start {self.start}"
            )

    @property
    def duration(self) -> float:
        """Response time covered by this span (ms)."""
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        """True when the two spans' time intervals intersect."""
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class SpanTiming:
    """Exact engine-side decomposition of one server span's own latency.

    Real tracing backends only see span boundaries; the DES additionally
    knows when the job acquired a worker thread and how long it held it,
    so a live-instrumented trace can split own latency exactly:

    ``own = queue_ms + service_ms`` and ``service_ms`` further splits into
    an interference-free base plus the inflation the host multiplier added
    (``inflation_ms = service_ms * (1 - 1/multiplier)``).  Post-hoc traces
    (synthesized or imported) carry no timings and analyzers fall back to
    the Eq. 1 own-latency residual alone.
    """

    queue_ms: float
    service_ms: float
    inflation_ms: float = 0.0

    @property
    def own_ms(self) -> float:
        return self.queue_ms + self.service_ms

    @property
    def base_service_ms(self) -> float:
        return self.service_ms - self.inflation_ms

    def to_dict(self) -> Dict[str, float]:
        return {
            "queue_ms": round(self.queue_ms, 6),
            "service_ms": round(self.service_ms, 6),
            "inflation_ms": round(self.inflation_ms, 6),
        }


@dataclass
class TraceRecord:
    """All spans of one end-to-end request.

    ``timings`` optionally maps server span ids to the engine's exact
    :class:`SpanTiming` decomposition (live-instrumented runs only).
    """

    trace_id: str
    service: str
    spans: List[Span] = field(default_factory=list)
    timings: Optional[Dict[str, SpanTiming]] = None

    def root(self) -> Span:
        """The entering microservice's SERVER span."""
        roots = [s for s in self.spans if s.parent_id is None]
        if len(roots) != 1:
            raise ValueError(
                f"trace {self.trace_id}: expected exactly 1 root span, "
                f"found {len(roots)}"
            )
        return roots[0]

    def children_of(self, span: Span) -> List[Span]:
        """Direct child spans, ordered by start time."""
        children = [s for s in self.spans if s.parent_id == span.span_id]
        return sorted(children, key=lambda s: (s.start, s.span_id))

    def end_to_end_latency(self) -> float:
        """Duration of the root server span."""
        return self.root().duration

    def server_spans(self) -> List[Span]:
        return [s for s in self.spans if s.kind is SpanKind.SERVER]


def synthesize_trace(
    graph: DependencyGraph,
    latencies: Mapping[str, float],
    trace_id: str = "trace-0",
    start: float = 0.0,
    network_delay: float = 0.0,
) -> TraceRecord:
    """Generate the spans a tracing system would record for one request.

    Each microservice's *own* latency (queueing + processing, paper Fig. 1)
    is split around its downstream stages: half before issuing calls, half
    after the last stage returns.  Calls within a stage start simultaneously
    (their client spans overlap); stages are strictly sequential.

    Args:
        graph: The service's dependency graph.
        latencies: Own latency per microservice name (ms).
        trace_id: Identifier for the produced trace.
        start: Timestamp of the user request arriving at the root (ms).
        network_delay: One-way transmission delay added around each call.

    Returns:
        A :class:`TraceRecord` whose structure round-trips through
        :class:`~repro.tracing.coordinator.TracingCoordinator`.
    """
    spans: List[Span] = []
    counter = itertools.count()

    def _next_id() -> str:
        return f"{trace_id}-s{next(counter)}"

    def _emit(node: CallNode, arrival: float, parent_id: Optional[str]) -> Span:
        own = latencies[node.microservice]
        pre = own / 2.0
        post = own - pre
        server_id = _next_id()
        cursor = arrival + pre
        for stage in node.stages:
            stage_end = cursor
            for child in stage:
                client_id = _next_id()
                child_server = _emit(
                    child, cursor + network_delay, client_id
                )
                client_end = child_server.end + network_delay
                spans.append(
                    Span(
                        span_id=client_id,
                        parent_id=server_id,
                        microservice=node.microservice,
                        kind=SpanKind.CLIENT,
                        start=cursor,
                        end=client_end,
                    )
                )
                stage_end = max(stage_end, client_end)
            cursor = stage_end
        server_span = Span(
            span_id=server_id,
            parent_id=parent_id,
            microservice=node.microservice,
            kind=SpanKind.SERVER,
            start=arrival,
            end=cursor + post,
        )
        spans.append(server_span)
        return server_span

    _emit(graph.root, start, None)
    return TraceRecord(trace_id=trace_id, service=graph.service, spans=spans)
