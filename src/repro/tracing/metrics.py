"""Prometheus-like metrics store (paper §5.1, §5.2).

Prometheus supplies the OS-level half of Erms' telemetry: CPU and memory
utilization per host, and call counts per deployed container.  Erms'
offline profiler joins these with Jaeger latencies at one-minute windows to
form samples :math:`d_i^j = (L_i^j, \\gamma_i^j, C_i^j, M_i^j)` (Eq. 15's
training data).  This module provides that windowed join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class UtilizationSample:
    """One host utilization observation."""

    timestamp: float  # minutes since epoch
    host_id: str
    cpu: float  # fraction in [0, 1+]
    memory: float  # fraction in [0, 1+]


@dataclass(frozen=True)
class CallCountSample:
    """Calls processed by one microservice's containers in one window."""

    timestamp: float
    microservice: str
    calls: float
    containers: int


@dataclass(frozen=True)
class LatencyObservation:
    """One own-latency observation of a microservice."""

    timestamp: float
    microservice: str
    latency: float


@dataclass(frozen=True)
class ProfilingWindow:
    """One per-minute joined sample: the paper's d_i^j.

    Attributes:
        microservice: Microservice name.
        minute: Window index (floor of the timestamp).
        tail_latency: P95 of latency observations in the window (ms).
        per_container_load: Calls per container in the window.
        cpu_utilization: Mean host CPU utilization in the window.
        memory_utilization: Mean host memory utilization in the window.
    """

    microservice: str
    minute: int
    tail_latency: float
    per_container_load: float
    cpu_utilization: float
    memory_utilization: float


@dataclass
class MetricsStore:
    """Collects utilization, call-count, and latency time series."""

    utilization: List[UtilizationSample] = field(default_factory=list)
    call_counts: List[CallCountSample] = field(default_factory=list)
    latencies: List[LatencyObservation] = field(default_factory=list)

    def record_utilization(
        self, timestamp: float, host_id: str, cpu: float, memory: float
    ) -> None:
        self.utilization.append(UtilizationSample(timestamp, host_id, cpu, memory))

    def record_calls(
        self, timestamp: float, microservice: str, calls: float, containers: int
    ) -> None:
        if containers < 1:
            raise ValueError(f"containers must be >= 1, got {containers}")
        self.call_counts.append(
            CallCountSample(timestamp, microservice, calls, containers)
        )

    def record_latency(
        self, timestamp: float, microservice: str, latency: float
    ) -> None:
        self.latencies.append(LatencyObservation(timestamp, microservice, latency))

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def mean_utilization(
        self, window: Optional[Tuple[float, float]] = None
    ) -> Tuple[float, float]:
        """Cluster-average (cpu, memory) utilization, optionally windowed."""
        samples = self.utilization
        if window is not None:
            lo, hi = window
            samples = [s for s in samples if lo <= s.timestamp < hi]
        if not samples:
            return 0.0, 0.0
        cpu = float(np.mean([s.cpu for s in samples]))
        mem = float(np.mean([s.memory for s in samples]))
        return cpu, mem

    def profiling_windows(
        self, microservice: str, percentile: float = 95.0
    ) -> List[ProfilingWindow]:
        """Join the three series into per-minute profiling samples.

        Windows lacking either latency observations or call counts are
        skipped — the profiler needs both coordinates.
        """
        latency_by_minute: Dict[int, List[float]] = {}
        for obs in self.latencies:
            if obs.microservice == microservice:
                latency_by_minute.setdefault(int(obs.timestamp), []).append(
                    obs.latency
                )
        calls_by_minute: Dict[int, Tuple[float, int]] = {}
        for sample in self.call_counts:
            if sample.microservice == microservice:
                minute = int(sample.timestamp)
                calls, containers = calls_by_minute.get(minute, (0.0, 1))
                calls_by_minute[minute] = (
                    calls + sample.calls,
                    max(containers, sample.containers),
                )
        util_by_minute: Dict[int, List[Tuple[float, float]]] = {}
        for sample in self.utilization:
            util_by_minute.setdefault(int(sample.timestamp), []).append(
                (sample.cpu, sample.memory)
            )

        windows: List[ProfilingWindow] = []
        for minute in sorted(latency_by_minute):
            if minute not in calls_by_minute:
                continue
            calls, containers = calls_by_minute[minute]
            utils = util_by_minute.get(minute, [])
            cpu = float(np.mean([u[0] for u in utils])) if utils else 0.0
            mem = float(np.mean([u[1] for u in utils])) if utils else 0.0
            windows.append(
                ProfilingWindow(
                    microservice=microservice,
                    minute=minute,
                    tail_latency=float(
                        np.percentile(latency_by_minute[minute], percentile)
                    ),
                    per_container_load=calls / containers,
                    cpu_utilization=cpu,
                    memory_utilization=mem,
                )
            )
        return windows
