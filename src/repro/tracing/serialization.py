"""Span serialization: Jaeger-compatible-ish JSON export/import.

Lets traces collected by the simulator (or synthesized) be saved to disk
and replayed into a :class:`~repro.tracing.coordinator.TracingCoordinator`
later — the offline-profiling workflow of the paper's artifact, where a
day of traces is collected first and fitted afterwards.

The schema loosely follows Jaeger's JSON export: a trace carries a
``traceID``, a ``serviceName`` and a list of spans with ``spanID``,
``references`` (CHILD_OF), ``startTime`` and ``duration`` (microseconds,
as in Jaeger), plus a ``kind`` tag.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.tracing.spans import Span, SpanKind, TraceRecord

_US_PER_MS = 1000.0


def trace_to_dict(trace: TraceRecord) -> Dict:
    """One trace as a JSON-ready dict (timestamps in microseconds)."""
    spans: List[Dict] = []
    for span in trace.spans:
        references = []
        if span.parent_id is not None:
            references.append(
                {"refType": "CHILD_OF", "spanID": span.parent_id}
            )
        spans.append(
            {
                "spanID": span.span_id,
                "references": references,
                "processServiceName": span.microservice,
                "startTime": round(span.start * _US_PER_MS),
                "duration": round(span.duration * _US_PER_MS),
                "tags": [{"key": "span.kind", "value": span.kind.value}],
            }
        )
    return {
        "traceID": trace.trace_id,
        "serviceName": trace.service,
        "spans": spans,
    }


def trace_from_dict(payload: Dict) -> TraceRecord:
    """Rebuild a :class:`TraceRecord` from :func:`trace_to_dict` output."""
    spans = []
    for item in payload["spans"]:
        references = item.get("references", [])
        parent_id = references[0]["spanID"] if references else None
        kind = SpanKind.SERVER
        for tag in item.get("tags", []):
            if tag.get("key") == "span.kind":
                kind = SpanKind(tag["value"])
        start = item["startTime"] / _US_PER_MS
        spans.append(
            Span(
                span_id=item["spanID"],
                parent_id=parent_id,
                microservice=item["processServiceName"],
                kind=kind,
                start=start,
                end=start + item["duration"] / _US_PER_MS,
            )
        )
    return TraceRecord(
        trace_id=payload["traceID"],
        service=payload["serviceName"],
        spans=spans,
    )


def dump_traces(traces: Iterable[TraceRecord], path: str) -> int:
    """Write traces as JSON lines; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        for trace in traces:
            handle.write(json.dumps(trace_to_dict(trace)))
            handle.write("\n")
            count += 1
    return count


def load_traces(path: str) -> List[TraceRecord]:
    """Read JSON-lines traces written by :func:`dump_traces`."""
    traces = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                traces.append(trace_from_dict(json.loads(line)))
    return traces
