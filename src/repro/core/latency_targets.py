"""Optimal latency-target computation (paper §4.2, §5.3.1).

Given one service's dependency graph, the profiled piecewise latency models,
the current workload and the SLA, this module computes:

* a latency target per microservice — the maximum time it may take to handle
  a request so the end-to-end SLA holds with minimum total resource usage
  (the KKT closed form, paper Eq. 5, applied through the merge tree);
* the number of containers needed to hit each target.

Interval selection follows §5.3.1: the first pass assumes every microservice
operates in the high-load segment (cheapest in resources).  Any microservice
whose allocated target falls below its cut-off latency must actually operate
in the low-load segment; its parameters are swapped and targets are
recomputed once.  Each graph is therefore processed at most twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.merge import (
    distribute_targets,
    leaf_params_from_profiles,
    merge_graph,
)
from repro.core.model import (
    InfeasibleSLAError,
    LatencySegment,
    MicroserviceProfile,
    ServiceSpec,
    best_effort_containers,
)


@dataclass
class ServiceTargets:
    """Latency targets and container counts for one service.

    Attributes:
        service: Service name.
        targets: Final latency target (ms) per microservice; when a
            microservice appears at several call sites the minimum applies.
        containers: Containers required per microservice to meet its target
            under this service's (possibly priority-modified) workload.
        segments: The latency segment each microservice was scaled with.
        workloads: The workload (req/min) used for each microservice —
            the service's own demand unless an override was supplied.
        merged_intercept: Intercept of the fully merged graph; the SLA must
            exceed it for feasibility.
        passes: Number of Eq. 5 passes performed (1 or 2, per §5.3.1).
    """

    service: str
    targets: Dict[str, float] = field(default_factory=dict)
    containers: Dict[str, int] = field(default_factory=dict)
    segments: Dict[str, LatencySegment] = field(default_factory=dict)
    workloads: Dict[str, float] = field(default_factory=dict)
    merged_intercept: float = 0.0
    passes: int = 1


def compute_service_targets(
    spec: ServiceSpec,
    profiles: Mapping[str, MicroserviceProfile],
    workload_overrides: Optional[Mapping[str, float]] = None,
    max_passes: int = 8,
) -> ServiceTargets:
    """Allocate optimal latency targets for every microservice of a service.

    Args:
        spec: The service (graph + workload + SLA).
        profiles: Piecewise latency profiles keyed by microservice name.
        workload_overrides: Optional per-microservice workload replacing the
            service's own demand — used by priority scheduling, where a
            low-priority service sees the summed workload of all higher-
            priority services at a shared microservice (paper §5.3.2).

    Returns:
        A :class:`ServiceTargets` with targets, container counts, the
        segment used per microservice, and bookkeeping for diagnostics.

    Raises:
        InfeasibleSLAError: If the SLA is not larger than the merged graph's
            intercept (the latency floor no resource level can beat).
        KeyError: If a microservice in the graph has no profile.
    """
    graph = spec.graph
    own_workloads = spec.microservice_workloads()
    effective: Dict[str, float] = dict(own_workloads)
    if workload_overrides:
        for name, value in workload_overrides.items():
            if name in effective:
                effective[name] = value

    # Initial pass: high-load segment for everyone (§5.3.1).
    segments: Dict[str, LatencySegment] = {
        name: profiles[name].model.high for name in graph.microservices()
    }

    # The paper recomputes once after interval switching (two passes),
    # which suffices for continuous fits.  Discontinuous fits may need a
    # few more rounds; switching is one-way (high -> low), so the loop is
    # monotone and terminates within the number of microservices.
    result = ServiceTargets(service=spec.name)
    for pass_index in range(max(max_passes, 1)):
        targets = _allocate(spec, profiles, segments, effective, result)
        used_segments = dict(segments)
        result.passes = pass_index + 1
        if pass_index == max_passes - 1:
            break
        switched = False
        for name, target in targets.items():
            model = profiles[name].model
            if segments[name] is model.high and target < model.latency_at_cutoff():
                segments[name] = model.low
                switched = True
        if not switched:
            break

    result.targets = targets
    result.segments = used_segments
    result.workloads = dict(effective)
    # Convert targets to containers with the segment consistent with each
    # *final* target.  After a §5.3.1 interval switch the recomputed target
    # can land back above the cut-off latency; blindly using the switched
    # segment would then provision containers whose per-container load sits
    # far beyond the cut-off, i.e. outside that segment's validity.
    result.containers = {
        name: best_effort_containers(
            profiles[name].model, effective[name], target
        )
        for name, target in targets.items()
    }
    return result


def _allocate(
    spec: ServiceSpec,
    profiles: Mapping[str, MicroserviceProfile],
    segments: Mapping[str, LatencySegment],
    effective_workloads: Mapping[str, float],
    result: ServiceTargets,
) -> Dict[str, float]:
    """One merge + Eq. 5 + unmerge pass; returns per-microservice targets."""
    graph = spec.graph
    own_workloads = spec.microservice_workloads()

    # Fold any workload override into the effective slope so every call
    # site can be treated as handling the service arrival rate.
    scaled_segments: Dict[str, LatencySegment] = {}
    for name in graph.microservices():
        segment = segments[name]
        ratio = 1.0
        own = own_workloads[name]
        if own > 0 and effective_workloads[name] != own:
            ratio = effective_workloads[name] / own
        scaled_segments[name] = LatencySegment(
            slope=segment.slope * ratio, intercept=segment.intercept
        )

    leaf_params = leaf_params_from_profiles(graph, profiles, scaled_segments)
    merged = merge_graph(graph, leaf_params)
    result.merged_intercept = merged.params.intercept
    if spec.sla <= merged.params.intercept:
        raise InfeasibleSLAError(
            f"service {spec.name!r}: SLA {spec.sla:.3f}ms does not exceed the "
            f"graph latency floor {merged.params.intercept:.3f}ms"
        )

    call_targets = distribute_targets(merged, spec.sla)

    targets: Dict[str, float] = {}
    for node in graph.nodes():
        target = call_targets[id(node)]
        current = targets.get(node.microservice)
        if current is None or target < current:
            targets[node.microservice] = target
    return targets


def predicted_end_to_end(
    spec: ServiceSpec,
    profiles: Mapping[str, MicroserviceProfile],
    containers: Mapping[str, int],
    workload_overrides: Optional[Mapping[str, float]] = None,
) -> float:
    """Model-predicted end-to-end tail latency under a container allocation.

    Evaluates each microservice's piecewise model at its per-container load
    and folds the per-microservice latencies through the graph structure.
    Used by analytic experiments and by baselines for feasibility checks.
    """
    workloads = spec.microservice_workloads()
    if workload_overrides:
        workloads = dict(workloads)
        for name, value in workload_overrides.items():
            if name in workloads:
                workloads[name] = value
    latencies = {}
    for name, load in workloads.items():
        count = max(1, containers.get(name, 1))
        latencies[name] = profiles[name].model.latency(load / count)
    return spec.graph.end_to_end_latency(latencies)
