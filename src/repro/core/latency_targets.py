"""Optimal latency-target computation (paper §4.2, §5.3.1).

Given one service's dependency graph, the profiled piecewise latency models,
the current workload and the SLA, this module computes:

* a latency target per microservice — the maximum time it may take to handle
  a request so the end-to-end SLA holds with minimum total resource usage
  (the KKT closed form, paper Eq. 5, applied through the merge tree);
* the number of containers needed to hit each target.

Interval selection follows §5.3.1: the first pass assumes every microservice
operates in the high-load segment (cheapest in resources).  Any microservice
whose allocated target falls below its cut-off latency must actually operate
in the low-load segment; its parameters are swapped and targets are
recomputed once.  Each graph is therefore processed at most twice.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.merge import (
    distribute_targets,
    distribute_targets_batch,
    merge_tree_cache,
)
from repro.core.model import (
    InfeasibleSLAError,
    LatencySegment,
    MicroserviceProfile,
    PiecewiseLatencyModel,
    ServiceSpec,
    best_effort_containers,
    best_effort_containers_array,
)


@dataclass
class ServiceTargets:
    """Latency targets and container counts for one service.

    Attributes:
        service: Service name.
        targets: Final latency target (ms) per microservice; when a
            microservice appears at several call sites the minimum applies.
        containers: Containers required per microservice to meet its target
            under this service's (possibly priority-modified) workload.
        segments: The latency segment each microservice was scaled with.
        workloads: The workload (req/min) used for each microservice —
            the service's own demand unless an override was supplied.
        merged_intercept: Intercept of the fully merged graph; the SLA must
            exceed it for feasibility.
        passes: Number of Eq. 5 passes performed (1 or 2, per §5.3.1).
    """

    service: str
    targets: Dict[str, float] = field(default_factory=dict)
    containers: Dict[str, int] = field(default_factory=dict)
    segments: Dict[str, LatencySegment] = field(default_factory=dict)
    workloads: Dict[str, float] = field(default_factory=dict)
    merged_intercept: float = 0.0
    passes: int = 1


# ----------------------------------------------------------------------
# Cross-cell memo for the workload-independent part of the computation
# ----------------------------------------------------------------------
# Eq. 5 scales segment slopes only by the *override ratio*
# (effective / own workload), never by the service workload itself: in
# ``_allocate`` every call site is treated as handling the service
# arrival rate.  Targets, chosen segments, the merged intercept and the
# §5.3.1 pass count are therefore identical across grid cells that
# differ only in workload (same graph, SLA and override ratios) — only
# the container counts change.  The memo below caches exactly that
# workload-independent tuple; container counts are always recomputed
# from the cell's actual workloads, so memoized results are
# bit-identical to fresh ones.
_TARGETS_MEMO: "OrderedDict[tuple, tuple]" = OrderedDict()
_TARGETS_MEMO_MAX = 1024
_MEMO_ENABLED = True
_MEMO_HITS = 0
_MEMO_MISSES = 0


def set_targets_memo(enabled: bool) -> None:
    """Enable/disable the cross-cell targets memo (testing hook)."""
    global _MEMO_ENABLED
    _MEMO_ENABLED = enabled
    if not enabled:
        clear_targets_memo()


def clear_targets_memo() -> None:
    """Drop every memoized target computation."""
    global _MEMO_HITS, _MEMO_MISSES
    _TARGETS_MEMO.clear()
    _MEMO_HITS = 0
    _MEMO_MISSES = 0


def targets_memo_stats() -> Dict[str, int]:
    """Hit/miss counters of the targets memo (diagnostics)."""
    return {
        "hits": _MEMO_HITS,
        "misses": _MEMO_MISSES,
        "entries": len(_TARGETS_MEMO),
    }


def _override_ratio(own: float, effective: float) -> float:
    """The slope scale factor ``_allocate`` applies for one microservice."""
    if own > 0 and effective != own:
        return effective / own
    return 1.0


def _targets_loop(
    spec: ServiceSpec,
    profiles: Mapping[str, MicroserviceProfile],
    effective: Mapping[str, float],
    max_passes: int,
) -> Tuple[Dict[str, float], Dict[str, LatencySegment], float, int]:
    """The §5.3.1 pass loop; returns (targets, segments, intercept, passes)."""
    graph = spec.graph

    # Initial pass: high-load segment for everyone (§5.3.1).
    segments: Dict[str, LatencySegment] = {
        name: profiles[name].model.high for name in graph.microservices()
    }

    # The paper recomputes once after interval switching (two passes),
    # which suffices for continuous fits.  Discontinuous fits may need a
    # few more rounds; switching is one-way (high -> low), so the loop is
    # monotone and terminates within the number of microservices.
    scratch = ServiceTargets(service=spec.name)
    passes = 1
    for pass_index in range(max(max_passes, 1)):
        targets = _allocate(spec, profiles, segments, effective, scratch)
        used_segments = dict(segments)
        passes = pass_index + 1
        if pass_index == max_passes - 1:
            break
        switched = False
        for name, target in targets.items():
            model = profiles[name].model
            if segments[name] is model.high and target < model.latency_at_cutoff():
                segments[name] = model.low
                switched = True
        if not switched:
            break
    return targets, used_segments, scratch.merged_intercept, passes


def compute_service_targets(
    spec: ServiceSpec,
    profiles: Mapping[str, MicroserviceProfile],
    workload_overrides: Optional[Mapping[str, float]] = None,
    max_passes: int = 8,
) -> ServiceTargets:
    """Allocate optimal latency targets for every microservice of a service.

    Args:
        spec: The service (graph + workload + SLA).
        profiles: Piecewise latency profiles keyed by microservice name.
        workload_overrides: Optional per-microservice workload replacing the
            service's own demand — used by priority scheduling, where a
            low-priority service sees the summed workload of all higher-
            priority services at a shared microservice (paper §5.3.2).

    Returns:
        A :class:`ServiceTargets` with targets, container counts, the
        segment used per microservice, and bookkeeping for diagnostics.

    Raises:
        InfeasibleSLAError: If the SLA is not larger than the merged graph's
            intercept (the latency floor no resource level can beat).
        KeyError: If a microservice in the graph has no profile.

    The workload-independent part (targets/segments/passes — see the memo
    note above) is cached across calls keyed by graph identity, SLA and
    override ratios, so sweeping a workload axis or re-running the
    autoscaler tick-by-tick pays for Eq. 5 once.  Graphs and profiles are
    treated as immutable; call :func:`clear_targets_memo` after mutating
    either in place.
    """
    graph = spec.graph
    own_workloads = spec.microservice_workloads()
    effective: Dict[str, float] = dict(own_workloads)
    if workload_overrides:
        for name, value in workload_overrides.items():
            if name in effective:
                effective[name] = value

    names = graph.microservices()
    key = None
    if _MEMO_ENABLED:
        key = (
            id(graph),
            spec.sla,
            max_passes,
            tuple((name, id(profiles[name])) for name in names),
            tuple(
                _override_ratio(own_workloads[name], effective[name])
                for name in names
            ),
        )
        entry = _TARGETS_MEMO.get(key)
        if entry is not None:
            global _MEMO_HITS
            _MEMO_HITS += 1
            _TARGETS_MEMO.move_to_end(key)
            value = entry[0]
            if value[0] == "infeasible":
                raise InfeasibleSLAError(
                    f"service {spec.name!r}: SLA {spec.sla:.3f}ms does not "
                    f"exceed the graph latency floor {value[1]:.3f}ms"
                )
            targets, used_segments, intercept, passes = value[1:]
            return _finish_targets(
                spec, profiles, effective, targets, used_segments, intercept,
                passes,
            )

    if _MEMO_ENABLED:
        global _MEMO_MISSES
        _MEMO_MISSES += 1
    try:
        targets, used_segments, intercept, passes = _targets_loop(
            spec, profiles, effective, max_passes
        )
    except InfeasibleSLAError as exc:
        if key is not None:
            floor = getattr(exc, "latency_floor", None)
            if floor is not None:
                _memo_store(key, ("infeasible", floor), graph, profiles, names)
        raise
    if key is not None:
        _memo_store(
            key,
            ("ok", targets, used_segments, intercept, passes),
            graph,
            profiles,
            names,
        )
    return _finish_targets(
        spec, profiles, effective, targets, used_segments, intercept, passes
    )


def _memo_store(key, value, graph, profiles, names) -> None:
    # Strong refs to graph + profiles keep the id()-based key valid.
    _TARGETS_MEMO[key] = (value, graph, tuple(profiles[n] for n in names))
    while len(_TARGETS_MEMO) > _TARGETS_MEMO_MAX:
        _TARGETS_MEMO.popitem(last=False)


def _finish_targets(
    spec: ServiceSpec,
    profiles: Mapping[str, MicroserviceProfile],
    effective: Mapping[str, float],
    targets: Dict[str, float],
    used_segments: Dict[str, LatencySegment],
    intercept: float,
    passes: int,
) -> ServiceTargets:
    """Assemble the per-cell result around the (possibly cached) targets."""
    result = ServiceTargets(service=spec.name)
    result.targets = dict(targets)
    result.segments = dict(used_segments)
    result.workloads = dict(effective)
    result.merged_intercept = intercept
    result.passes = passes
    # Convert targets to containers with the segment consistent with each
    # *final* target.  After a §5.3.1 interval switch the recomputed target
    # can land back above the cut-off latency; blindly using the switched
    # segment would then provision containers whose per-container load sits
    # far beyond the cut-off, i.e. outside that segment's validity.
    result.containers = {
        name: best_effort_containers(
            profiles[name].model, effective[name], target
        )
        for name, target in targets.items()
    }
    return result


def _allocate(
    spec: ServiceSpec,
    profiles: Mapping[str, MicroserviceProfile],
    segments: Mapping[str, LatencySegment],
    effective_workloads: Mapping[str, float],
    result: ServiceTargets,
) -> Dict[str, float]:
    """One merge + Eq. 5 + unmerge pass; returns per-microservice targets."""
    graph = spec.graph
    own_workloads = spec.microservice_workloads()

    # Fold any workload override into the effective slope so every call
    # site can be treated as handling the service arrival rate.
    scaled_segments: Dict[str, LatencySegment] = {}
    for name in graph.microservices():
        segment = segments[name]
        ratio = 1.0
        own = own_workloads[name]
        if own > 0 and effective_workloads[name] != own:
            ratio = effective_workloads[name] / own
        scaled_segments[name] = LatencySegment(
            slope=segment.slope * ratio, intercept=segment.intercept
        )

    merged = merge_tree_cache().tree(graph, profiles, scaled_segments)
    result.merged_intercept = merged.params.intercept
    if spec.sla <= merged.params.intercept:
        error = InfeasibleSLAError(
            f"service {spec.name!r}: SLA {spec.sla:.3f}ms does not exceed the "
            f"graph latency floor {merged.params.intercept:.3f}ms"
        )
        error.latency_floor = merged.params.intercept
        raise error

    call_targets = distribute_targets(merged, spec.sla)

    targets: Dict[str, float] = {}
    for node in graph.nodes():
        target = call_targets[id(node)]
        current = targets.get(node.microservice)
        if current is None or target < current:
            targets[node.microservice] = target
    return targets


# ----------------------------------------------------------------------
# Grid-batched targets (workload × SLA)
# ----------------------------------------------------------------------
@dataclass
class GridTargets:
    """Latency targets for a whole (workload × SLA) grid of one service.

    Targets are computed once per SLA (they are workload-independent, see
    the memo note above) and container counts once per (microservice,
    SLA) as a vector over the workload axis.  :meth:`cell` materializes
    any single grid cell as the :class:`ServiceTargets` that
    :func:`compute_service_targets` would have produced — bit-identical.
    """

    service: str
    workloads: List[float]
    slas: List[float]
    #: Per-SLA feasibility; infeasible columns raise from :meth:`cell`.
    feasible: List[bool]
    merged_intercepts: List[float]
    passes: List[int]
    targets: List[Optional[Dict[str, float]]]
    segments: List[Optional[Dict[str, LatencySegment]]]
    #: Per-SLA: microservice -> int64 array over the workload axis.
    containers: List[Optional[Dict[str, np.ndarray]]]
    _multipliers: Dict[str, float] = field(default_factory=dict, repr=False)

    def cell(self, workload_index: int, sla_index: int) -> ServiceTargets:
        """The :class:`ServiceTargets` of one grid cell.

        Raises:
            InfeasibleSLAError: If this SLA column is below the graph's
                latency floor (exactly as the scalar path would).
        """
        if not self.feasible[sla_index]:
            raise InfeasibleSLAError(
                f"service {self.service!r}: SLA {self.slas[sla_index]:.3f}ms "
                f"does not exceed the graph latency floor "
                f"{self.merged_intercepts[sla_index]:.3f}ms"
            )
        workload = self.workloads[workload_index]
        result = ServiceTargets(service=self.service)
        result.targets = dict(self.targets[sla_index])
        result.segments = dict(self.segments[sla_index])
        result.workloads = {
            name: multiplier * workload
            for name, multiplier in self._multipliers.items()
        }
        result.containers = {
            name: int(counts[workload_index])
            for name, counts in self.containers[sla_index].items()
        }
        result.merged_intercept = self.merged_intercepts[sla_index]
        result.passes = self.passes[sla_index]
        return result


def compute_targets_grid(
    spec: ServiceSpec,
    profiles: Mapping[str, MicroserviceProfile],
    workloads: Sequence[float],
    slas: Sequence[float],
    max_passes: int = 8,
) -> GridTargets:
    """Batch :func:`compute_service_targets` over a (workload × SLA) grid.

    One Eq. 5 tree walk per *segment-assignment group* of SLA columns
    (via :func:`repro.core.merge.distribute_targets_batch`) replaces one
    walk per grid cell, and container counts vectorize over the workload
    axis; yet every :meth:`GridTargets.cell` is bit-identical to the
    scalar call for that cell.  §5.3.1 interval switching runs per SLA
    column: columns that switch the same segments regroup and share the
    next pass's merge tree.

    Workload overrides are deliberately unsupported here — grids sweep a
    service's own arrival rate, where every override ratio is 1.
    """
    graph = spec.graph
    names = graph.microservices()
    multipliers = graph.workload_multipliers()
    workloads = [float(w) for w in workloads]
    slas = [float(s) for s in slas]
    sla_arr = np.asarray(slas, dtype=np.float64)
    w_arr = np.asarray(workloads, dtype=np.float64)
    n = len(slas)

    cache = merge_tree_cache()
    models: Dict[str, PiecewiseLatencyModel] = {
        name: profiles[name].model for name in names
    }

    # Per-column state machine mirroring the scalar §5.3.1 loop.
    seg_state: List[Dict[str, LatencySegment]] = [
        {name: models[name].high for name in names} for _ in range(n)
    ]
    feasible = [True] * n
    intercepts = [0.0] * n
    passes = [0] * n
    col_targets: List[Optional[Dict[str, float]]] = [None] * n
    col_segments: List[Optional[Dict[str, LatencySegment]]] = [None] * n
    active = list(range(n))

    for pass_index in range(max(max_passes, 1)):
        if not active:
            break
        # Group columns sharing a segment assignment: one merge tree and
        # one batched Eq. 5 walk per group.
        groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
        for column in active:
            signature = tuple(
                seg_state[column][name] is models[name].high for name in names
            )
            groups.setdefault(signature, []).append(column)

        next_active: List[int] = []
        for columns in groups.values():
            segments = seg_state[columns[0]]
            # Mirror _allocate's construction (ratio is 1.0 on a grid).
            scaled = {
                name: LatencySegment(
                    slope=segments[name].slope * 1.0,
                    intercept=segments[name].intercept,
                )
                for name in names
            }
            tree = cache.tree(graph, profiles, scaled)
            intercept = tree.params.intercept
            live: List[int] = []
            for column in columns:
                intercepts[column] = intercept
                passes[column] = pass_index + 1
                if slas[column] <= intercept:
                    feasible[column] = False
                else:
                    live.append(column)
            if not live:
                continue

            batch = distribute_targets_batch(tree, sla_arr[live])
            # Fold call-site targets to per-microservice minima, one numpy
            # reduce per microservice (min is order-independent & exact).
            per_ms: Dict[str, np.ndarray] = {}
            for node in graph.nodes():
                values = batch[id(node)]
                current = per_ms.get(node.microservice)
                per_ms[node.microservice] = (
                    values if current is None else np.minimum(current, values)
                )

            for j, column in enumerate(live):
                targets = {name: float(per_ms[name][j]) for name in per_ms}
                if pass_index == max_passes - 1:
                    # Scalar loop breaks before the switching check.
                    col_targets[column] = targets
                    col_segments[column] = dict(seg_state[column])
                    continue
                switched = False
                for name, target in targets.items():
                    model = models[name]
                    if (
                        seg_state[column][name] is model.high
                        and target < model.latency_at_cutoff()
                    ):
                        seg_state[column][name] = model.low
                        switched = True
                if switched:
                    next_active.append(column)
                else:
                    col_targets[column] = targets
                    col_segments[column] = dict(seg_state[column])
        active = next_active

    # Containers: one vectorized pass over the workload axis per
    # (microservice, SLA).  Microservice workload = multiplier * arrival
    # rate, exactly as ServiceSpec.microservice_workloads computes it.
    containers: List[Optional[Dict[str, np.ndarray]]] = [None] * n
    for column in range(n):
        if not feasible[column]:
            continue
        targets = col_targets[column]
        containers[column] = {
            name: best_effort_containers_array(
                models[name], multipliers[name] * w_arr, target
            )
            for name, target in targets.items()
        }

    return GridTargets(
        service=spec.name,
        workloads=workloads,
        slas=slas,
        feasible=feasible,
        merged_intercepts=intercepts,
        passes=passes,
        targets=col_targets,
        segments=col_segments,
        containers=containers,
        _multipliers=dict(multipliers),
    )


def predicted_end_to_end(
    spec: ServiceSpec,
    profiles: Mapping[str, MicroserviceProfile],
    containers: Mapping[str, int],
    workload_overrides: Optional[Mapping[str, float]] = None,
) -> float:
    """Model-predicted end-to-end tail latency under a container allocation.

    Evaluates each microservice's piecewise model at its per-container load
    and folds the per-microservice latencies through the graph structure.
    Used by analytic experiments and by baselines for feasibility checks.
    """
    workloads = spec.microservice_workloads()
    if workload_overrides:
        workloads = dict(workloads)
        for name, value in workload_overrides.items():
            if name in workloads:
                workloads[name] = value
    latencies = {}
    for name, load in workloads.items():
        count = max(1, containers.get(name, 1))
        latencies[name] = profiles[name].model.latency(load / count)
    return spec.graph.end_to_end_latency(latencies)
