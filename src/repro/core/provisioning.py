"""Interference-aware resource provisioning (paper §5.4).

Containers of one microservice may land on hosts with very different
background load; the resulting performance imbalance causes SLA violations.
Erms therefore places (and releases) containers so as to minimize *resource
unbalance*: the summed absolute deviation of each host's utilization from
the cluster-wide mean.  Solving this exactly is a non-linear integer program
(NP-hard), so Erms follows the POP technique — statically partition the
hosts into equal groups, split the work across groups, and solve each small
subproblem greedily.

Two provisioners are exposed:

* :class:`InterferenceAwareProvisioner` — the Erms policy.  Host utilization
  includes background (batch-job) load, so interference is balanced out.
* :class:`KubernetesDefaultProvisioner` — the baseline of §6.4.3: spreads by
  container *requests* only, blind to background interference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.model import ContainerSpec, MicroserviceProfile


@dataclass
class Host:
    """One physical host: capacity, background load, and placed containers.

    Background load models colocated batch applications (paper §2.2's
    interference source); it contributes to utilization but is not under
    the provisioner's control.
    """

    host_id: str
    cpu_capacity: float = 32.0
    memory_capacity_mb: float = 64_000.0
    background_cpu: float = 0.0
    background_memory_mb: float = 0.0
    containers: Dict[str, int] = field(default_factory=dict)

    def place(self, microservice: str, count: int = 1) -> None:
        """Place ``count`` containers of ``microservice`` on this host."""
        self.containers[microservice] = self.containers.get(microservice, 0) + count

    def release(self, microservice: str, count: int = 1) -> None:
        """Remove ``count`` containers; raises if none are present."""
        current = self.containers.get(microservice, 0)
        if current < count:
            raise ValueError(
                f"host {self.host_id}: cannot release {count} containers of "
                f"{microservice!r}, only {current} placed"
            )
        remaining = current - count
        if remaining:
            self.containers[microservice] = remaining
        else:
            del self.containers[microservice]

    def container_count(self, microservice: Optional[str] = None) -> int:
        if microservice is None:
            return sum(self.containers.values())
        return self.containers.get(microservice, 0)

    def cpu_used(self, sizes: Mapping[str, ContainerSpec]) -> float:
        return self.background_cpu + sum(
            sizes[name].cpu * count for name, count in self.containers.items()
        )

    def memory_used(self, sizes: Mapping[str, ContainerSpec]) -> float:
        return self.background_memory_mb + sum(
            sizes[name].memory_mb * count
            for name, count in self.containers.items()
        )

    def cpu_utilization(self, sizes: Mapping[str, ContainerSpec]) -> float:
        return self.cpu_used(sizes) / self.cpu_capacity

    def memory_utilization(self, sizes: Mapping[str, ContainerSpec]) -> float:
        return self.memory_used(sizes) / self.memory_capacity_mb


@dataclass
class Cluster:
    """A set of hosts plus per-microservice container sizes."""

    hosts: List[Host]
    sizes: Dict[str, ContainerSpec] = field(default_factory=dict)

    @classmethod
    def homogeneous(
        cls,
        host_count: int,
        cpu_capacity: float = 32.0,
        memory_capacity_mb: float = 64_000.0,
    ) -> "Cluster":
        """Build the paper's testbed shape: N identical two-socket hosts."""
        hosts = [
            Host(
                host_id=f"host-{i:03d}",
                cpu_capacity=cpu_capacity,
                memory_capacity_mb=memory_capacity_mb,
            )
            for i in range(host_count)
        ]
        return cls(hosts=hosts)

    def register(self, profiles: Mapping[str, MicroserviceProfile]) -> None:
        """Record the container sizes of the given microservices."""
        for name, profile in profiles.items():
            self.sizes[name] = profile.container

    def placement(self) -> Dict[str, int]:
        """Total containers per microservice across all hosts."""
        totals: Dict[str, int] = {}
        for host in self.hosts:
            for name, count in host.containers.items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def mean_utilization(self) -> Tuple[float, float]:
        """Cluster-wide mean (cpu, memory) utilization."""
        if not self.hosts:
            return 0.0, 0.0
        cpu = sum(h.cpu_utilization(self.sizes) for h in self.hosts)
        mem = sum(h.memory_utilization(self.sizes) for h in self.hosts)
        return cpu / len(self.hosts), mem / len(self.hosts)

    def imbalance(self) -> float:
        """Σ_h |util_h − mean| summed over CPU and memory (paper §5.4)."""
        mean_cpu, mean_mem = self.mean_utilization()
        total = 0.0
        for host in self.hosts:
            total += abs(host.cpu_utilization(self.sizes) - mean_cpu)
            total += abs(host.memory_utilization(self.sizes) - mean_mem)
        return total


class ClusterIndex:
    """Vectorized per-host usage state for fast placement decisions.

    The previous hot path re-summed every host's container dict for every
    candidate host of every single placement decision — O(hosts ×
    containers) per container placed.  The index keeps per-host
    ``cpu_used``/``memory_used`` (and k8s-style *requested*) totals in
    numpy arrays, so a decision is one vectorized argmin over hosts, and
    a placement/release updates only the mutated host's row.

    Exactness: each row is refreshed by re-evaluating the *same*
    ``Host.cpu_used``/``memory_used`` expressions the scalar provisioners
    call — O(microservices-on-host), not an incremental ``+=`` — so every
    array entry is bit-identical to the scalar re-summation and argmin
    tie-breaking (numpy returns the first extremum, like ``min``/``max``)
    reproduces the scalar host choice exactly.

    The index is valid only while every mutation of the cluster is routed
    through :meth:`place`/:meth:`release`; ``Provisioner.apply`` builds
    one per call.  After out-of-band mutations call :meth:`rebuild`.
    """

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.rebuild()

    @staticmethod
    def _requested(host: Host, sizes: Mapping[str, ContainerSpec]):
        # Exactly the kube-scheduler scoring sums (requests, no background).
        cpu = sum(
            sizes[name].cpu * count for name, count in host.containers.items()
        )
        mem = sum(
            sizes[name].memory_mb * count
            for name, count in host.containers.items()
        )
        return cpu, mem

    def rebuild(self) -> None:
        """Recompute every row from the cluster's current state."""
        hosts = self.cluster.hosts
        sizes = self.cluster.sizes
        n = len(hosts)
        self._pos = {id(host): i for i, host in enumerate(hosts)}
        self.cpu_capacity = np.array([h.cpu_capacity for h in hosts], dtype=float)
        self.memory_capacity = np.array(
            [h.memory_capacity_mb for h in hosts], dtype=float
        )
        self.cpu_used = np.array([h.cpu_used(sizes) for h in hosts], dtype=float)
        self.memory_used = np.array(
            [h.memory_used(sizes) for h in hosts], dtype=float
        )
        requested = [self._requested(h, sizes) for h in hosts]
        self.cpu_requested = np.array([r[0] for r in requested], dtype=float)
        self.memory_requested = np.array([r[1] for r in requested], dtype=float)
        self._counts: Dict[str, np.ndarray] = {}
        for i, host in enumerate(hosts):
            for name, count in host.containers.items():
                self.counts(name)[i] = count

    def counts(self, microservice: str) -> np.ndarray:
        """Per-host container counts of one microservice (int64 array)."""
        array = self._counts.get(microservice)
        if array is None:
            array = np.zeros(len(self.cluster.hosts), dtype=np.int64)
            self._counts[microservice] = array
        return array

    def utilization(self) -> np.ndarray:
        """Per-host ``cpu_util + mem_util`` (the §5.4 balancing signal)."""
        return (
            self.cpu_used / self.cpu_capacity
            + self.memory_used / self.memory_capacity
        )

    def refresh_host(self, host: Host) -> None:
        """Re-derive one host's row from its container dict (exact)."""
        i = self._pos[id(host)]
        sizes = self.cluster.sizes
        self.cpu_used[i] = host.cpu_used(sizes)
        self.memory_used[i] = host.memory_used(sizes)
        cpu_requested, memory_requested = self._requested(host, sizes)
        self.cpu_requested[i] = cpu_requested
        self.memory_requested[i] = memory_requested

    def place(self, host: Host, microservice: str, count: int = 1) -> None:
        """Place containers on ``host`` and update its row in place."""
        host.place(microservice, count)
        self.counts(microservice)[self._pos[id(host)]] += count
        self.refresh_host(host)

    def release(self, host: Host, microservice: str, count: int = 1) -> None:
        """Release containers from ``host`` and update its row in place."""
        host.release(microservice, count)
        self.counts(microservice)[self._pos[id(host)]] -= count
        self.refresh_host(host)


@dataclass
class PlacementAction:
    """One placement or release decision."""

    host_id: str
    microservice: str
    delta: int  # +1 place, -1 release


@dataclass
class PlacementPlan:
    """The actions realizing a scaling decision, in execution order."""

    actions: List[PlacementAction] = field(default_factory=list)

    def placements(self) -> int:
        return sum(1 for a in self.actions if a.delta > 0)

    def releases(self) -> int:
        return sum(1 for a in self.actions if a.delta < 0)


class Provisioner:
    """Base class: computes deltas and delegates host choice to subclasses."""

    name = "provisioner"

    def apply(self, cluster: Cluster, desired: Mapping[str, int]) -> PlacementPlan:
        """Mutate ``cluster`` so each microservice reaches its desired count.

        Builds one :class:`ClusterIndex` and routes every placement and
        release through it, so each decision costs a vectorized argmin
        plus a single-host refresh instead of re-summing every host.
        """
        plan = PlacementPlan()
        current = cluster.placement()
        names = sorted(set(desired) | set(current))
        for name in names:
            if name not in cluster.sizes:
                cluster.sizes[name] = ContainerSpec()
        index = ClusterIndex(cluster)
        for name in names:
            delta = desired.get(name, 0) - current.get(name, 0)
            for _ in range(delta):
                host = self.choose_placement_host(cluster, name, index=index)
                index.place(host, name)
                plan.actions.append(PlacementAction(host.host_id, name, +1))
            for _ in range(-delta):
                host = self.choose_release_host(cluster, name, index=index)
                index.release(host, name)
                plan.actions.append(PlacementAction(host.host_id, name, -1))
        return plan

    def choose_placement_host(
        self,
        cluster: Cluster,
        microservice: str,
        index: Optional[ClusterIndex] = None,
    ) -> Host:
        raise NotImplementedError

    def choose_release_host(
        self,
        cluster: Cluster,
        microservice: str,
        index: Optional[ClusterIndex] = None,
    ) -> Host:
        raise NotImplementedError


class InterferenceAwareProvisioner(Provisioner):
    """Erms' provisioning policy (paper §5.4).

    Greedy imbalance minimization within POP host groups: hosts are divided
    into ``groups`` equal partitions once; each placement considers only the
    partition currently offering the best (lowest) utilization headroom,
    keeping per-decision cost :math:`O(hosts / groups)` in the spirit of the
    POP decomposition.
    """

    name = "erms-interference-aware"

    def __init__(self, groups: int = 1):
        if groups < 1:
            raise ValueError(f"groups must be >= 1, got {groups}")
        self.groups = groups

    def _partition_size(self, host_count: int) -> int:
        return max(1, (host_count + self.groups - 1) // self.groups)

    def _partitions(self, cluster: Cluster) -> List[List[Host]]:
        hosts = cluster.hosts
        size = self._partition_size(len(hosts))
        return [hosts[i : i + size] for i in range(0, len(hosts), size)]

    def choose_placement_host(
        self,
        cluster: Cluster,
        microservice: str,
        index: Optional[ClusterIndex] = None,
    ) -> Host:
        if index is None:
            index = ClusterIndex(cluster)
        if not cluster.hosts:
            raise ValueError("cannot place on a cluster with no hosts")
        spec = cluster.sizes[microservice]
        utilization = index.utilization()
        count = len(cluster.hosts)
        size = self._partition_size(count)
        # First partition attaining the lowest per-host utilization
        # minimum (min() keeps the first minimal element; so do we).
        best_start = 0
        best_value = None
        for start in range(0, count, size):
            value = utilization[start : start + size].min()
            if best_value is None or value < best_value:
                best_value = value
                best_start = start
        stop = min(best_start + size, count)
        score = (index.cpu_used[best_start:stop] + spec.cpu) / index.cpu_capacity[
            best_start:stop
        ] + (
            index.memory_used[best_start:stop] + spec.memory_mb
        ) / index.memory_capacity[
            best_start:stop
        ]
        # np.argmin returns the first minimum, matching min()'s tie-break.
        return cluster.hosts[best_start + int(np.argmin(score))]

    def choose_release_host(
        self,
        cluster: Cluster,
        microservice: str,
        index: Optional[ClusterIndex] = None,
    ) -> Host:
        if index is None:
            index = ClusterIndex(cluster)
        candidates = np.flatnonzero(index.counts(microservice) > 0)
        if candidates.size == 0:
            raise ValueError(f"no host has containers of {microservice!r}")
        # Releasing from the most utilized host best reduces imbalance
        # (np.argmax keeps the first maximum, matching max()).
        utilization = index.utilization()
        return cluster.hosts[
            int(candidates[np.argmax(utilization[candidates])])
        ]


class KubernetesDefaultProvisioner(Provisioner):
    """K8s-default spreading: least *requested* host wins, interference-blind.

    This mirrors the kube-scheduler's LeastAllocated scoring, which only
    sees container resource requests — not the batch jobs colocated on the
    host — and is the baseline of paper §6.4.3.
    """

    name = "k8s-default"

    def choose_placement_host(
        self,
        cluster: Cluster,
        microservice: str,
        index: Optional[ClusterIndex] = None,
    ) -> Host:
        if index is None:
            index = ClusterIndex(cluster)
        if not cluster.hosts:
            raise ValueError("cannot place on a cluster with no hosts")
        score = (
            index.cpu_requested / index.cpu_capacity
            + index.memory_requested / index.memory_capacity
        )
        return cluster.hosts[int(np.argmin(score))]

    def choose_release_host(
        self,
        cluster: Cluster,
        microservice: str,
        index: Optional[ClusterIndex] = None,
    ) -> Host:
        if index is None:
            index = ClusterIndex(cluster)
        counts = index.counts(microservice)
        candidates = np.flatnonzero(counts > 0)
        if candidates.size == 0:
            raise ValueError(f"no host has containers of {microservice!r}")
        return cluster.hosts[int(candidates[np.argmax(counts[candidates])])]
