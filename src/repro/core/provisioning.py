"""Interference-aware resource provisioning (paper §5.4).

Containers of one microservice may land on hosts with very different
background load; the resulting performance imbalance causes SLA violations.
Erms therefore places (and releases) containers so as to minimize *resource
unbalance*: the summed absolute deviation of each host's utilization from
the cluster-wide mean.  Solving this exactly is a non-linear integer program
(NP-hard), so Erms follows the POP technique — statically partition the
hosts into equal groups, split the work across groups, and solve each small
subproblem greedily.

Two provisioners are exposed:

* :class:`InterferenceAwareProvisioner` — the Erms policy.  Host utilization
  includes background (batch-job) load, so interference is balanced out.
* :class:`KubernetesDefaultProvisioner` — the baseline of §6.4.3: spreads by
  container *requests* only, blind to background interference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.model import ContainerSpec, MicroserviceProfile


@dataclass
class Host:
    """One physical host: capacity, background load, and placed containers.

    Background load models colocated batch applications (paper §2.2's
    interference source); it contributes to utilization but is not under
    the provisioner's control.
    """

    host_id: str
    cpu_capacity: float = 32.0
    memory_capacity_mb: float = 64_000.0
    background_cpu: float = 0.0
    background_memory_mb: float = 0.0
    containers: Dict[str, int] = field(default_factory=dict)

    def place(self, microservice: str, count: int = 1) -> None:
        """Place ``count`` containers of ``microservice`` on this host."""
        self.containers[microservice] = self.containers.get(microservice, 0) + count

    def release(self, microservice: str, count: int = 1) -> None:
        """Remove ``count`` containers; raises if none are present."""
        current = self.containers.get(microservice, 0)
        if current < count:
            raise ValueError(
                f"host {self.host_id}: cannot release {count} containers of "
                f"{microservice!r}, only {current} placed"
            )
        remaining = current - count
        if remaining:
            self.containers[microservice] = remaining
        else:
            del self.containers[microservice]

    def container_count(self, microservice: Optional[str] = None) -> int:
        if microservice is None:
            return sum(self.containers.values())
        return self.containers.get(microservice, 0)

    def cpu_used(self, sizes: Mapping[str, ContainerSpec]) -> float:
        return self.background_cpu + sum(
            sizes[name].cpu * count for name, count in self.containers.items()
        )

    def memory_used(self, sizes: Mapping[str, ContainerSpec]) -> float:
        return self.background_memory_mb + sum(
            sizes[name].memory_mb * count
            for name, count in self.containers.items()
        )

    def cpu_utilization(self, sizes: Mapping[str, ContainerSpec]) -> float:
        return self.cpu_used(sizes) / self.cpu_capacity

    def memory_utilization(self, sizes: Mapping[str, ContainerSpec]) -> float:
        return self.memory_used(sizes) / self.memory_capacity_mb


@dataclass
class Cluster:
    """A set of hosts plus per-microservice container sizes."""

    hosts: List[Host]
    sizes: Dict[str, ContainerSpec] = field(default_factory=dict)

    @classmethod
    def homogeneous(
        cls,
        host_count: int,
        cpu_capacity: float = 32.0,
        memory_capacity_mb: float = 64_000.0,
    ) -> "Cluster":
        """Build the paper's testbed shape: N identical two-socket hosts."""
        hosts = [
            Host(
                host_id=f"host-{i:03d}",
                cpu_capacity=cpu_capacity,
                memory_capacity_mb=memory_capacity_mb,
            )
            for i in range(host_count)
        ]
        return cls(hosts=hosts)

    def register(self, profiles: Mapping[str, MicroserviceProfile]) -> None:
        """Record the container sizes of the given microservices."""
        for name, profile in profiles.items():
            self.sizes[name] = profile.container

    def placement(self) -> Dict[str, int]:
        """Total containers per microservice across all hosts."""
        totals: Dict[str, int] = {}
        for host in self.hosts:
            for name, count in host.containers.items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def mean_utilization(self) -> Tuple[float, float]:
        """Cluster-wide mean (cpu, memory) utilization."""
        if not self.hosts:
            return 0.0, 0.0
        cpu = sum(h.cpu_utilization(self.sizes) for h in self.hosts)
        mem = sum(h.memory_utilization(self.sizes) for h in self.hosts)
        return cpu / len(self.hosts), mem / len(self.hosts)

    def imbalance(self) -> float:
        """Σ_h |util_h − mean| summed over CPU and memory (paper §5.4)."""
        mean_cpu, mean_mem = self.mean_utilization()
        total = 0.0
        for host in self.hosts:
            total += abs(host.cpu_utilization(self.sizes) - mean_cpu)
            total += abs(host.memory_utilization(self.sizes) - mean_mem)
        return total


@dataclass
class PlacementAction:
    """One placement or release decision."""

    host_id: str
    microservice: str
    delta: int  # +1 place, -1 release


@dataclass
class PlacementPlan:
    """The actions realizing a scaling decision, in execution order."""

    actions: List[PlacementAction] = field(default_factory=list)

    def placements(self) -> int:
        return sum(1 for a in self.actions if a.delta > 0)

    def releases(self) -> int:
        return sum(1 for a in self.actions if a.delta < 0)


class Provisioner:
    """Base class: computes deltas and delegates host choice to subclasses."""

    name = "provisioner"

    def apply(self, cluster: Cluster, desired: Mapping[str, int]) -> PlacementPlan:
        """Mutate ``cluster`` so each microservice reaches its desired count."""
        plan = PlacementPlan()
        current = cluster.placement()
        names = sorted(set(desired) | set(current))
        for name in names:
            delta = desired.get(name, 0) - current.get(name, 0)
            if name not in cluster.sizes:
                cluster.sizes[name] = ContainerSpec()
            for _ in range(delta):
                host = self.choose_placement_host(cluster, name)
                host.place(name)
                plan.actions.append(PlacementAction(host.host_id, name, +1))
            for _ in range(-delta):
                host = self.choose_release_host(cluster, name)
                host.release(name)
                plan.actions.append(PlacementAction(host.host_id, name, -1))
        return plan

    def choose_placement_host(self, cluster: Cluster, microservice: str) -> Host:
        raise NotImplementedError

    def choose_release_host(self, cluster: Cluster, microservice: str) -> Host:
        raise NotImplementedError


class InterferenceAwareProvisioner(Provisioner):
    """Erms' provisioning policy (paper §5.4).

    Greedy imbalance minimization within POP host groups: hosts are divided
    into ``groups`` equal partitions once; each placement considers only the
    partition currently offering the best (lowest) utilization headroom,
    keeping per-decision cost :math:`O(hosts / groups)` in the spirit of the
    POP decomposition.
    """

    name = "erms-interference-aware"

    def __init__(self, groups: int = 1):
        if groups < 1:
            raise ValueError(f"groups must be >= 1, got {groups}")
        self.groups = groups

    def _partitions(self, cluster: Cluster) -> List[List[Host]]:
        hosts = cluster.hosts
        size = max(1, (len(hosts) + self.groups - 1) // self.groups)
        return [hosts[i : i + size] for i in range(0, len(hosts), size)]

    def choose_placement_host(self, cluster: Cluster, microservice: str) -> Host:
        spec = cluster.sizes[microservice]
        partitions = self._partitions(cluster)
        group = min(
            partitions,
            key=lambda part: min(
                h.cpu_utilization(cluster.sizes) + h.memory_utilization(cluster.sizes)
                for h in part
            ),
        )
        return min(group, key=lambda h: self._score_after_place(cluster, h, spec))

    def _score_after_place(
        self, cluster: Cluster, host: Host, spec: ContainerSpec
    ) -> float:
        cpu = (host.cpu_used(cluster.sizes) + spec.cpu) / host.cpu_capacity
        mem = (
            host.memory_used(cluster.sizes) + spec.memory_mb
        ) / host.memory_capacity_mb
        return cpu + mem

    def choose_release_host(self, cluster: Cluster, microservice: str) -> Host:
        candidates = [
            h for h in cluster.hosts if h.container_count(microservice) > 0
        ]
        if not candidates:
            raise ValueError(f"no host has containers of {microservice!r}")
        # Releasing from the most utilized host best reduces imbalance.
        return max(
            candidates,
            key=lambda h: h.cpu_utilization(cluster.sizes)
            + h.memory_utilization(cluster.sizes),
        )


class KubernetesDefaultProvisioner(Provisioner):
    """K8s-default spreading: least *requested* host wins, interference-blind.

    This mirrors the kube-scheduler's LeastAllocated scoring, which only
    sees container resource requests — not the batch jobs colocated on the
    host — and is the baseline of paper §6.4.3.
    """

    name = "k8s-default"

    def choose_placement_host(self, cluster: Cluster, microservice: str) -> Host:
        def requested(host: Host) -> float:
            cpu = sum(
                cluster.sizes[name].cpu * count
                for name, count in host.containers.items()
            )
            mem = sum(
                cluster.sizes[name].memory_mb * count
                for name, count in host.containers.items()
            )
            return cpu / host.cpu_capacity + mem / host.memory_capacity_mb

        return min(cluster.hosts, key=requested)

    def choose_release_host(self, cluster: Cluster, microservice: str) -> Host:
        candidates = [
            h for h in cluster.hosts if h.container_count(microservice) > 0
        ]
        if not candidates:
            raise ValueError(f"no host has containers of {microservice!r}")
        return max(candidates, key=lambda h: h.container_count(microservice))
