"""Dependency-graph merge into virtual microservices (paper §4.2, Alg. 1).

A general dependency graph mixes sequential and parallel calls, which makes
the end-to-end latency expression awkward to optimize directly.  Erms
repeatedly *merges* microservices into virtual ones with closed-form
parameters until the graph is a chain (in fact a single node), allocates
latency targets on the chain via the KKT closed form (Eq. 5), and then
*unmerges* — pushing targets back down to the real microservices (Fig. 8).

Merge rules (for two nodes with slope/intercept/resource ⟨a, b, R⟩):

* sequential (Eqs. 7–9)::

      a* = (√(a₁R₁)+√(a₂R₂)) · (√(a₁/R₁)+√(a₂/R₂))
      b* = b₁ + b₂
      R* = (√(a₁R₁)+√(a₂R₂)) / (√(a₁/R₁)+√(a₂/R₂))

  which preserves the key invariant ``√(a*R*) = √(a₁R₁) + √(a₂R₂)`` — the
  reason hierarchical target splitting agrees with the flat Eq. 5 allocation.

* parallel (Eqs. 10–12)::

      a** = a₁ + a₂,   b** = max(b₁, b₂)

  with ``R**`` chosen so that ``a**·R** = a₁R₁ + a₂R₂``; this equals the
  container-weighted average of Eq. 12 whenever the intercepts agree, and is
  the same approximation the paper's ``≈`` in Eq. 10 makes.

Workload heterogeneity (fan-out factors ≠ 1) is folded into the slope:
``a_eff = a · (γ_node / γ_service)``, so every virtual node can be treated
as handling the service arrival rate.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.graphs import CallNode, DependencyGraph
from repro.core.model import MicroserviceProfile


@dataclass(frozen=True)
class VirtualParams:
    """⟨slope, intercept, resource demand⟩ of a (virtual) microservice."""

    slope: float
    intercept: float
    resource: float

    def __post_init__(self) -> None:
        if self.slope <= 0:
            raise ValueError(f"slope must be positive, got {self.slope}")
        if self.resource <= 0:
            raise ValueError(f"resource must be positive, got {self.resource}")

    @property
    def key(self) -> float:
        """√(a·R), the weight Eq. 5 allocates latency budget by."""
        return math.sqrt(self.slope * self.resource)


def sequential_merge(first: VirtualParams, second: VirtualParams) -> VirtualParams:
    """Merge two sequentially-executed microservices (paper Eqs. 7–9)."""
    s = math.sqrt(first.slope * first.resource) + math.sqrt(
        second.slope * second.resource
    )
    t = math.sqrt(first.slope / first.resource) + math.sqrt(
        second.slope / second.resource
    )
    return VirtualParams(
        slope=s * t,
        intercept=first.intercept + second.intercept,
        resource=s / t,
    )


def parallel_merge(first: VirtualParams, second: VirtualParams) -> VirtualParams:
    """Merge two parallel microservices (paper Eqs. 10–12)."""
    slope = first.slope + second.slope
    aggregate = first.slope * first.resource + second.slope * second.resource
    return VirtualParams(
        slope=slope,
        intercept=max(first.intercept, second.intercept),
        resource=aggregate / slope,
    )


class MergeKind(Enum):
    """How a merged node combines its children."""

    LEAF = "leaf"
    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"


@dataclass
class MergedNode:
    """A node in the merge tree built from a dependency graph.

    Leaves correspond to real call sites; internal nodes are the virtual
    microservices invented by the merge.  The tree is retained so the target
    allocation can be reversed (paper Fig. 8).
    """

    kind: MergeKind
    params: VirtualParams
    children: List["MergedNode"] = field(default_factory=list)
    call: Optional[CallNode] = None

    def leaf_count(self) -> int:
        """Number of real call sites under this node."""
        if self.kind is MergeKind.LEAF:
            return 1
        return sum(child.leaf_count() for child in self.children)


def _leaf(call: CallNode, params: VirtualParams) -> MergedNode:
    return MergedNode(kind=MergeKind.LEAF, params=params, call=call)


def _merge_sequence(nodes: List[MergedNode]) -> MergedNode:
    if len(nodes) == 1:
        return nodes[0]
    params = nodes[0].params
    for node in nodes[1:]:
        params = sequential_merge(params, node.params)
    return MergedNode(kind=MergeKind.SEQUENTIAL, params=params, children=nodes)


def _merge_parallel(nodes: List[MergedNode]) -> MergedNode:
    if len(nodes) == 1:
        return nodes[0]
    params = nodes[0].params
    for node in nodes[1:]:
        params = parallel_merge(params, node.params)
    return MergedNode(kind=MergeKind.PARALLEL, params=params, children=nodes)


def merge_graph(
    graph: DependencyGraph,
    leaf_params: Mapping[int, VirtualParams],
) -> MergedNode:
    """Collapse a dependency graph into a single virtual microservice.

    Args:
        graph: The service's dependency graph.
        leaf_params: Effective parameters per call node, keyed by
            ``id(call_node)``.  Effective means the slope already includes
            the relative workload multiplier of the call site.

    Returns:
        The root of the merge tree; its ``params`` describe the whole
        service as one virtual microservice handling the service workload.
    """

    def _merge(node: CallNode, factor: float) -> MergedNode:
        factor *= node.calls_per_request
        pieces = [_leaf(node, leaf_params[id(node)])]
        for stage in node.stages:
            merged_stage = _merge_parallel([_merge(c, factor) for c in stage])
            pieces.append(merged_stage)
        return _merge_sequence(pieces)

    return _merge(graph.root, 1.0)


def leaf_params_from_profiles(
    graph: DependencyGraph,
    profiles: Mapping[str, MicroserviceProfile],
    segment_of: Mapping[str, "object"],
) -> Dict[int, VirtualParams]:
    """Build per-call-site effective parameters from microservice profiles.

    Args:
        graph: The service's dependency graph.
        profiles: Profile per microservice name.
        segment_of: Chosen :class:`~repro.core.model.LatencySegment` per
            microservice name (interval selection happens upstream).

    Returns:
        Mapping from ``id(call_node)`` to effective :class:`VirtualParams`,
        where each slope is scaled by the call site's cumulative fan-out
        factor so all nodes can be treated as seeing the service workload.
    """
    params: Dict[int, VirtualParams] = {}

    def _visit(node: CallNode, factor: float) -> None:
        factor *= node.calls_per_request
        profile = profiles[node.microservice]
        segment = segment_of[node.microservice]
        params[id(node)] = VirtualParams(
            slope=segment.slope * factor,
            intercept=segment.intercept,
            resource=profile.resource_demand,
        )
        for child in node.children():
            _visit(child, factor)

    _visit(graph.root, 1.0)
    return params


def distribute_targets(root: MergedNode, sla: float) -> Dict[int, float]:
    """Reverse the merge: assign each real call site a latency target.

    Walks the merge tree top-down (paper Fig. 8):

    * a sequential node splits its budget among children by Eq. 5 —
      ``(target − Σb)`` is shared proportionally to each child's √(a·R),
      then each child adds back its own intercept;
    * a parallel node hands every child the same target (Eq. 10's equal-
      target optimality argument);
    * a leaf records its target.

    Returns:
        Mapping from ``id(call_node)`` to its latency target in ms.
    """
    targets: Dict[int, float] = {}

    def _assign(node: MergedNode, target: float) -> None:
        if node.kind is MergeKind.LEAF:
            assert node.call is not None
            targets[id(node.call)] = target
            return
        if node.kind is MergeKind.PARALLEL:
            for child in node.children:
                _assign(child, target)
            return
        # Sequential: Eq. 5 split.
        budget = target - sum(child.params.intercept for child in node.children)
        total_key = sum(child.params.key for child in node.children)
        for child in node.children:
            share = child.params.key / total_key
            _assign(child, share * budget + child.params.intercept)

    _assign(root, sla)
    return targets


def distribute_targets_batch(
    root: MergedNode, slas: np.ndarray
) -> Dict[int, np.ndarray]:
    """Vectorized :func:`distribute_targets` over a whole SLA axis.

    One tree walk assigns every call site a *vector* of latency targets,
    one entry per SLA.  Each elementwise operation mirrors the scalar
    walk's operation order exactly (``share * (t − Σb) + b`` becomes the
    same subtract/multiply/add on float64 arrays), so column ``j`` of the
    result is bit-identical to ``distribute_targets(root, slas[j])`` —
    the Eq. 5 split is *batched*, never approximated.

    Args:
        root: The merge-tree root (same tree for every SLA — callers
            group SLAs by segment assignment first; see
            :func:`repro.core.latency_targets.compute_targets_grid`).
        slas: 1-D float array of end-to-end SLAs in ms.

    Returns:
        Mapping from ``id(call_node)`` to a float64 array of targets with
        the same shape as ``slas``.
    """
    slas = np.ascontiguousarray(slas, dtype=np.float64)
    targets: Dict[int, np.ndarray] = {}

    def _assign(node: MergedNode, target: np.ndarray) -> None:
        if node.kind is MergeKind.LEAF:
            assert node.call is not None
            targets[id(node.call)] = target
            return
        if node.kind is MergeKind.PARALLEL:
            for child in node.children:
                _assign(child, target)
            return
        budget = target - sum(child.params.intercept for child in node.children)
        total_key = sum(child.params.key for child in node.children)
        for child in node.children:
            share = child.params.key / total_key
            _assign(child, share * budget + child.params.intercept)

    _assign(root, slas)
    return targets


# ----------------------------------------------------------------------
# Merge-tree cache
# ----------------------------------------------------------------------
class MergeTreeCache:
    """LRU cache of merge trees keyed by (graph, effective segment params).

    Building a merge tree walks the whole graph and takes four square
    roots per node; in grid sweeps and in the in-DES autoscaler loop the
    same (graph, segment-assignment) pair recurs for every cell/tick, so
    the tree — and the per-call-site leaf parameters — are cached.  The
    key captures everything the tree depends on: the graph's identity,
    each microservice's *effective* segment (slope already ratio-scaled,
    intercept) and its resource demand.  Entries hold strong references
    to the graph and profiles so ``id()`` keys cannot be recycled while
    an entry lives.

    Graphs are treated as immutable once used for scaling (they are
    everywhere in this codebase); mutate a graph in place and you must
    call :meth:`clear`.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()

    def _key(
        self,
        graph: DependencyGraph,
        profiles: Mapping[str, MicroserviceProfile],
        scaled_segments: Mapping[str, "object"],
    ) -> Tuple:
        names = graph.microservices()
        return (
            id(graph),
            tuple(
                (
                    name,
                    scaled_segments[name].slope,
                    scaled_segments[name].intercept,
                    profiles[name].resource_demand,
                )
                for name in names
            ),
        )

    def tree(
        self,
        graph: DependencyGraph,
        profiles: Mapping[str, MicroserviceProfile],
        scaled_segments: Mapping[str, "object"],
    ) -> MergedNode:
        """The merged root for this (graph, effective-parameters) pair."""
        key = self._key(graph, profiles, scaled_segments)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry[0]
        self.misses += 1
        leaf_params = leaf_params_from_profiles(graph, profiles, scaled_segments)
        root = merge_graph(graph, leaf_params)
        # Keep graph + profiles alive so the id()-based key stays valid.
        self._entries[key] = (root, graph, tuple(profiles[n] for n in graph.microservices()))
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return root

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide default cache used by the latency-target layer.
_MERGE_CACHE = MergeTreeCache()


def merge_tree_cache() -> MergeTreeCache:
    """The process-wide merge-tree cache (inspect ``hits``/``misses``)."""
    return _MERGE_CACHE


def clear_merge_cache() -> None:
    """Drop every cached merge tree (e.g. after mutating a graph)."""
    _MERGE_CACHE.clear()
