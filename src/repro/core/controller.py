"""The complete Erms control loop (paper Fig. 6, end to end).

``ErmsController`` wires every module together the way the deployed
system runs:

1. observe per-service workloads and cluster-average utilization;
2. condition the latency profiles on the measured interference (§5.3.1);
3. run Online Scaling (merge → targets → priorities) to get an
   allocation;
4. declare the allocation to the (mock) Kubernetes API and reconcile —
   pods are created/terminated and placed interference-aware (§5.4);
5. install the tc-style network priority bands on the pods of shared
   microservices (§5.5).

Each :meth:`reconcile` call is one control period; :meth:`tick` advances
pod startups between periods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.model import Allocation, MicroserviceProfile, ServiceSpec
from repro.core.provisioning import Cluster, InterferenceAwareProvisioner, Provisioner
from repro.core.scaling import Autoscaler, ErmsScaler

#: Profiles may be a fixed mapping or a function of measured (cpu, mem)
#: utilization — the latter is how interference awareness enters the loop.
ProfileSource = Union[
    Mapping[str, MicroserviceProfile],
    Callable[[float, float], Mapping[str, MicroserviceProfile]],
]


@dataclass
class ControllerReport:
    """What one control period decided and did."""

    allocation: Allocation
    pod_deltas: Dict[str, int] = field(default_factory=dict)
    traffic_classes_installed: int = 0
    cluster_imbalance: float = 0.0

    def total_containers(self) -> int:
        return self.allocation.total_containers()


class ErmsController:
    """Periodic cluster-wide resource manager (the whole paper system).

    Args:
        specs: The managed services (graphs + SLAs; workloads are supplied
            per reconcile call).
        cluster: Host inventory.
        scaler: Scaling scheme; full Erms by default.
        provisioner: Placement policy; interference-aware by default.
        profile_source: Fixed profiles, or a ``(cpu, mem) -> profiles``
            callable re-conditioned each period.
        startup_seconds: Pod cold-start time.
    """

    def __init__(
        self,
        specs: Sequence[ServiceSpec],
        cluster: Cluster,
        profile_source: ProfileSource,
        scaler: Optional[Autoscaler] = None,
        provisioner: Optional[Provisioner] = None,
        startup_seconds: float = 3.0,
    ):
        from repro.deployment import (
            DeploymentController,
            MockKubeApi,
            NetworkPriorityConfigurator,
        )

        self.specs = list(specs)
        self.cluster = cluster
        self.profile_source = profile_source
        self.scaler = scaler if scaler is not None else ErmsScaler()
        self.provisioner = (
            provisioner if provisioner is not None else InterferenceAwareProvisioner()
        )
        self.api = MockKubeApi()
        self.deployer = DeploymentController(
            api=self.api,
            cluster=self.cluster,
            provisioner=self.provisioner,
            startup_seconds=startup_seconds,
        )
        self.configurator = NetworkPriorityConfigurator()
        self.history: List[ControllerReport] = []

    # ------------------------------------------------------------------
    def _profiles(
        self, utilization: Tuple[float, float]
    ) -> Mapping[str, MicroserviceProfile]:
        if callable(self.profile_source):
            return self.profile_source(*utilization)
        return self.profile_source

    def reconcile(
        self,
        workloads: Mapping[str, float],
        utilization: Optional[Tuple[float, float]] = None,
    ) -> ControllerReport:
        """One control period: scale, deploy, and configure priorities.

        Args:
            workloads: Observed request rate per service (req/min).
            utilization: Measured cluster-average (cpu, mem) utilization;
                defaults to the cluster's own current mean.
        """
        if utilization is None:
            utilization = self.cluster.mean_utilization()
        profiles = self._profiles(utilization)

        planning_specs = self.scaler.with_workloads(self.specs, workloads)
        allocation = self.scaler.scale(planning_specs, profiles)

        container_specs = {
            name: profile.container for name, profile in profiles.items()
        }
        self.deployer.apply_allocation(allocation.containers, container_specs)
        deltas = self.deployer.reconcile()
        installed = self.configurator.install(self.api, allocation)

        report = ControllerReport(
            allocation=allocation,
            pod_deltas=deltas,
            traffic_classes_installed=installed,
            cluster_imbalance=self.cluster.imbalance(),
        )
        self.history.append(report)
        return report

    def tick(self, seconds: float) -> int:
        """Advance time between control periods; returns pods started."""
        return self.deployer.tick(seconds)

    # ------------------------------------------------------------------
    def serving_containers(self) -> Dict[str, int]:
        """RUNNING pods per microservice (what actually serves traffic)."""
        return {
            name: self.api.serving_replicas(name)
            for name in self.api.deployments
        }

    def total_pods(self) -> int:
        return sum(
            self.api.active_replicas(name) for name in self.api.deployments
        )
