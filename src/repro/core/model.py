"""Core latency and resource model types.

Erms characterizes the tail latency of a microservice as a *piece-wise
linear* function of its per-container workload (paper §2.2, Eq. 15): below a
cut-off point :math:`\\sigma` latency grows slowly and almost linearly; above
it, queueing makes latency grow linearly but much faster.  Both segments'
slopes depend on host interference; the interference-conditioned parameters
are produced by :mod:`repro.profiling` and consumed here as plain numbers.

Resource demand follows the dominant-resource rule of paper Eq. 3:
:math:`R_i = \\max(R^C_i / C,\\; R^M_i / M)`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.graphs import DependencyGraph


class InfeasibleSLAError(ValueError):
    """The SLA cannot be met at any resource level (SLA below intercept sum)."""


@dataclass(frozen=True)
class LatencySegment:
    """One linear segment: latency = slope * per_container_load + intercept.

    Units: latency in milliseconds; per-container load in requests/minute
    per container.
    """

    slope: float
    intercept: float

    def __post_init__(self) -> None:
        if self.slope <= 0:
            raise ValueError(f"slope must be positive, got {self.slope}")
        # Note: the intercept may be negative.  The steep post-cutoff
        # segment extrapolates below zero at low loads in practice, and all
        # of the Eq. 5 machinery (budget = SLA − Σb, headroom = T − b)
        # remains well-defined for negative intercepts.

    def latency(self, per_container_load: float) -> float:
        """Predicted tail latency at ``per_container_load`` req/min/container."""
        return self.slope * per_container_load + self.intercept

    def load_for_latency(self, latency: float) -> float:
        """Per-container load at which this segment reaches ``latency``."""
        return (latency - self.intercept) / self.slope


@dataclass(frozen=True)
class PiecewiseLatencyModel:
    """Two-segment tail latency model with cut-off point ``cutoff`` (σ).

    ``low`` applies for per-container load ≤ ``cutoff``; ``high`` applies
    above it.  Paper Fig. 3 / Eq. 15.

    ``max_load`` optionally records the largest per-container load the
    profile was observed at (close to the container's saturation point).
    Linear fits say nothing beyond the observed range, so provisioning
    never schedules a per-container load above it.
    """

    low: LatencySegment
    high: LatencySegment
    cutoff: float
    max_load: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {self.cutoff}")
        if self.max_load is not None and self.max_load < self.cutoff:
            raise ValueError(
                f"max_load {self.max_load} must be >= cutoff {self.cutoff}"
            )

    def latency(self, per_container_load: float) -> float:
        """Tail latency at the given per-container load."""
        if per_container_load <= self.cutoff:
            return self.low.latency(per_container_load)
        return self.high.latency(per_container_load)

    def latency_at_cutoff(self) -> float:
        """Latency at the cut-off point, evaluated on the high segment.

        This is the threshold of §5.3.1: a latency target below this value
        means the microservice must operate in the low-load interval.
        """
        return self.high.latency(self.cutoff)

    def segment_for_target(self, target: float) -> LatencySegment:
        """Choose the segment consistent with meeting ``target``.

        Erms first assumes the high-load segment (fewest containers); if the
        allocated target falls below the cut-off latency the microservice
        needs the low-load segment instead (paper §5.3.1).
        """
        if target < self.latency_at_cutoff():
            return self.low
        return self.high


@dataclass(frozen=True)
class ContainerSpec:
    """Per-container resource configuration of one microservice."""

    cpu: float = 0.1
    memory_mb: float = 200.0

    def dominant_share(self, cluster_cpu: float, cluster_memory_mb: float) -> float:
        """Dominant resource demand R_i of paper Eq. 3."""
        return max(self.cpu / cluster_cpu, self.memory_mb / cluster_memory_mb)


@dataclass(frozen=True)
class MicroserviceProfile:
    """Everything the scaling models need to know about one microservice.

    Attributes:
        name: Microservice identifier.
        model: Interference-conditioned piecewise latency model.
        resource_demand: Dominant resource demand R_i (paper Eq. 3).  For
            single-resource reasoning this can simply be CPU cores per
            container.
        container: Raw container sizing, kept for provisioning.
    """

    name: str
    model: PiecewiseLatencyModel
    resource_demand: float = 1.0
    container: ContainerSpec = field(default_factory=ContainerSpec)

    def __post_init__(self) -> None:
        if self.resource_demand <= 0:
            raise ValueError(
                f"resource_demand of {self.name!r} must be positive, "
                f"got {self.resource_demand}"
            )


@dataclass(frozen=True)
class ServiceSpec:
    """One online service: its graph, workload, and SLA requirement.

    Attributes:
        name: Service identifier.
        graph: Dependency graph rooted at the entering microservice.
        workload: Request arrival rate in requests/minute.
        sla: End-to-end tail-latency SLA in milliseconds.
    """

    name: str
    graph: DependencyGraph
    workload: float
    sla: float

    def __post_init__(self) -> None:
        if self.workload < 0:
            raise ValueError(f"workload must be non-negative, got {self.workload}")
        if self.sla <= 0:
            raise ValueError(f"sla must be positive, got {self.sla}")

    def microservice_workloads(self) -> Dict[str, float]:
        """Total workload (req/min) each microservice receives from this service."""
        return {
            name: multiplier * self.workload
            for name, multiplier in self.graph.workload_multipliers().items()
        }


def containers_for_target(
    segment: LatencySegment, workload: float, target: float
) -> int:
    """Containers needed so predicted latency ≤ target (rounded up, ≥1).

    Solves ``slope * workload / n + intercept <= target`` for integer n.
    Raises :class:`InfeasibleSLAError` when the target is at or below the
    intercept — no finite number of containers can achieve it.
    """
    if workload <= 0:
        return 1
    headroom = target - segment.intercept
    if headroom <= 0:
        raise InfeasibleSLAError(
            f"latency target {target:.3f}ms is not above the intercept "
            f"{segment.intercept:.3f}ms; no container count can meet it"
        )
    return max(1, math.ceil(segment.slope * workload / headroom))


def best_effort_containers(
    model: PiecewiseLatencyModel, workload: float, target: float
) -> int:
    """Containers for an *externally imposed* latency target; never raises.

    Erms' own targets are consistent with the segment they were computed
    from, so the strict :func:`containers_for_target` applies.  Targets
    produced by other rules (the FCFS min-target at shared microservices,
    GrandSLAm/Rhythm proportional splits) can fall anywhere, including the
    discontinuity gap between the two fitted segments or below the idle-
    latency floor.  This helper resolves each regime conservatively:

    * ``target ≥ latency_at_cutoff`` — the high segment applies directly;
    * ``low.intercept < target < latency_at_cutoff`` — scale on the low
      segment: the tighter the target, the more containers.  Within the
      discontinuity gap (above the low segment's value at the cut-off) the
      per-container load is additionally kept at or below the cut-off,
      where the low segment is valid;
    * ``target ≤ low.intercept`` — unachievable at any scale: latency
      approaches the idle floor only asymptotically, so a real system
      overprovisions hard.  We bound the waste at 5 % knee utilization
      (20× the knee container count), mirroring an operator cap.

    When the model carries a ``max_load``, per-container load never
    exceeds it — the fit is not extrapolated past the observed range.
    """
    if workload <= 0:
        return 1
    if target >= model.latency_at_cutoff():
        count = containers_for_target(model.high, workload, target)
        if model.max_load is not None:
            count = max(count, math.ceil(workload / model.max_load))
        return count
    at_cutoff = max(1, math.ceil(workload / model.cutoff))
    headroom = target - model.low.intercept
    if headroom <= 0:
        return 20 * at_cutoff
    count = max(containers_for_target(model.low, workload, target), at_cutoff)
    return min(count, 20 * at_cutoff)


def best_effort_containers_array(
    model: PiecewiseLatencyModel, workloads, target: float
):
    """:func:`best_effort_containers` over a whole workload axis at once.

    Entry ``j`` equals ``best_effort_containers(model, workloads[j],
    target)`` exactly: every branch of the scalar helper is conditioned on
    the (scalar) target alone, so the branch is resolved once and each
    elementwise expression repeats the scalar arithmetic in the same
    operation order (``ceil(slope * w / headroom)`` etc.) on float64.
    Used by :func:`repro.core.latency_targets.compute_targets_grid` to
    turn one SLA column's target into container counts for every
    workload cell in a single numpy pass.

    Returns an ``int64`` array shaped like ``workloads``.
    """
    import numpy as np

    w = np.asarray(workloads, dtype=np.float64)
    out = np.ones(w.shape, dtype=np.int64)
    positive = w > 0
    if not positive.any():
        return out
    wp = w[positive]
    if target >= model.latency_at_cutoff():
        headroom = target - model.high.intercept
        # headroom > 0 always: latency_at_cutoff > intercept (slope, σ > 0).
        counts = np.maximum(
            1, np.ceil(model.high.slope * wp / headroom).astype(np.int64)
        )
        if model.max_load is not None:
            counts = np.maximum(
                counts, np.ceil(wp / model.max_load).astype(np.int64)
            )
    else:
        at_cutoff = np.maximum(
            1, np.ceil(wp / model.cutoff).astype(np.int64)
        )
        headroom = target - model.low.intercept
        if headroom <= 0:
            counts = 20 * at_cutoff
        else:
            counts = np.maximum(
                np.maximum(
                    1,
                    np.ceil(model.low.slope * wp / headroom).astype(np.int64),
                ),
                at_cutoff,
            )
            counts = np.minimum(counts, 20 * at_cutoff)
    out[positive] = counts
    return out


@dataclass
class Allocation:
    """Result of one scaling decision across all services.

    Attributes:
        containers: Final container count per microservice.
        targets: Final latency target (ms) per (service, microservice).
        priorities: Priority rank per (shared microservice, service); lower
            rank = scheduled first.  Empty when no microservice is shared.
        modified_workloads: Per (service, microservice) workload after the
            priority adjustment of §5.3.2 (only for shared microservices).
    """

    containers: Dict[str, int] = field(default_factory=dict)
    targets: Dict[str, Dict[str, float]] = field(default_factory=dict)
    priorities: Dict[str, Dict[str, int]] = field(default_factory=dict)
    modified_workloads: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def total_containers(self) -> int:
        """Total number of deployed containers."""
        return sum(self.containers.values())

    def total_resource_usage(
        self, profiles: Dict[str, MicroserviceProfile]
    ) -> float:
        """Objective of paper Eq. 2: Σ n_i · R_i."""
        return sum(
            count * profiles[name].resource_demand
            for name, count in self.containers.items()
        )
