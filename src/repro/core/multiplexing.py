"""Microservice multiplexing and priority scheduling (paper §2.3, §4.3, §5.3.2).

A microservice shared by several services must satisfy every service's SLA.
Erms assigns each service a *priority* at each shared microservice: services
whose independently-computed latency target at the shared microservice is
lower (i.e. services full of latency-sensitive microservices) are scheduled
first.  A service of priority rank r then experiences, at the shared
microservice, an effective workload equal to the sum of its own workload and
the workloads of all higher-priority services (Eqs. 13–14).  Latency targets
for every service are recomputed under these modified workloads, and the
shared microservice is scaled to the largest container count any service
requires.

The module also exposes the analytic resource-usage expressions of the
Theorem 1 proof (Eqs. 17–19) for the canonical two-service scenario of
Fig. 5, used by benchmarks and property tests to check the ordering
``RU_priority ≤ RU_non_sharing ≤ RU_fcfs_sharing``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.core.latency_targets import ServiceTargets, compute_service_targets
from repro.core.model import MicroserviceProfile, ServiceSpec


def shared_microservices(specs: Sequence[ServiceSpec]) -> Dict[str, List[str]]:
    """Microservices used by more than one service.

    Returns:
        Mapping from shared microservice name to the list of service names
        using it (in input order).
    """
    users: Dict[str, List[str]] = {}
    for spec in specs:
        for name in spec.graph.microservices():
            users.setdefault(name, []).append(spec.name)
    return {name: services for name, services in users.items() if len(services) > 1}


def assign_priorities(
    initial: Mapping[str, ServiceTargets],
    shared: Mapping[str, List[str]],
) -> Dict[str, Dict[str, int]]:
    """Per shared microservice, rank services by initial latency target.

    The service with the *lowest* target gets rank 0 (highest priority) —
    a low target signals many latency-sensitive microservices elsewhere in
    its graph, so its requests should be handled first (paper §5.3.2).
    Ties break by service name for determinism.

    Returns:
        ``{shared_ms: {service: rank}}`` with rank 0 scheduled first.
    """
    priorities: Dict[str, Dict[str, int]] = {}
    for ms_name, services in shared.items():
        ordered = sorted(
            services, key=lambda svc: (initial[svc].targets[ms_name], svc)
        )
        priorities[ms_name] = {svc: rank for rank, svc in enumerate(ordered)}
    return priorities


def modified_workloads(
    specs: Sequence[ServiceSpec],
    priorities: Mapping[str, Mapping[str, int]],
) -> Dict[str, Dict[str, float]]:
    """Effective workloads each service sees at shared microservices.

    For service k with rank r at shared microservice i, the modified
    workload is :math:`\\sum_{l: rank_l \\le r} \\gamma_{l,i}` — its own
    demand plus everything scheduled ahead of it (paper §5.3.2).

    Returns:
        ``{service: {shared_ms: effective_workload}}``.
    """
    by_name = {spec.name: spec for spec in specs}
    demands: Dict[str, Dict[str, float]] = {
        spec.name: spec.microservice_workloads() for spec in specs
    }
    result: Dict[str, Dict[str, float]] = {spec.name: {} for spec in specs}
    for ms_name, ranks in priorities.items():
        for service, rank in ranks.items():
            total = 0.0
            for other, other_rank in ranks.items():
                if other_rank <= rank:
                    total += demands[other].get(ms_name, 0.0)
            if service in by_name:
                result[service][ms_name] = total
    return result


@dataclass
class MultiplexedAllocation:
    """Outcome of the two-phase (initial + priority-adjusted) computation."""

    initial: Dict[str, ServiceTargets] = field(default_factory=dict)
    final: Dict[str, ServiceTargets] = field(default_factory=dict)
    priorities: Dict[str, Dict[str, int]] = field(default_factory=dict)
    overrides: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def containers(self) -> Dict[str, int]:
        """Final container count per microservice (max over services)."""
        merged: Dict[str, int] = {}
        for targets in self.final.values():
            for name, count in targets.containers.items():
                merged[name] = max(merged.get(name, 0), count)
        return merged


def scale_with_priorities(
    specs: Sequence[ServiceSpec],
    profiles: Mapping[str, MicroserviceProfile],
) -> MultiplexedAllocation:
    """Full Erms multi-service scaling (paper §5.3.2).

    Phase 1 computes per-service latency targets independently; phase 2
    derives priorities at each shared microservice from those targets,
    builds the modified workloads, and recomputes every service's targets.
    Non-shared services skip phase 2 — their allocation is already final.
    """
    allocation = MultiplexedAllocation()
    for spec in specs:
        allocation.initial[spec.name] = compute_service_targets(spec, profiles)

    shared = shared_microservices(specs)
    if not shared:
        allocation.final = dict(allocation.initial)
        return allocation

    allocation.priorities = assign_priorities(allocation.initial, shared)
    allocation.overrides = modified_workloads(specs, allocation.priorities)
    for spec in specs:
        overrides = allocation.overrides.get(spec.name) or None
        if overrides:
            allocation.final[spec.name] = compute_service_targets(
                spec, profiles, workload_overrides=overrides
            )
        else:
            allocation.final[spec.name] = allocation.initial[spec.name]
    return allocation


# ----------------------------------------------------------------------
# Theorem 1: analytic resource usage for the Fig. 5 two-service scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedScenario:
    """The canonical scenario of Fig. 5 and Appendix A.

    Service 1 calls U then shared P; service 2 calls H then shared P.
    Parameters are the slope ``a``, intercept ``b`` and resource demand
    ``R`` of each microservice, the two workloads, and the common SLA
    normalization of the proof (``SLA1 − b_u − b_p = SLA2 − b_h − b_p``).
    """

    a_u: float
    a_h: float
    a_p: float
    r_u: float
    r_h: float
    r_p: float
    gamma1: float
    gamma2: float
    budget: float  # SLA1 − b_u − b_p (= SLA2 − b_h − b_p in the proof)

    def __post_init__(self) -> None:
        for name in ("a_u", "a_h", "a_p", "r_u", "r_h", "r_p"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.gamma1 < 0 or self.gamma2 < 0:
            raise ValueError("workloads must be non-negative")
        if self.budget <= 0:
            raise ValueError("budget (SLA minus intercepts) must be positive")


def resource_usage_fcfs_sharing(s: SharedScenario) -> float:
    """RU^s of paper Eq. 17: shared P, FCFS, no prioritization."""
    inner = math.sqrt(
        s.a_u * s.gamma1 * s.r_u + s.a_h * s.gamma2 * s.r_h
    ) + math.sqrt(s.a_p * (s.gamma1 + s.gamma2) * s.r_p)
    return inner**2 / s.budget


def resource_usage_non_sharing(s: SharedScenario) -> float:
    """RU^n of paper Eq. 18: P's containers partitioned per service."""
    term1 = s.gamma1 * (math.sqrt(s.a_u * s.r_u) + math.sqrt(s.a_p * s.r_p)) ** 2
    term2 = s.gamma2 * (math.sqrt(s.a_h * s.r_h) + math.sqrt(s.a_p * s.r_p)) ** 2
    return (term1 + term2) / s.budget


def resource_usage_priority_bound(s: SharedScenario) -> float:
    """Upper bound on RU^o of paper Eq. 19: Erms priority scheduling.

    Service 1 (which contains the more sensitive U) gets priority at P;
    service 2 sees workload γ₁+γ₂ at P.  The bound solves the two SLA
    constraints independently.
    """
    low_priority = (
        math.sqrt(s.a_h * s.gamma2 * s.r_h)
        + math.sqrt(s.a_p * (s.gamma1 + s.gamma2) * s.r_p)
    ) ** 2 / s.budget
    high_priority = (
        s.a_u * s.gamma1 * s.r_u
        + math.sqrt(s.a_u * s.a_p * s.r_u * s.r_p) * s.gamma1
    ) / s.budget
    return low_priority + high_priority
