"""The Online Scaling pipeline (paper §3, §5.3).

``ErmsScaler`` is the top-level controller: given the current workload of
every service and the profiled latency models, it produces an
:class:`~repro.core.model.Allocation` — container counts, latency targets,
and scheduling priorities.  It chains the three Online Scaling components of
Fig. 6: graph merge, latency-target computation, and priority scheduling.

The module also defines the :class:`Autoscaler` interface shared with the
baseline schemes (GrandSLAm, Rhythm, Firm) so experiments can treat all
schemes uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Sequence

from repro.core.model import Allocation, MicroserviceProfile, ServiceSpec
from repro.core.multiplexing import scale_with_priorities


class Autoscaler(abc.ABC):
    """Common interface of all scaling schemes under evaluation.

    Implementations receive the full set of services (with their *current*
    workloads already filled in) and the microservice profiles, and return a
    complete allocation.  They are stateless between calls unless a scheme
    explicitly keeps history (Firm does).
    """

    #: Human-readable scheme name used in experiment reports.
    name: str = "autoscaler"

    #: Whether the scheme conditions its latency models on measured host
    #: interference.  Erms does (paper §5.2-5.3); GrandSLAm and Rhythm use
    #: fixed statistics regardless of interference (§2.2's critique);
    #: Firm observes real latency through its RL feedback loop, so it
    #: counts as aware.  Experiment harnesses hand non-aware schemes the
    #: idle-host profiles even when the cluster is colocated.
    interference_aware: bool = True

    @abc.abstractmethod
    def scale(
        self,
        specs: Sequence[ServiceSpec],
        profiles: Mapping[str, MicroserviceProfile],
    ) -> Allocation:
        """Compute container counts and latency targets for all services."""

    def reset(self) -> None:
        """Forget any cross-round state (a fresh deployment episode).

        Stateless schemes need not override this; Firm does.
        """

    def with_workloads(
        self, specs: Sequence[ServiceSpec], workloads: Mapping[str, float]
    ) -> Sequence[ServiceSpec]:
        """Helper: rebuild specs with updated per-service workloads."""
        return [
            replace(spec, workload=workloads.get(spec.name, spec.workload))
            for spec in specs
        ]


@dataclass
class ErmsScaler(Autoscaler):
    """Erms' Online Scaling module.

    Attributes:
        use_priority: When False, priority scheduling is disabled and every
            service keeps its phase-1 (FCFS) allocation — the "Latency
            Target Computation only" ablation of §6.4.1.  The shared
            microservice is then scaled to the *minimum* latency target
            across services, exactly the FCFS strategy of §2.3.
    """

    use_priority: bool = True
    name: str = "erms"

    def __post_init__(self) -> None:
        if not self.use_priority:
            self.name = "erms-fcfs"

    def scale(
        self,
        specs: Sequence[ServiceSpec],
        profiles: Mapping[str, MicroserviceProfile],
    ) -> Allocation:
        """Run the full (or priority-ablated) Erms scaling pipeline."""
        if self.use_priority:
            multiplexed = scale_with_priorities(specs, profiles)
            per_service = multiplexed.final
            priorities = multiplexed.priorities
            overrides = multiplexed.overrides
        else:
            multiplexed = scale_with_priorities(specs, profiles)
            per_service = multiplexed.initial
            priorities = {}
            overrides = {}

        allocation = Allocation(priorities=priorities)
        for service, targets in per_service.items():
            allocation.targets[service] = dict(targets.targets)
            allocation.modified_workloads[service] = {
                name: load
                for name, load in targets.workloads.items()
            }
            for name, count in targets.containers.items():
                current = allocation.containers.get(name, 0)
                allocation.containers[name] = max(current, count)

        if not self.use_priority:
            per_service_targets = {
                service: targets.targets for service, targets in per_service.items()
            }
            apply_fcfs_shared_scaling(
                specs, profiles, per_service_targets, allocation
            )
        return allocation


def combined_shared_workloads(specs: Sequence[ServiceSpec]) -> Dict[str, float]:
    """Total workload per microservice summed over all services.

    Under FCFS every request class mixes in one queue, so a shared
    microservice effectively processes the combined demand.
    """
    combined: Dict[str, float] = {}
    for spec in specs:
        for name, demand in spec.microservice_workloads().items():
            combined[name] = combined.get(name, 0.0) + demand
    return combined


def apply_fcfs_shared_scaling(
    specs: Sequence[ServiceSpec],
    profiles: Mapping[str, MicroserviceProfile],
    per_service_targets: Mapping[str, Mapping[str, float]],
    allocation: Allocation,
) -> None:
    """FCFS at shared microservices (§2.3 strategy ①).

    Without prioritization a shared microservice must process the
    *combined* workload while meeting the *minimum* latency target any
    service assigned to it: ``T_P = min(T_1^P, T_2^P)``.  Updates
    ``allocation.containers`` in place.
    """
    from repro.core.model import best_effort_containers

    combined = combined_shared_workloads(specs)
    min_target: Dict[str, float] = {}
    count_users: Dict[str, int] = {}
    for spec in specs:
        targets = per_service_targets[spec.name]
        for name in spec.graph.microservices():
            count_users[name] = count_users.get(name, 0) + 1
            target = targets[name]
            if name not in min_target or target < min_target[name]:
                min_target[name] = target

    for name, users in count_users.items():
        if users < 2:
            continue
        needed = best_effort_containers(
            profiles[name].model, combined[name], min_target[name]
        )
        allocation.containers[name] = max(
            allocation.containers.get(name, 0), needed
        )


def delta_schedule_probabilities(
    ranks: Mapping[str, int], delta: float = 0.05
) -> Dict[str, float]:
    """Thread-assignment probabilities of §5.3.2.

    The service with the highest priority (rank 0) is picked with
    probability ``1 − δ``, rank l with ``δ^l · (1 − δ)``, and the lowest
    rank with the remaining ``δ^(n−1)`` so probabilities sum to one.
    """
    if not 0 <= delta < 1:
        raise ValueError(f"delta must be in [0, 1), got {delta}")
    n = len(ranks)
    probabilities: Dict[str, float] = {}
    for service, rank in ranks.items():
        if rank == n - 1:
            probabilities[service] = delta ** (n - 1)
        else:
            probabilities[service] = (delta**rank) * (1 - delta)
    return probabilities


@dataclass
class ScalingReport:
    """Summary of one scaling decision for logging and experiments."""

    scheme: str
    total_containers: int
    total_resource: float
    per_microservice: Dict[str, int]
    priorities: Dict[str, Dict[str, int]]

    @classmethod
    def from_allocation(
        cls,
        scheme: str,
        allocation: Allocation,
        profiles: Mapping[str, MicroserviceProfile],
    ) -> "ScalingReport":
        return cls(
            scheme=scheme,
            total_containers=allocation.total_containers(),
            total_resource=allocation.total_resource_usage(dict(profiles)),
            per_microservice=dict(allocation.containers),
            priorities={k: dict(v) for k, v in allocation.priorities.items()},
        )
