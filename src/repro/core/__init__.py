"""Erms core: the paper's primary contribution.

Submodules:

* :mod:`repro.core.model` — latency/resource model types (piecewise linear
  tail latency, dominant resource demand, service specs, allocations).
* :mod:`repro.core.merge` — dependency-graph merge into virtual
  microservices (paper §4.2, Algorithm 1, Eqs. 6–12).
* :mod:`repro.core.latency_targets` — optimal latency-target computation
  via the KKT closed form (Eq. 5) with §5.3.1 interval selection.
* :mod:`repro.core.multiplexing` — priority scheduling at shared
  microservices (Eqs. 13–14) and the Theorem 1 analytics.
* :mod:`repro.core.scaling` — the ``ErmsScaler`` pipeline and the common
  ``Autoscaler`` interface.
* :mod:`repro.core.provisioning` — interference-aware container placement
  with POP host-group decomposition (§5.4).
* :mod:`repro.core.controller` — the periodic ``ErmsController`` tying
  profiling, scaling, provisioning, and deployment together (Fig. 6).
"""

from repro.core.model import (
    Allocation,
    ContainerSpec,
    InfeasibleSLAError,
    LatencySegment,
    MicroserviceProfile,
    PiecewiseLatencyModel,
    ServiceSpec,
    containers_for_target,
)
from repro.core.merge import (
    MergedNode,
    MergeKind,
    MergeTreeCache,
    VirtualParams,
    clear_merge_cache,
    distribute_targets,
    distribute_targets_batch,
    merge_graph,
    merge_tree_cache,
    parallel_merge,
    sequential_merge,
)
from repro.core.latency_targets import (
    GridTargets,
    ServiceTargets,
    clear_targets_memo,
    compute_service_targets,
    compute_targets_grid,
    predicted_end_to_end,
    set_targets_memo,
    targets_memo_stats,
)
from repro.core.multiplexing import (
    MultiplexedAllocation,
    SharedScenario,
    assign_priorities,
    modified_workloads,
    resource_usage_fcfs_sharing,
    resource_usage_non_sharing,
    resource_usage_priority_bound,
    scale_with_priorities,
    shared_microservices,
)
from repro.core.scaling import (
    Autoscaler,
    ErmsScaler,
    ScalingReport,
    delta_schedule_probabilities,
)
from repro.core.controller import ControllerReport, ErmsController
from repro.core.provisioning import (
    Cluster,
    ClusterIndex,
    Host,
    InterferenceAwareProvisioner,
    KubernetesDefaultProvisioner,
    PlacementAction,
    PlacementPlan,
    Provisioner,
)

__all__ = [
    "Allocation",
    "ContainerSpec",
    "InfeasibleSLAError",
    "LatencySegment",
    "MicroserviceProfile",
    "PiecewiseLatencyModel",
    "ServiceSpec",
    "containers_for_target",
    "MergedNode",
    "MergeKind",
    "MergeTreeCache",
    "VirtualParams",
    "clear_merge_cache",
    "distribute_targets",
    "distribute_targets_batch",
    "merge_graph",
    "merge_tree_cache",
    "parallel_merge",
    "sequential_merge",
    "GridTargets",
    "ServiceTargets",
    "clear_targets_memo",
    "compute_service_targets",
    "compute_targets_grid",
    "predicted_end_to_end",
    "set_targets_memo",
    "targets_memo_stats",
    "MultiplexedAllocation",
    "SharedScenario",
    "assign_priorities",
    "modified_workloads",
    "resource_usage_fcfs_sharing",
    "resource_usage_non_sharing",
    "resource_usage_priority_bound",
    "scale_with_priorities",
    "shared_microservices",
    "Autoscaler",
    "ErmsScaler",
    "ScalingReport",
    "delta_schedule_probabilities",
    "ControllerReport",
    "ErmsController",
    "Cluster",
    "ClusterIndex",
    "Host",
    "InterferenceAwareProvisioner",
    "KubernetesDefaultProvisioner",
    "PlacementAction",
    "PlacementPlan",
    "Provisioner",
]
