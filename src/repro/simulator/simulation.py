"""The cluster simulator: request lifecycles over dependency graphs.

One simulation run models a fixed allocation (containers per microservice,
optionally with per-container interference multipliers from a placement)
serving one or more services whose requests arrive as a Poisson process.

Request lifecycle at a call node:

1. the request joins the queue of one of the microservice's containers
   (round-robin across containers, like an L4 load balancer);
2. when a thread frees, the container's queue policy (FCFS or δ-priority)
   picks the next job; the thread is held for an exponentially distributed
   processing time with mean ``base_service_ms × host multiplier``;
3. the thread is released, downstream stages execute (all calls of a stage
   in parallel, stages in sequence), and the response propagates upward.

The *own latency* of a microservice — queueing plus processing — matches
the quantity the tracing coordinator extracts via paper Eq. 1, and its
P95-vs-load curve has the paper's piecewise-linear shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.model import ServiceSpec
from repro.graphs import CallNode
from repro.simulator.events import EventQueue
from repro.simulator.scheduler import FCFSQueue, PriorityQueuePolicy, QueuePolicy

#: Request arrival rate: requests/minute, constant or a function of the
#: current minute (for dynamic workloads).
RateSpec = Union[float, Callable[[float], float]]

_MS_PER_MINUTE = 60_000.0


@dataclass(frozen=True)
class SimulatedMicroservice:
    """Ground-truth performance parameters of one microservice.

    Attributes:
        name: Microservice name (must match graph node names).
        base_service_ms: Mean processing time on an idle host.
        threads: Worker threads per container (the paper's explanation for
            the cut-off point: beyond thread saturation, queueing begins).
    """

    name: str
    base_service_ms: float = 2.0
    threads: int = 4

    def __post_init__(self) -> None:
        if self.base_service_ms <= 0:
            raise ValueError(
                f"base_service_ms of {self.name!r} must be positive"
            )
        if self.threads < 1:
            raise ValueError(f"threads of {self.name!r} must be >= 1")


@dataclass
class SimulationConfig:
    """Run-level knobs."""

    duration_min: float = 5.0
    warmup_min: float = 0.5
    seed: int = 0
    delta: float = 0.05
    scheduling: str = "fcfs"  # "fcfs" | "priority"
    drain: bool = True  # let in-flight requests finish after arrivals stop
    record_own_latency: bool = True

    def __post_init__(self) -> None:
        if self.duration_min <= 0:
            raise ValueError("duration_min must be positive")
        if not 0 <= self.warmup_min < self.duration_min:
            raise ValueError("warmup_min must be in [0, duration_min)")
        if self.scheduling not in ("fcfs", "priority"):
            raise ValueError(
                f"scheduling must be 'fcfs' or 'priority', got {self.scheduling!r}"
            )


class _Job:
    """One call awaiting processing at a container."""

    __slots__ = ("service", "node", "arrival", "on_processed")

    def __init__(
        self,
        service: str,
        node: CallNode,
        arrival: float,
        on_processed: Callable[[float, float], None],
    ):
        self.service = service
        self.node = node
        self.arrival = arrival
        self.on_processed = on_processed


class _Container:
    """A container: thread pool + queue policy + interference multiplier.

    ``multiplier`` may be a float (static colocation level) or a callable
    of the current simulation minute (iBench-style injection schedules,
    paper §6.2 fixes a level per hour).
    """

    __slots__ = ("queue", "free_threads", "multiplier")

    def __init__(self, queue: QueuePolicy, threads: int, multiplier):
        self.queue = queue
        self.free_threads = threads
        self.multiplier = multiplier

    def multiplier_at(self, now_ms: float) -> float:
        if callable(self.multiplier):
            return float(self.multiplier(now_ms / _MS_PER_MINUTE))
        return float(self.multiplier)


class _MicroserviceState:
    """All containers of one microservice plus dispatch bookkeeping."""

    __slots__ = ("spec", "containers", "_next")

    def __init__(self, spec: SimulatedMicroservice, containers: List[_Container]):
        self.spec = spec
        self.containers = containers
        self._next = 0

    def pick(self) -> _Container:
        if self._next >= len(self.containers):
            self._next = 0
        container = self.containers[self._next]
        self._next = (self._next + 1) % len(self.containers)
        return container

    def add(self, container: _Container) -> None:
        self.containers.append(container)

    def remove_last(self) -> _Container:
        """Take one container out of rotation (it keeps finishing work)."""
        if len(self.containers) <= 1:
            raise ValueError("cannot remove the last container")
        return self.containers.pop()


@dataclass
class SimulationResult:
    """Everything measured during one run."""

    duration_min: float
    warmup_min: float
    generated: Dict[str, int] = field(default_factory=dict)
    completed: Dict[str, int] = field(default_factory=dict)
    #: Per service: (completion minute, end-to-end latency ms) pairs.
    end_to_end: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: Per microservice: (minute, own latency ms) pairs.
    own_latency: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: Per microservice: calls completed per minute index.
    calls_per_minute: Dict[str, Dict[int, int]] = field(default_factory=dict)
    containers: Dict[str, int] = field(default_factory=dict)

    def latencies(self, service: str, include_warmup: bool = False) -> np.ndarray:
        """End-to-end latency samples of one service (post-warmup)."""
        samples = self.end_to_end.get(service, [])
        if include_warmup:
            return np.array([latency for _, latency in samples])
        return np.array(
            [lat for minute, lat in samples if minute >= self.warmup_min]
        )

    def tail_latency(self, service: str, percentile: float = 95.0) -> float:
        """P-th percentile end-to-end latency of one service."""
        values = self.latencies(service)
        if len(values) == 0:
            raise ValueError(f"no completed requests for service {service!r}")
        return float(np.percentile(values, percentile))

    def sla_violation_rate(self, service: str, sla: float) -> float:
        """Fraction of post-warmup requests exceeding ``sla`` ms."""
        values = self.latencies(service)
        if len(values) == 0:
            raise ValueError(f"no completed requests for service {service!r}")
        return float(np.mean(values > sla))

    def own_latency_percentile(
        self, microservice: str, percentile: float = 95.0
    ) -> float:
        samples = [
            lat
            for minute, lat in self.own_latency.get(microservice, [])
            if minute >= self.warmup_min
        ]
        if not samples:
            raise ValueError(f"no own-latency samples for {microservice!r}")
        return float(np.percentile(samples, percentile))

    def to_metrics_store(
        self,
        cpu_utilization: float = 0.0,
        memory_utilization: float = 0.0,
        host_id: str = "sim-host",
    ):
        """Export the run's telemetry as a Prometheus-like MetricsStore.

        Bridges the simulator to the offline-profiling pipeline (§5.2):
        per-request own latencies become latency observations, per-minute
        completion counts become call-count samples (normalized by the
        container count), and the given host utilization is recorded once
        per minute.  Requires the run to have used
        ``record_own_latency=True``.
        """
        from repro.tracing.metrics import MetricsStore

        store = MetricsStore()
        # Only full steady-state minutes: warmup transients and the
        # post-arrival drain tail would otherwise produce partial windows
        # that corrupt the piecewise fit.
        first = self.warmup_min
        last = self.duration_min
        for name, samples in self.own_latency.items():
            for minute, latency in samples:
                if first <= minute < last:
                    store.record_latency(minute, name, latency)
        for name, per_minute in self.calls_per_minute.items():
            containers = max(self.containers.get(name, 1), 1)
            for minute, calls in per_minute.items():
                if first <= minute < last:
                    store.record_calls(
                        float(minute), name, float(calls), containers
                    )
        for minute in range(int(last) + 1):
            store.record_utilization(
                float(minute), host_id, cpu_utilization, memory_utilization
            )
        return store


class ClusterSimulator:
    """Simulates a fixed allocation serving several services.

    Args:
        services: Service specs (graph + SLA); arrival rates come from
            ``rates`` so the same specs can be replayed at many workloads.
        microservices: Ground-truth performance parameters by name.
        containers: Containers per microservice (or per-container
            multiplier lists via ``container_multipliers``).
        rates: Per-service arrival rate (req/min), constant or callable.
        config: Run configuration.
        priorities: Per shared microservice, service priority ranks
            (required when ``config.scheduling == "priority"``).
        container_multipliers: Optional explicit per-container service-time
            multipliers, e.g. derived from a placement via
            :class:`~repro.simulator.interference.InterferenceModel`;
            overrides ``containers`` counts for listed microservices.
    """

    def __init__(
        self,
        services: Sequence[ServiceSpec],
        microservices: Mapping[str, SimulatedMicroservice],
        containers: Mapping[str, int],
        rates: Mapping[str, RateSpec],
        config: Optional[SimulationConfig] = None,
        priorities: Optional[Mapping[str, Mapping[str, int]]] = None,
        container_multipliers: Optional[Mapping[str, Sequence[float]]] = None,
    ):
        self.services = list(services)
        self.config = config or SimulationConfig()
        self.priorities = {k: dict(v) for k, v in (priorities or {}).items()}
        self.rng = np.random.default_rng(self.config.seed)
        self.events = EventQueue()
        self.result = SimulationResult(
            duration_min=self.config.duration_min,
            warmup_min=self.config.warmup_min,
        )
        self._rates: Dict[str, RateSpec] = dict(rates)
        self._arrivals_open = True

        self._microservices: Dict[str, _MicroserviceState] = {}
        needed = {
            name for spec in self.services for name in spec.graph.microservices()
        }
        for name in sorted(needed):
            if name not in microservices:
                raise ValueError(f"no SimulatedMicroservice for {name!r}")
            spec = microservices[name]
            multipliers = None
            if container_multipliers and name in container_multipliers:
                multipliers = [
                    m if callable(m) else float(m)
                    for m in container_multipliers[name]
                ]
                if not multipliers:
                    raise ValueError(
                        f"container_multipliers for {name!r} is empty"
                    )
            else:
                count = containers.get(name, 1)
                if count < 1:
                    raise ValueError(
                        f"container count for {name!r} must be >= 1, got {count}"
                    )
                multipliers = [1.0] * count
            container_objs = [
                _Container(self._make_queue(name), spec.threads, multiplier)
                for multiplier in multipliers
            ]
            self._microservices[name] = _MicroserviceState(spec, container_objs)
            self.result.containers[name] = len(container_objs)

    def _make_queue(self, microservice: str) -> QueuePolicy:
        if self.config.scheduling == "priority":
            ranks = self.priorities.get(microservice)
            if ranks:
                return PriorityQueuePolicy(
                    ranks, delta=self.config.delta, rng=self.rng
                )
        return FCFSQueue()

    # ------------------------------------------------------------------
    # Dynamic scaling (used by the in-simulation autoscaling loop)
    # ------------------------------------------------------------------
    def container_count(self, microservice: str) -> int:
        """Containers currently in rotation for one microservice."""
        return len(self._microservices[microservice].containers)

    def scale_container_count(
        self,
        microservice: str,
        target: int,
        startup_delay_ms: float = 0.0,
        multiplier: float = 1.0,
    ) -> None:
        """Scale a microservice to ``target`` containers at runtime.

        New containers join the rotation after ``startup_delay_ms`` (cold
        start).  Removed containers leave the rotation immediately: their
        queued jobs are redistributed and in-flight work finishes.  The
        floor is one container.
        """
        if target < 1:
            raise ValueError(f"target must be >= 1, got {target}")
        state = self._microservices[microservice]
        delta = target - len(state.containers)
        for _ in range(max(delta, 0)):
            container = _Container(
                self._make_queue(microservice), state.spec.threads, multiplier
            )

            def _join(_t: float, c: _Container = container) -> None:
                state.add(c)
                self.result.containers[microservice] = len(state.containers)

            if startup_delay_ms > 0:
                self.events.schedule_in(startup_delay_ms, _join)
            else:
                _join(self.events.now)
        for _ in range(max(-delta, 0)):
            if len(state.containers) <= 1:
                break
            removed = state.remove_last()
            while True:
                job = removed.queue.pop()
                if job is None:
                    break
                replacement = state.pick()
                replacement.queue.push(job, job.service)
                self._dispatch(state, replacement)
        self.result.containers[microservice] = len(state.containers)

    def inject_container_failure(
        self, microservice: str, retry: bool = True
    ) -> int:
        """Kill one container (crash/OOM/node loss).

        The container leaves the rotation immediately; requests already
        being processed finish (connection-drain approximation).  With
        ``retry`` (the default — microservice RPC clients retry), its
        queued jobs are re-enqueued on surviving containers; without it
        they are dropped and the affected requests never complete
        (visible as ``generated > completed``).

        Returns the number of queued jobs affected.  The last container
        of a microservice cannot be killed.
        """
        state = self._microservices[microservice]
        removed = state.remove_last()
        affected = 0
        while True:
            job = removed.queue.pop()
            if job is None:
                break
            affected += 1
            if retry:
                replacement = state.pick()
                replacement.queue.push(job, job.service)
                self._dispatch(state, replacement)
        self.result.containers[microservice] = len(state.containers)
        return affected

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Generate arrivals, process all events, return the result."""
        duration_ms = self.config.duration_min * _MS_PER_MINUTE
        for spec in self.services:
            self.result.generated[spec.name] = 0
            self.result.completed[spec.name] = 0
            self.result.end_to_end[spec.name] = []
            self._schedule_next_arrival(spec, 0.0, duration_ms)

        self.events.run_until(duration_ms)
        self._arrivals_open = False
        if self.config.drain:
            self.events.run_until(float("inf"))
        return self.result

    def _schedule_next_arrival(
        self, spec: ServiceSpec, now: float, end_ms: float
    ) -> None:
        rate_spec = self._rates.get(spec.name, 0.0)
        minute = now / _MS_PER_MINUTE
        rate = rate_spec(minute) if callable(rate_spec) else float(rate_spec)
        if rate <= 0.0:
            # Re-probe one minute later (a dynamic rate may become positive).
            if callable(rate_spec) and now + _MS_PER_MINUTE <= end_ms:
                self.events.schedule(
                    now + _MS_PER_MINUTE,
                    lambda t, s=spec, e=end_ms: self._schedule_next_arrival(s, t, e),
                )
            return
        gap = self.rng.exponential(_MS_PER_MINUTE / rate)
        arrival = now + gap
        if arrival > end_ms:
            return

        def _arrive(t: float, s: ServiceSpec = spec, e: float = end_ms) -> None:
            self.result.generated[s.name] += 1
            self._spawn_request(s, t)
            self._schedule_next_arrival(s, t, e)

        self.events.schedule(arrival, _arrive)

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def _spawn_request(self, spec: ServiceSpec, t: float) -> None:
        def _done(finish: float) -> None:
            minute = finish / _MS_PER_MINUTE
            self.result.completed[spec.name] += 1
            self.result.end_to_end[spec.name].append((minute, finish - t))

        self._execute_node(spec.name, spec.graph.root, t, _done)

    def _execute_node(
        self,
        service: str,
        node: CallNode,
        t: float,
        done: Callable[[float], None],
    ) -> None:
        state = self._microservices[node.microservice]

        def _processed(start: float, finish: float) -> None:
            if self.config.record_own_latency:
                minute = finish / _MS_PER_MINUTE
                self.result.own_latency.setdefault(
                    node.microservice, []
                ).append((minute, finish - t))
                per_minute = self.result.calls_per_minute.setdefault(
                    node.microservice, {}
                )
                per_minute[int(minute)] = per_minute.get(int(minute), 0) + 1
            self._run_stages(service, node, 0, finish, done)

        container = state.pick()
        job = _Job(service, node, t, _processed)
        container.queue.push(job, service)
        self._dispatch(state, container)

    def _dispatch(self, state: _MicroserviceState, container: _Container) -> None:
        while container.free_threads > 0 and len(container.queue) > 0:
            job = container.queue.pop()
            if job is None:
                break
            container.free_threads -= 1
            mean = state.spec.base_service_ms * container.multiplier_at(
                self.events.now
            )
            processing = self.rng.exponential(mean)
            start = self.events.now

            def _complete(
                finish: float,
                job_: "_Job" = job,
                container_: _Container = container,
                state_: _MicroserviceState = state,
                start_: float = start,
            ) -> None:
                container_.free_threads += 1
                job_.on_processed(start_, finish)
                self._dispatch(state_, container_)

            self.events.schedule_in(processing, _complete)

    def _run_stages(
        self,
        service: str,
        node: CallNode,
        stage_index: int,
        t: float,
        done: Callable[[float], None],
    ) -> None:
        if stage_index >= len(node.stages):
            done(t)
            return
        stage = node.stages[stage_index]
        calls: List[CallNode] = []
        for child in stage:
            copies = max(1, int(round(child.calls_per_request)))
            calls.extend([child] * copies)
        pending = len(calls)
        latest = t

        def _child_done(finish: float) -> None:
            nonlocal pending, latest
            pending -= 1
            latest = max(latest, finish)
            if pending == 0:
                self._run_stages(service, node, stage_index + 1, latest, done)

        for child in calls:
            self._execute_node(service, child, t, _child_done)
