"""The cluster simulator: request lifecycles over dependency graphs.

One simulation run models a fixed allocation (containers per microservice,
optionally with per-container interference multipliers from a placement)
serving one or more services whose requests arrive as a Poisson process.

Request lifecycle at a call node:

1. the request joins the queue of one of the microservice's containers
   (round-robin across containers, like an L4 load balancer);
2. when a thread frees, the container's queue policy (FCFS or δ-priority)
   picks the next job; the thread is held for an exponentially distributed
   processing time with mean ``base_service_ms × host multiplier``;
3. the thread is released, downstream stages execute (all calls of a stage
   in parallel, stages in sequence), and the response propagates upward.

The *own latency* of a microservice — queueing plus processing — matches
the quantity the tracing coordinator extracts via paper Eq. 1, and its
P95-vs-load curve has the paper's piecewise-linear shape.

Engine fast path
----------------

The hot loop avoids per-event closure allocation: arrivals, completions,
and stage joins are ``__slots__`` record objects whose ``__call__`` the
:class:`~repro.simulator.events.EventQueue` dispatches directly, and
completion records are recycled through a free list.  RNG draws are
batched: unit exponentials per microservice (service times) and
pre-scaled inter-arrival gaps per service (static rates) are drawn in
vectorized numpy blocks, refilled on exhaustion.  Containers with a
static interference multiplier precompute their mean service time so the
``callable()`` check never touches the per-job path.  Latency samples
append to flat ``array('d')`` column buffers; the tuple-list views
(``end_to_end``, ``own_latency``) are materialized lazily.  For a fixed
seed the engine remains fully deterministic, but its draw order differs
from the pre-fast-path engine, so sample streams match only within the
same engine version (pinned by ``tests/test_determinism_golden.py``).

Live telemetry
--------------

Passing a :class:`~repro.telemetry.TelemetrySink` as ``telemetry=``
instruments the run: requests emit CLIENT/SERVER span pairs per call,
completions stream own latencies and per-minute call counts into a live
``MetricsStore``, a per-window tick snapshots engine health and closes
SLA windows, and ``scale_container_count`` records audit entries.  The
sink never touches the engine RNG, so the pinned golden streams hold
with telemetry on or off.  With ``telemetry=None`` (the default) each
hot loop pays exactly one ``is not None`` branch and nothing else — the
``telemetry_overhead`` perf benchmark guards that.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from dataclasses import dataclass
from heapq import heappush
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.model import ServiceSpec
from repro.graphs import CallNode
from repro.simulator.events import EventQueue
from repro.simulator.scheduler import FCFSQueue, PriorityQueuePolicy, QueuePolicy

if TYPE_CHECKING:  # avoid a runtime import cycle; the sink is duck-typed
    from repro.resilience.chaos import ChaosSchedule
    from repro.resilience.policies import ResiliencePolicies
    from repro.telemetry.hooks import TelemetrySink

#: Request arrival rate: requests/minute, constant or a function of the
#: current minute (for dynamic workloads).
RateSpec = Union[float, Callable[[float], float]]

_MS_PER_MINUTE = 60_000.0
_RNG_BLOCK = 1024  # exponential draws per vectorized refill


@dataclass(frozen=True)
class SimulatedMicroservice:
    """Ground-truth performance parameters of one microservice.

    Attributes:
        name: Microservice name (must match graph node names).
        base_service_ms: Mean processing time on an idle host.
        threads: Worker threads per container (the paper's explanation for
            the cut-off point: beyond thread saturation, queueing begins).
    """

    name: str
    base_service_ms: float = 2.0
    threads: int = 4

    def __post_init__(self) -> None:
        if self.base_service_ms <= 0:
            raise ValueError(
                f"base_service_ms of {self.name!r} must be positive"
            )
        if self.threads < 1:
            raise ValueError(f"threads of {self.name!r} must be >= 1")


@dataclass
class SimulationConfig:
    """Run-level knobs."""

    duration_min: float = 5.0
    warmup_min: float = 0.5
    seed: int = 0
    delta: float = 0.05
    scheduling: str = "fcfs"  # "fcfs" | "priority"
    drain: bool = True  # let in-flight requests finish after arrivals stop
    record_own_latency: bool = True

    def __post_init__(self) -> None:
        if self.duration_min <= 0:
            raise ValueError("duration_min must be positive")
        if not 0 <= self.warmup_min < self.duration_min:
            raise ValueError("warmup_min must be in [0, duration_min)")
        if self.scheduling not in ("fcfs", "priority"):
            raise ValueError(
                f"scheduling must be 'fcfs' or 'priority', got {self.scheduling!r}"
            )


class _Job:
    """One call awaiting processing at a container."""

    __slots__ = ("service", "node", "arrival", "done")

    def __init__(
        self,
        service: str,
        node: CallNode,
        arrival: float,
        done: Callable[[float], None],
    ):
        self.service = service
        self.node = node
        self.arrival = arrival
        self.done = done


class _Container:
    """A container: thread pool + queue policy + interference multiplier.

    ``multiplier`` may be a float (static colocation level) or a callable
    of the current simulation minute (iBench-style injection schedules,
    paper §6.2 fixes a level per hour).  The static case precomputes
    ``mean_ms`` so the dispatch loop never re-checks ``callable()``;
    ``fifo`` exposes the FCFS deque directly so the dominant policy skips
    two method calls per job.
    """

    __slots__ = ("queue", "fifo", "free_threads", "multiplier", "static_mult", "mean_ms")

    def __init__(self, queue: QueuePolicy, threads: int, base_ms: float, multiplier):
        self.queue = queue
        self.fifo = queue._queue if type(queue) is FCFSQueue else None
        self.free_threads = threads
        if callable(multiplier):
            self.multiplier = multiplier
            self.static_mult = None
            self.mean_ms = None
        else:
            self.multiplier = float(multiplier)
            self.static_mult = float(multiplier)
            self.mean_ms = base_ms * float(multiplier)

    def multiplier_at(self, now_ms: float) -> float:
        if self.static_mult is not None:
            return self.static_mult
        return float(self.multiplier(now_ms / _MS_PER_MINUTE))


class _MicroserviceState:
    """All containers of one microservice plus dispatch bookkeeping."""

    __slots__ = (
        "spec",
        "containers",
        "_next",
        "base_ms",
        "exp_buf",
        "exp_i",
        "own_min",
        "own_lat",
        "per_minute",
    )

    def __init__(self, spec: SimulatedMicroservice, containers: List[_Container]):
        self.spec = spec
        self.containers = containers
        self._next = 0
        self.base_ms = spec.base_service_ms
        self.exp_buf: List[float] = []  # unit exponentials (service times)
        self.exp_i = 0
        self.own_min: Optional[array] = None  # wired when recording
        self.own_lat: Optional[array] = None
        self.per_minute: Optional[Dict[int, int]] = None

    def pick(self) -> _Container:
        containers = self.containers
        index = self._next
        if index >= len(containers):
            index = 0
        self._next = index + 1
        return containers[index]

    def add(self, container: _Container) -> None:
        self.containers.append(container)

    def remove_last(self) -> _Container:
        """Take one container out of rotation (it keeps finishing work)."""
        if len(self.containers) <= 1:
            raise ValueError("cannot remove the last container")
        return self.containers.pop()


class SimulationResult:
    """Everything measured during one run.

    The recording hot path appends to flat ``array('d')`` column buffers;
    ``end_to_end`` and ``own_latency`` materialize the familiar
    ``{name: [(minute, latency_ms), ...]}`` views lazily on access, and
    ``latencies()`` / ``own_latency_percentile()`` read the columns
    directly without building tuples.
    """

    def __init__(self, duration_min: float, warmup_min: float):
        self.duration_min = duration_min
        self.warmup_min = warmup_min
        self.generated: Dict[str, int] = {}
        self.completed: Dict[str, int] = {}
        #: Per microservice: calls completed per minute index.
        self.calls_per_minute: Dict[str, Dict[int, int]] = {}
        self.containers: Dict[str, int] = {}
        #: Events the engine processed to produce this result (perf metric).
        self.events_processed: int = 0
        #: Per service: queued calls lost to a ``retry=False`` container
        #: kill (an upper bound on lost requests — a fan-out request can
        #: lose several calls).  Previously only inferable from
        #: ``generated > completed``.
        self.dropped_requests: Dict[str, int] = {}
        #: Per service: requests rejected at arrival by admission control.
        self.shed_requests: Dict[str, int] = {}
        #: Per service: requests that failed after exhausting resilience
        #: policies (injected errors / timeouts / open breakers).
        self.failed_requests: Dict[str, int] = {}
        #: Resilience-layer counters (``ResilienceStats.to_dict``) when a
        #: chaos schedule or policy bundle was attached; ``None`` otherwise.
        self.resilience: Optional[Dict[str, int]] = None
        self._e2e: Dict[str, Tuple[array, array]] = {}
        self._own: Dict[str, Tuple[array, array]] = {}

    def __repr__(self) -> str:
        return (
            f"SimulationResult(duration_min={self.duration_min}, "
            f"warmup_min={self.warmup_min}, generated={self.generated}, "
            f"completed={self.completed}, containers={self.containers})"
        )

    # -- column buffers (engine-internal) ------------------------------
    def _e2e_buffers(self, service: str) -> Tuple[array, array]:
        pair = self._e2e.get(service)
        if pair is None:
            pair = self._e2e[service] = (array("d"), array("d"))
        return pair

    def _own_buffers(self, name: str) -> Tuple[array, array]:
        pair = self._own.get(name)
        if pair is None:
            pair = self._own[name] = (array("d"), array("d"))
        return pair

    # -- tuple-list views (lazy; same shape as the pre-fast-path engine)
    @property
    def end_to_end(self) -> Dict[str, List[Tuple[float, float]]]:
        """Per service: (completion minute, end-to-end latency ms) pairs."""
        return {
            service: list(zip(minutes, values))
            for service, (minutes, values) in self._e2e.items()
        }

    @property
    def own_latency(self) -> Dict[str, List[Tuple[float, float]]]:
        """Per microservice: (minute, own latency ms) pairs."""
        return {
            name: list(zip(minutes, values))
            for name, (minutes, values) in self._own.items()
        }

    # -- measurements ---------------------------------------------------
    def latencies(self, service: str, include_warmup: bool = False) -> np.ndarray:
        """End-to-end latency samples of one service (post-warmup)."""
        pair = self._e2e.get(service)
        if pair is None:
            return np.array([])
        minutes_arr, values_arr = pair
        values = np.frombuffer(values_arr, dtype=np.float64)
        if include_warmup:
            return values.copy()
        minutes = np.frombuffer(minutes_arr, dtype=np.float64)
        return values[minutes >= self.warmup_min]

    def tail_latency(self, service: str, percentile: float = 95.0) -> float:
        """P-th percentile end-to-end latency of one service."""
        values = self.latencies(service)
        if len(values) == 0:
            raise ValueError(f"no completed requests for service {service!r}")
        return float(np.percentile(values, percentile))

    def sla_violation_rate(self, service: str, sla: float) -> float:
        """Fraction of post-warmup requests exceeding ``sla`` ms."""
        values = self.latencies(service)
        if len(values) == 0:
            raise ValueError(f"no completed requests for service {service!r}")
        return float(np.mean(values > sla))

    def violation_rate_by_window(
        self,
        service: str,
        sla: float,
        window_min: float = 1.0,
        include_warmup: bool = True,
    ) -> Dict[int, float]:
        """Per-window fraction of requests exceeding ``sla`` ms.

        The windowed counterpart of :meth:`sla_violation_rate`: requests
        are bucketed by ``int(completion_minute / window_min)`` — the
        same rule the live :class:`~repro.telemetry.SLAMonitor` applies,
        so the two agree window for window on the same run.  By default
        every recorded request is bucketed (the live monitor sees warmup
        traffic too); with ``include_warmup=False`` only post-warmup
        samples count, and the count-weighted average over the returned
        windows equals :meth:`sla_violation_rate` exactly.

        Returns:
            ``{window_index: violation_fraction}`` for every non-empty
            window, in ascending window order.
        """
        if window_min <= 0:
            raise ValueError("window_min must be positive")
        pair = self._e2e.get(service)
        if pair is None or len(pair[0]) == 0:
            raise ValueError(f"no completed requests for service {service!r}")
        minutes = np.frombuffer(pair[0], dtype=np.float64)
        values = np.frombuffer(pair[1], dtype=np.float64)
        if not include_warmup:
            mask = minutes >= self.warmup_min
            minutes, values = minutes[mask], values[mask]
        windows = (minutes / window_min).astype(int)
        rates: Dict[int, float] = {}
        for window in np.unique(windows):
            in_window = values[windows == window]
            rates[int(window)] = float(np.mean(in_window > sla))
        return rates

    def own_latency_percentile(
        self, microservice: str, percentile: float = 95.0
    ) -> float:
        pair = self._own.get(microservice)
        if pair is not None:
            minutes = np.frombuffer(pair[0], dtype=np.float64)
            values = np.frombuffer(pair[1], dtype=np.float64)
            samples = values[minutes >= self.warmup_min]
        else:
            samples = np.array([])
        if len(samples) == 0:
            raise ValueError(f"no own-latency samples for {microservice!r}")
        return float(np.percentile(samples, percentile))

    def to_metrics_store(
        self,
        cpu_utilization: float = 0.0,
        memory_utilization: float = 0.0,
        host_id: str = "sim-host",
    ):
        """Export the run's telemetry as a Prometheus-like MetricsStore.

        Bridges the simulator to the offline-profiling pipeline (§5.2):
        per-request own latencies become latency observations, per-minute
        completion counts become call-count samples (normalized by the
        container count), and the given host utilization is recorded once
        per minute.  Requires the run to have used
        ``record_own_latency=True``.
        """
        from repro.tracing.metrics import MetricsStore

        store = MetricsStore()
        # Only full steady-state minutes: warmup transients and the
        # post-arrival drain tail would otherwise produce partial windows
        # that corrupt the piecewise fit.
        first = self.warmup_min
        last = self.duration_min
        for name, (minutes, values) in self._own.items():
            for minute, latency in zip(minutes, values):
                if first <= minute < last:
                    store.record_latency(minute, name, latency)
        for name, per_minute in self.calls_per_minute.items():
            containers = max(self.containers.get(name, 1), 1)
            for minute, calls in per_minute.items():
                if first <= minute < last:
                    store.record_calls(
                        float(minute), name, float(calls), containers
                    )
        for minute in range(int(last) + 1):
            store.record_utilization(
                float(minute), host_id, cpu_utilization, memory_utilization
            )
        return store


class _RequestDone:
    """End-of-request continuation: counts completion, records latency.

    Recycled through its arrival process's free list: all fields except
    ``start`` are per-service constants, so reuse is a pop plus one store.
    The pool is bounded by the peak number of in-flight requests.
    """

    __slots__ = ("pool", "completed", "name", "minutes", "values", "start")

    def __init__(self, pool, completed, name, minutes, values, start):
        self.pool = pool
        self.completed = completed
        self.name = name
        self.minutes = minutes
        self.values = values
        self.start = start

    def __call__(self, finish: float) -> None:
        self.completed[self.name] += 1
        self.minutes.append(finish / _MS_PER_MINUTE)
        self.values.append(finish - self.start)
        self.pool.append(self)


class _StageFrame:
    """Join point for one stage's parallel calls (callable as child-done)."""

    __slots__ = ("sim", "service", "node", "next_stage", "pending", "latest", "done")

    def __init__(self, sim, service, node, next_stage, pending, latest, done):
        self.sim = sim
        self.service = service
        self.node = node
        self.next_stage = next_stage
        self.pending = pending
        self.latest = latest
        self.done = done

    def __call__(self, finish: float) -> None:
        if finish > self.latest:
            self.latest = finish
        pending = self.pending - 1
        self.pending = pending
        if pending == 0:
            self.sim._run_stages(
                self.service, self.node, self.next_stage, self.latest, self.done
            )


class _Completion:
    """Thread-release event for one processed job (recycled via free list).

    Carries the job fields directly so the uncontended fast path in
    ``ClusterSimulator._execute_node`` never allocates a :class:`_Job`.
    """

    __slots__ = ("sim", "container", "state", "service", "node", "arrival", "done")

    def __init__(self, sim, container, state, service, node, arrival, done):
        self.sim = sim
        self.container = container
        self.state = state
        self.service = service
        self.node = node
        self.arrival = arrival
        self.done = done

    def __call__(self, finish: float) -> None:
        sim = self.sim
        container = self.container
        state = self.state
        service = self.service
        node = self.node
        arrival = self.arrival
        done = self.done
        container.free_threads += 1
        own_min = state.own_min
        if own_min is not None:
            minute = finish / _MS_PER_MINUTE
            own_min.append(minute)
            state.own_lat.append(finish - arrival)
            state.per_minute[int(minute)] += 1
        tele = sim._telemetry
        if tele is not None:
            tele.record_call(state.spec.name, finish, finish - arrival)
        if node.stages:
            sim._run_stages(service, node, 0, finish, done)
        else:
            done(finish)
        fifo = container.fifo
        if fifo is not None:
            if fifo and container.free_threads > 0:
                # Inline single-job start, reusing this record for the
                # next job on the same container: the saturated hot path
                # (complete one job, immediately start the next).
                # ``events.now == finish`` for the whole callback.
                job = fifo.popleft()
                container.free_threads -= 1
                mean_ms = container.mean_ms
                if mean_ms is None:
                    mean_ms = state.base_ms * float(
                        container.multiplier(finish / _MS_PER_MINUTE)
                    )
                exp_i = state.exp_i
                buf = state.exp_buf
                if exp_i >= len(buf):
                    buf = state.exp_buf = sim.rng.exponential(
                        1.0, _RNG_BLOCK
                    ).tolist()
                    exp_i = 0
                state.exp_i = exp_i + 1
                processing = buf[exp_i] * mean_ms
                self.service = job.service
                self.node = job.node
                self.arrival = job.arrival
                self.done = job.done
                if tele is not None:
                    tele.note_processing(
                        job.done, finish, processing, mean_ms / state.base_ms
                    )
                events = sim.events
                count = events._counter
                events._counter = count + 1
                heappush(events._heap, (finish + processing, count, self))
                if fifo and container.free_threads > 0:
                    sim._dispatch(state, container)
                return
            sim._completion_pool.append(self)  # bounded by peak in-flight
        else:
            sim._completion_pool.append(self)
            if len(container.queue) > 0 and container.free_threads > 0:
                sim._dispatch(state, container)


class _Arrival:
    """Self-rescheduling Poisson arrival process of one service.

    Static positive rates pre-draw inter-arrival gaps (already scaled by
    the mean gap) in numpy blocks; dynamic rates re-evaluate the rate
    callable per arrival and scale a shared unit-exponential draw.
    """

    __slots__ = (
        "sim",
        "spec",
        "name",
        "root",
        "root_state",
        "end_ms",
        "events",
        "rate_spec",
        "mean_gap",
        "gap_buf",
        "gap_i",
        "generated",
        "completed",
        "e2e_minutes",
        "e2e_values",
        "done_pool",
        "tele",
        "res",
    )

    def __init__(self, sim: "ClusterSimulator", spec: ServiceSpec, end_ms: float):
        self.sim = sim
        self.spec = spec
        self.name = spec.name
        self.root = spec.graph.root
        self.root_state = sim._microservices[self.root.microservice]
        self.end_ms = end_ms
        self.events = sim.events
        rate_spec = sim._rates.get(spec.name, 0.0)
        if callable(rate_spec):
            self.rate_spec = rate_spec
            self.mean_gap = None
        else:
            self.rate_spec = None
            rate = float(rate_spec)
            self.mean_gap = _MS_PER_MINUTE / rate if rate > 0.0 else None
        self.gap_buf: List[float] = []
        self.gap_i = 0
        result = sim.result
        self.generated = result.generated
        self.completed = result.completed
        self.e2e_minutes, self.e2e_values = result._e2e_buffers(spec.name)
        self.done_pool: List[_RequestDone] = []
        self.tele = sim._telemetry
        self.res = sim._resilience

    def __call__(self, t: float) -> None:
        name = self.name
        self.generated[name] += 1
        res = self.res
        if res is not None:
            # Resilient path: admission control at the front door, then
            # the request runs as resilient logical calls (timeouts,
            # retries, breakers) managed off the engine fast path.
            if res.should_shed(name, t):
                res.shed(name, t)
            else:
                pool = self.done_pool
                if pool:
                    done = pool.pop()
                    done.start = t
                else:
                    done = _RequestDone(
                        pool, self.completed, name,
                        self.e2e_minutes, self.e2e_values, t,
                    )
                tele = self.tele
                if tele is not None:
                    done = tele.wrap_root(name, self.root, t, done)
                res.start_request(name, self.root, t, done)
            self.schedule_next(t)
            return
        pool = self.done_pool
        if pool:
            done = pool.pop()
            done.start = t
        else:
            done = _RequestDone(
                pool, self.completed, name, self.e2e_minutes, self.e2e_values, t
            )
        tele = self.tele
        if tele is not None:
            done = tele.wrap_root(name, self.root, t, done)
        # Inline root-node execution on the cached root state: same logic
        # as ``ClusterSimulator._execute_node`` minus the per-request
        # microservice lookup and call overhead.
        sim = self.sim
        node = self.root
        state = self.root_state
        containers = state.containers
        index = state._next
        if index >= len(containers):
            index = 0
        state._next = index + 1
        container = containers[index]
        fifo = container.fifo
        free = container.free_threads
        if fifo is not None:
            if free > 0 and not fifo:
                container.free_threads = free - 1
                mean_ms = container.mean_ms
                if mean_ms is None:
                    mean_ms = state.base_ms * float(
                        container.multiplier(t / _MS_PER_MINUTE)
                    )
                exp_i = state.exp_i
                exp_buf = state.exp_buf
                if exp_i >= len(exp_buf):
                    exp_buf = state.exp_buf = sim.rng.exponential(
                        1.0, _RNG_BLOCK
                    ).tolist()
                    exp_i = 0
                state.exp_i = exp_i + 1
                processing = exp_buf[exp_i] * mean_ms
                if tele is not None:
                    tele.note_processing(
                        done, t, processing, mean_ms / state.base_ms
                    )
                cpool = sim._completion_pool
                if cpool:
                    event = cpool.pop()
                    event.container = container
                    event.state = state
                    event.service = name
                    event.node = node
                    event.arrival = t
                    event.done = done
                else:
                    event = _Completion(
                        sim, container, state, name, node, t, done
                    )
                events = self.events
                count = events._counter
                events._counter = count + 1
                heappush(events._heap, (t + processing, count, event))
            else:
                fifo.append(_Job(name, node, t, done))
                if free > 0:
                    sim._dispatch(state, container)
        else:
            container.queue.push(_Job(name, node, t, done), name)
            if free > 0:
                sim._dispatch(state, container)
        mean_gap = self.mean_gap
        if mean_gap is not None:
            # Static positive rate: batched, pre-scaled gap draws.
            index = self.gap_i
            buf = self.gap_buf
            if index >= len(buf):
                buf = self.gap_buf = self.sim.rng.exponential(
                    mean_gap, _RNG_BLOCK
                ).tolist()
                index = 0
            self.gap_i = index + 1
            arrival = t + buf[index]
            if arrival <= self.end_ms:
                events = self.events
                count = events._counter
                events._counter = count + 1
                heappush(events._heap, (arrival, count, self))
            return
        self._schedule_dynamic(t)

    def schedule_next(self, now: float) -> None:
        """Schedule the next arrival after ``now`` (also the initial kick)."""
        mean_gap = self.mean_gap
        if mean_gap is not None:
            # Static positive rate: batched, pre-scaled gap draws.
            index = self.gap_i
            buf = self.gap_buf
            if index >= len(buf):
                buf = self.gap_buf = self.sim.rng.exponential(
                    mean_gap, _RNG_BLOCK
                ).tolist()
                index = 0
            self.gap_i = index + 1
            arrival = now + buf[index]
            if arrival <= self.end_ms:
                self.events.push(arrival, self)
            return
        self._schedule_dynamic(now)

    def _schedule_dynamic(self, now: float) -> None:
        rate_spec = self.rate_spec
        if rate_spec is None:
            return  # static zero rate: no arrivals, ever
        rate = float(rate_spec(now / _MS_PER_MINUTE))
        if rate <= 0.0:
            # Re-probe one minute later (a dynamic rate may become positive).
            if now + _MS_PER_MINUTE <= self.end_ms:
                self.events.push(now + _MS_PER_MINUTE, self.schedule_next)
            return
        gap = self.sim._draw_unit() * (_MS_PER_MINUTE / rate)
        arrival = now + gap
        if arrival <= self.end_ms:
            self.events.push(arrival, self)


class ClusterSimulator:
    """Simulates a fixed allocation serving several services.

    Args:
        services: Service specs (graph + SLA); arrival rates come from
            ``rates`` so the same specs can be replayed at many workloads.
        microservices: Ground-truth performance parameters by name.
        containers: Containers per microservice (or per-container
            multiplier lists via ``container_multipliers``).
        rates: Per-service arrival rate (req/min), constant or callable.
        config: Run configuration.
        priorities: Per shared microservice, service priority ranks
            (required when ``config.scheduling == "priority"``).
        container_multipliers: Optional explicit per-container service-time
            multipliers, e.g. derived from a placement via
            :class:`~repro.simulator.interference.InterferenceModel`;
            overrides ``containers`` counts for listed microservices.
        telemetry: Optional live :class:`~repro.telemetry.TelemetrySink`;
            when given, the run emits spans, windowed metrics, SLA
            alerts, and scaling audit records as it executes.
        chaos: Optional :class:`~repro.resilience.ChaosSchedule` of
            deterministic faults (container crashes with restart
            recovery, per-RPC error windows, latency spikes) replayed
            inside the event loop.
        resilience: Optional :class:`~repro.resilience.ResiliencePolicies`
            bundle (timeouts, retries, circuit breakers, admission
            control) woven into the request path.  Attaching either
            ``chaos`` or ``resilience`` activates the resilience manager;
            with both ``None`` (the default) the engine is untouched and
            the golden determinism fingerprints hold bit-for-bit.
    """

    def __init__(
        self,
        services: Sequence[ServiceSpec],
        microservices: Mapping[str, SimulatedMicroservice],
        containers: Mapping[str, int],
        rates: Mapping[str, RateSpec],
        config: Optional[SimulationConfig] = None,
        priorities: Optional[Mapping[str, Mapping[str, int]]] = None,
        container_multipliers: Optional[Mapping[str, Sequence[float]]] = None,
        telemetry: Optional["TelemetrySink"] = None,
        chaos: Optional["ChaosSchedule"] = None,
        resilience: Optional["ResiliencePolicies"] = None,
    ):
        self.services = list(services)
        self.config = config or SimulationConfig()
        self._telemetry = telemetry
        self._resilience = None
        #: microservice -> ((start_min, end_min, multiplier), ...) chaos
        #: latency-spike windows; applied to every container of the
        #: microservice, including ones created later (scale-ups, restarts).
        self._spikes: Dict[str, Tuple[Tuple[float, float, float], ...]] = {}
        if chaos is not None:
            for spike in chaos.latency_spikes:
                self._spikes[spike.microservice] = self._spikes.get(
                    spike.microservice, ()
                ) + ((spike.start_min, spike.end_min, spike.multiplier),)
        self.priorities = {k: dict(v) for k, v in (priorities or {}).items()}
        self.rng = np.random.default_rng(self.config.seed)
        self.events = EventQueue()
        self.result = SimulationResult(
            duration_min=self.config.duration_min,
            warmup_min=self.config.warmup_min,
        )
        self._rates: Dict[str, RateSpec] = dict(rates)
        self._arrivals_open = True
        self._completion_pool: List[_Completion] = []
        self._unit_buf: List[float] = []
        self._unit_i = 0
        #: id(node) -> (node, per-stage expanded call lists); the node ref
        #: keeps the id stable for the simulator's lifetime.
        self._stage_cache: Dict[int, Tuple[CallNode, List[List[CallNode]]]] = {}

        self._microservices: Dict[str, _MicroserviceState] = {}
        needed = {
            name for spec in self.services for name in spec.graph.microservices()
        }
        for name in sorted(needed):
            if name not in microservices:
                raise ValueError(f"no SimulatedMicroservice for {name!r}")
            spec = microservices[name]
            multipliers = None
            if container_multipliers and name in container_multipliers:
                multipliers = [
                    m if callable(m) else float(m)
                    for m in container_multipliers[name]
                ]
                if not multipliers:
                    raise ValueError(
                        f"container_multipliers for {name!r} is empty"
                    )
            else:
                count = containers.get(name, 1)
                if count < 1:
                    raise ValueError(
                        f"container count for {name!r} must be >= 1, got {count}"
                    )
                multipliers = [1.0] * count
            container_objs = [
                _Container(
                    self._make_queue(name),
                    spec.threads,
                    spec.base_service_ms,
                    self._wrap_multiplier(name, multiplier),
                )
                for multiplier in multipliers
            ]
            self._microservices[name] = _MicroserviceState(spec, container_objs)
            self.result.containers[name] = len(container_objs)
        if chaos is not None or resilience is not None:
            from repro.resilience.manager import ResilienceManager

            self._resilience = ResilienceManager(self, resilience, chaos)

    def _wrap_multiplier(self, microservice: str, multiplier):
        """Compose chaos latency-spike windows onto a container multiplier."""
        windows = self._spikes.get(microservice) if self._spikes else None
        if not windows:
            return multiplier
        from repro.resilience.chaos import SpikeMultiplier

        return SpikeMultiplier(multiplier, windows)

    def _make_queue(self, microservice: str) -> QueuePolicy:
        if self.config.scheduling == "priority":
            ranks = self.priorities.get(microservice)
            if ranks:
                return PriorityQueuePolicy(
                    ranks, delta=self.config.delta, rng=self.rng
                )
        return FCFSQueue()

    def _draw_unit(self) -> float:
        """One unit-exponential draw from the shared batched stream."""
        index = self._unit_i
        buf = self._unit_buf
        if index >= len(buf):
            buf = self._unit_buf = self.rng.exponential(1.0, _RNG_BLOCK).tolist()
            index = 0
        self._unit_i = index + 1
        return buf[index]

    # ------------------------------------------------------------------
    # Dynamic scaling (used by the in-simulation autoscaling loop)
    # ------------------------------------------------------------------
    def container_count(self, microservice: str) -> int:
        """Containers currently in rotation for one microservice."""
        return len(self._microservices[microservice].containers)

    def scale_container_count(
        self,
        microservice: str,
        target: int,
        startup_delay_ms: float = 0.0,
        multiplier: float = 1.0,
        reason: Optional[str] = None,
        workload: Optional[float] = None,
        latency_target_ms: Optional[float] = None,
        actor: str = "simulator",
    ) -> None:
        """Scale a microservice to ``target`` containers at runtime.

        New containers join the rotation after ``startup_delay_ms`` (cold
        start).  Removed containers leave the rotation immediately: their
        queued jobs are redistributed and in-flight work finishes.  The
        floor is one container.

        With telemetry attached, every call that changes the count is
        audited: the decision log records the before/after counts plus
        the optional ``reason`` / ``workload`` / ``latency_target_ms``
        context the caller acted on, under the given ``actor`` (the
        failure-recovery path restarts containers as ``chaos`` /
        ``failure-injection``).
        """
        if target < 1:
            raise ValueError(f"target must be >= 1, got {target}")
        state = self._microservices[microservice]
        delta = target - len(state.containers)
        if delta != 0 and self._telemetry is not None:
            self._telemetry.decisions.record(
                minute=self.events.now / _MS_PER_MINUTE,
                actor=actor,
                microservice=microservice,
                before=len(state.containers),
                after=target,
                reason=reason or "scale_container_count",
                workload=workload,
                latency_target_ms=latency_target_ms,
            )
        for _ in range(max(delta, 0)):
            container = _Container(
                self._make_queue(microservice),
                state.spec.threads,
                state.base_ms,
                self._wrap_multiplier(microservice, multiplier),
            )

            def _join(_t: float, c: _Container = container) -> None:
                state.add(c)
                self.result.containers[microservice] = len(state.containers)

            if startup_delay_ms > 0:
                self.events.schedule_in(startup_delay_ms, _join)
            else:
                _join(self.events.now)
        for _ in range(max(-delta, 0)):
            if len(state.containers) <= 1:
                break
            removed = state.remove_last()
            while True:
                job = removed.queue.pop()
                if job is None:
                    break
                replacement = state.pick()
                replacement.queue.push(job, job.service)
                self._dispatch(state, replacement)
        self.result.containers[microservice] = len(state.containers)

    def inject_container_failure(
        self,
        microservice: str,
        retry: bool = True,
        restart_after_ms: Optional[float] = None,
        actor: str = "failure-injection",
    ) -> int:
        """Kill one container (crash/OOM/node loss).

        The container leaves the rotation immediately; requests already
        being processed finish (connection-drain approximation).  With
        ``retry`` (the default — microservice RPC clients retry), its
        queued jobs are re-enqueued on surviving containers; without it
        they are dropped, counted in ``result.dropped_requests`` per
        service, and the affected requests never complete.

        With ``restart_after_ms`` set, a fresh container re-joins the
        rotation after that delay through the startup machinery of
        :meth:`scale_container_count` (crash-with-recovery: the restart
        is audited in the decision log under the same ``actor``).  The
        replacement starts clean — a static interference multiplier
        carries over, a time-varying one does not (fresh host).

        Returns the number of queued jobs affected.  The last container
        of a microservice cannot be killed.
        """
        state = self._microservices[microservice]
        removed = state.remove_last()
        if self._telemetry is not None:
            self._telemetry.decisions.record(
                minute=self.events.now / _MS_PER_MINUTE,
                actor=actor,
                microservice=microservice,
                before=len(state.containers) + 1,
                after=len(state.containers),
                reason="container killed"
                + (" (queued jobs retried)" if retry else " (queued jobs lost)"),
            )
        affected = 0
        dropped = self.result.dropped_requests
        while True:
            job = removed.queue.pop()
            if job is None:
                break
            affected += 1
            if retry:
                replacement = state.pick()
                replacement.queue.push(job, job.service)
                self._dispatch(state, replacement)
            else:
                dropped[job.service] = dropped.get(job.service, 0) + 1
        self.result.containers[microservice] = len(state.containers)
        if restart_after_ms is not None:
            self.scale_container_count(
                microservice,
                len(state.containers) + 1,
                startup_delay_ms=restart_after_ms,
                multiplier=(
                    removed.static_mult
                    if removed.static_mult is not None
                    else 1.0
                ),
                reason=f"container restart in {restart_after_ms:g} ms",
                actor=actor,
            )
        return affected

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Generate arrivals, process all events, return the result."""
        duration_ms = self.config.duration_min * _MS_PER_MINUTE
        result = self.result
        if self.config.record_own_latency:
            for name, state in self._microservices.items():
                state.own_min, state.own_lat = result._own_buffers(name)
                state.per_minute = result.calls_per_minute.setdefault(
                    name, defaultdict(int)
                )
        if self._telemetry is not None:
            self._telemetry.begin_run(self)
        if self._resilience is not None:
            self._resilience.install()
        for spec in self.services:
            result.generated[spec.name] = 0
            result.completed[spec.name] = 0
            result._e2e_buffers(spec.name)
            _Arrival(self, spec, duration_ms).schedule_next(0.0)

        processed = self.events.run_until(duration_ms)
        self._arrivals_open = False
        if self.config.drain:
            processed += self.events.run_until(float("inf"))
        result.events_processed += processed
        if self._resilience is not None:
            result.resilience = self._resilience.stats.to_dict()
        if self._telemetry is not None:
            self._telemetry.finalize(self)
        return result

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def _execute_node(
        self,
        service: str,
        node: CallNode,
        t: float,
        done: Callable[[float], None],
    ) -> None:
        state = self._microservices[node.microservice]
        containers = state.containers
        index = state._next
        if index >= len(containers):
            index = 0
        state._next = index + 1
        container = containers[index]
        fifo = container.fifo
        free = container.free_threads
        if fifo is not None:
            if free > 0 and not fifo:
                # Uncontended FCFS fast path: start processing directly —
                # no job object, no queue roundtrip, no dispatch call.
                container.free_threads = free - 1
                events = self.events
                now = events.now
                mean_ms = container.mean_ms
                if mean_ms is None:
                    mean_ms = state.base_ms * float(
                        container.multiplier(now / _MS_PER_MINUTE)
                    )
                exp_i = state.exp_i
                buf = state.exp_buf
                if exp_i >= len(buf):
                    buf = state.exp_buf = self.rng.exponential(
                        1.0, _RNG_BLOCK
                    ).tolist()
                    exp_i = 0
                state.exp_i = exp_i + 1
                processing = buf[exp_i] * mean_ms
                tele = self._telemetry
                if tele is not None:
                    tele.note_processing(
                        done, now, processing, mean_ms / state.base_ms
                    )
                pool = self._completion_pool
                if pool:
                    event = pool.pop()
                    event.container = container
                    event.state = state
                    event.service = service
                    event.node = node
                    event.arrival = t
                    event.done = done
                else:
                    event = _Completion(
                        self, container, state, service, node, t, done
                    )
                count = events._counter
                events._counter = count + 1
                heappush(events._heap, (now + processing, count, event))
                return
            fifo.append(_Job(service, node, t, done))
            if free > 0:
                self._dispatch(state, container)
        else:
            container.queue.push(_Job(service, node, t, done), service)
            if free > 0:
                self._dispatch(state, container)

    def _dispatch(self, state: _MicroserviceState, container: _Container) -> None:
        free = container.free_threads
        if free <= 0:
            return
        events = self.events
        heap = events._heap
        now = events.now
        fifo = container.fifo
        queue = container.queue
        pool = self._completion_pool
        tele = self._telemetry
        mean_ms = container.mean_ms
        if mean_ms is None:
            mean_ms = state.base_ms * float(
                container.multiplier(now / _MS_PER_MINUTE)
            )
        while free > 0:
            if fifo is not None:
                if not fifo:
                    break
                job = fifo.popleft()
            else:
                job = queue.pop()
                if job is None:
                    break
            free -= 1
            index = state.exp_i
            buf = state.exp_buf
            if index >= len(buf):
                buf = state.exp_buf = self.rng.exponential(
                    1.0, _RNG_BLOCK
                ).tolist()
                index = 0
            state.exp_i = index + 1
            processing = buf[index] * mean_ms
            if tele is not None:
                tele.note_processing(
                    job.done, now, processing, mean_ms / state.base_ms
                )
            if pool:
                event = pool.pop()
                event.container = container
                event.state = state
                event.service = job.service
                event.node = job.node
                event.arrival = job.arrival
                event.done = job.done
            else:
                event = _Completion(
                    self, container, state, job.service, job.node,
                    job.arrival, job.done,
                )
            count = events._counter
            events._counter = count + 1
            heappush(heap, (now + processing, count, event))
        container.free_threads = free

    def _run_stages(
        self,
        service: str,
        node: CallNode,
        stage_index: int,
        t: float,
        done: Callable[[float], None],
    ) -> None:
        cached = self._stage_cache.get(id(node))
        if cached is None:
            expanded = [
                [
                    child
                    for child in stage
                    for _ in range(max(1, int(round(child.calls_per_request))))
                ]
                for stage in node.stages
            ]
            self._stage_cache[id(node)] = (node, expanded)
        else:
            expanded = cached[1]
        total = len(expanded)
        while stage_index < total:
            calls = expanded[stage_index]
            if calls:
                frame = _StageFrame(
                    self, service, node, stage_index + 1, len(calls), t, done
                )
                res = self._resilience
                if res is not None:
                    # Each downstream call becomes a resilient logical
                    # RPC (timeout / retry / breaker); the manager wraps
                    # per-attempt telemetry spans itself.
                    res.submit_children(service, calls, t, frame, done)
                    return
                tele = self._telemetry
                if tele is not None:
                    # Each downstream call gets its own span-emitting
                    # continuation; span context rides on ``done``.
                    for child in calls:
                        self._execute_node(
                            service, child, t, tele.wrap_call(done, child, t, frame)
                        )
                else:
                    for child in calls:
                        self._execute_node(service, child, t, frame)
                return
            stage_index += 1
        done(t)
