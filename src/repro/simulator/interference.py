"""Host interference model for the simulator.

Paper Fig. 3 observes that the slope of the latency/load curve grows with
host CPU and memory utilization (memory pressure triggers compaction and
stalls processes, §5.2).  The simulator reproduces this by inflating each
container's mean service time with a multiplier derived from its host's
utilization.  Utilization combines the host's *background* (batch-job) load
with the resource requests of the containers placed on it — so
interference-aware placement genuinely changes observed latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.provisioning import Cluster, Host


@dataclass(frozen=True)
class InterferenceModel:
    """Service-time inflation as a function of host utilization.

    multiplier = 1 + cpu_weight·max(0, cpu − cpu_knee)
                   + mem_weight·max(0, mem − mem_knee)

    The knees model the empirical observation that light colocation is
    harmless; past them, slowdown grows roughly linearly (and memory
    pressure hurts more than CPU pressure, per §5.2).
    """

    cpu_weight: float = 2.0
    mem_weight: float = 3.0
    cpu_knee: float = 0.3
    mem_knee: float = 0.4

    def multiplier_for(self, cpu_utilization: float, mem_utilization: float) -> float:
        """Service-time multiplier (≥ 1) at the given utilizations."""
        slowdown = 1.0
        slowdown += self.cpu_weight * max(0.0, cpu_utilization - self.cpu_knee)
        slowdown += self.mem_weight * max(0.0, mem_utilization - self.mem_knee)
        return slowdown

    def host_multiplier(self, cluster: Cluster, host: Host) -> float:
        """Multiplier for one host given its current placement."""
        return self.multiplier_for(
            host.cpu_utilization(cluster.sizes),
            host.memory_utilization(cluster.sizes),
        )
