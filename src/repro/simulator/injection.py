"""iBench-style interference injection schedules (paper §6.2).

The paper collects profiling data by fixing the interference level on
each host for an hour at a time with iBench, then moving to the next
level.  :class:`InterferenceSchedule` reproduces that protocol as a
time-varying service-time multiplier, usable directly as a container
multiplier in :class:`~repro.simulator.simulation.ClusterSimulator`
(which accepts callables of the current simulation minute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.simulator.interference import InterferenceModel


@dataclass(frozen=True)
class InterferenceSchedule:
    """Step schedule of (cpu, mem) utilization levels, one per period.

    Calling the schedule with a simulation minute returns the service-time
    multiplier implied by the level active at that minute (via an
    :class:`InterferenceModel`).  The schedule repeats after the last
    period, as an injection loop would.
    """

    levels: Tuple[Tuple[float, float], ...]
    period_min: float = 60.0
    model: InterferenceModel = InterferenceModel()

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("levels must be non-empty")
        if self.period_min <= 0:
            raise ValueError("period_min must be positive")
        for cpu, mem in self.levels:
            if cpu < 0 or mem < 0:
                raise ValueError("utilization levels must be non-negative")

    @classmethod
    def random(
        cls,
        periods: int,
        period_min: float = 60.0,
        low: float = 0.1,
        high: float = 0.9,
        seed: int = 0,
        model: Optional[InterferenceModel] = None,
    ) -> "InterferenceSchedule":
        """Random levels in [low, high], the paper's profiling sweep."""
        rng = np.random.default_rng(seed)
        levels = tuple(
            (float(cpu), float(mem))
            for cpu, mem in rng.uniform(low, high, size=(periods, 2))
        )
        return cls(
            levels=levels,
            period_min=period_min,
            model=model if model is not None else InterferenceModel(),
        )

    def level_at(self, minute: float) -> Tuple[float, float]:
        """The (cpu, mem) level active at ``minute``."""
        index = int(minute // self.period_min) % len(self.levels)
        return self.levels[index]

    def __call__(self, minute: float) -> float:
        """Service-time multiplier at ``minute`` (container callable)."""
        cpu, mem = self.level_at(minute)
        return self.model.multiplier_for(cpu, mem)
