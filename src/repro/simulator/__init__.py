"""Discrete-event cluster simulator.

Replaces the paper's 20-host Kubernetes testbed.  Hosts carry background
(batch-job) load; each microservice runs in identical containers with a
fixed thread pool; requests walk their service's dependency graph, queueing
at containers and holding a thread for an exponentially distributed
processing time whose mean is inflated by host interference.  Shared
microservices schedule queued requests either FCFS or with Erms'
δ-probabilistic priority policy (paper §5.3.2).

The emergent per-container load → tail latency curve has exactly the
piecewise-linear shape of paper Fig. 3, so the simulator doubles as the
ground truth that :mod:`repro.profiling` profiles and Erms controls.
"""

from repro.simulator.events import EventQueue
from repro.simulator.scheduler import (
    FCFSQueue,
    PriorityQueuePolicy,
    QueuePolicy,
)
from repro.simulator.simulation import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
    SimulationResult,
)
from repro.simulator.interference import InterferenceModel
from repro.simulator.injection import InterferenceSchedule
from repro.simulator.autoscaled import (
    AutoscaleConfig,
    AutoscaledResult,
    AutoscaledSimulation,
)

__all__ = [
    "EventQueue",
    "FCFSQueue",
    "PriorityQueuePolicy",
    "QueuePolicy",
    "ClusterSimulator",
    "SimulatedMicroservice",
    "SimulationConfig",
    "SimulationResult",
    "InterferenceModel",
    "InterferenceSchedule",
    "AutoscaleConfig",
    "AutoscaledResult",
    "AutoscaledSimulation",
]
