"""Minimal discrete-event engine.

A binary-heap event queue keyed by (time, sequence): ties are broken by
insertion order, which makes simulations fully deterministic for a fixed
RNG seed.  Callbacks receive the current simulation time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple

Callback = Callable[[float], None]


class EventQueue:
    """Time-ordered callback queue driving the simulation."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._counter = itertools.count()
        self.now: float = 0.0

    def schedule(self, time: float, callback: Callback) -> None:
        """Schedule ``callback`` to run at absolute time ``time`` (ms)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def schedule_in(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` after ``delay`` ms from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule(self.now + delay, callback)

    def __len__(self) -> int:
        return len(self._heap)

    def run_until(self, end_time: float) -> int:
        """Process events until the queue drains or ``end_time`` passes.

        Returns the number of events processed.  Events scheduled exactly
        at ``end_time`` are still processed; later ones remain queued.
        """
        processed = 0
        while self._heap and self._heap[0][0] <= end_time:
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            callback(time)
            processed += 1
        self.now = max(self.now, end_time)
        return processed
