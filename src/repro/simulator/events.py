"""Minimal discrete-event engine.

A binary-heap event queue keyed by (time, sequence): ties are broken by
insertion order, which makes simulations fully deterministic for a fixed
RNG seed.  Entries are arbitrary callables of the current simulation
time — plain functions, bound methods, or the simulator's ``__slots__``
event-record objects (whose ``__call__`` dispatches without allocating a
closure per event).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

Callback = Callable[[float], None]

_INF = float("inf")


class EventQueue:
    """Time-ordered callback queue driving the simulation."""

    __slots__ = ("_heap", "_counter", "now")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._counter = 0
        self.now: float = 0.0

    def schedule(self, time: float, callback: Callback) -> None:
        """Schedule ``callback`` to run at absolute time ``time`` (ms)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        count = self._counter
        self._counter = count + 1
        heapq.heappush(self._heap, (time, count, callback))

    def push(self, time: float, callback: Callback) -> None:
        """Fast-path schedule: no past-check.

        The simulator's hot path computes ``time`` as ``now + delay`` with
        a non-negative delay, so the guard in :meth:`schedule` is
        redundant there.
        """
        count = self._counter
        self._counter = count + 1
        heapq.heappush(self._heap, (time, count, callback))

    def schedule_in(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` after ``delay`` ms from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule(self.now + delay, callback)

    def __len__(self) -> int:
        return len(self._heap)

    def run_until(self, end_time: float) -> int:
        """Process events until the queue drains or ``end_time`` passes.

        Returns the number of events processed.  Events scheduled exactly
        at ``end_time`` are still processed; later ones remain queued.

        Draining with ``end_time=inf`` leaves ``now`` at the time of the
        last processed event (not at infinity), so a drained queue can be
        reused — e.g. the autoscaled loop scheduling follow-up work after
        a drain.
        """
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        while heap:
            entry = pop(heap)
            time = entry[0]
            if time > end_time:
                heapq.heappush(heap, entry)
                break
            self.now = time
            entry[2](time)
            processed += 1
        if end_time != _INF and end_time > self.now:
            self.now = end_time
        return processed
