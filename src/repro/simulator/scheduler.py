"""Queue-scheduling policies at (shared) microservice containers.

Two policies from the paper:

* FCFS — the Kubernetes default: one queue, arrival order.
* δ-probabilistic priority (paper §5.3.2) — one queue per service priority
  rank; when a thread frees, the highest-priority non-empty queue is served
  with probability ``1 − δ``, the next with ``δ(1 − δ)``, and so on, the
  geometric tail going to the lowest-priority non-empty queue.  A small δ
  (the paper uses 0.05) protects low-priority services from starvation at
  a negligible cost to high-priority tail latency (paper Fig. 9).
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional

import numpy as np


class QueuePolicy(abc.ABC):
    """A container's request queue."""

    @abc.abstractmethod
    def push(self, job: Any, service: str) -> None:
        """Enqueue a job originating from ``service``."""

    @abc.abstractmethod
    def pop(self) -> Optional[Any]:
        """Dequeue the next job to process, or None when empty."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of queued jobs."""


class FCFSQueue(QueuePolicy):
    """Single first-come-first-served queue."""

    def __init__(self) -> None:
        self._queue: Deque[Any] = deque()

    def push(self, job: Any, service: str) -> None:
        self._queue.append(job)

    def pop(self) -> Optional[Any]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class PriorityQueuePolicy(QueuePolicy):
    """Erms' δ-probabilistic priority scheduling (paper §5.3.2).

    Args:
        ranks: Priority rank per service name; rank 0 is served first.
            Services not listed default to the lowest known rank + 1.
        delta: The δ parameter; 0 gives strict priority.
        rng: Random generator for the probabilistic choice.
    """

    def __init__(
        self,
        ranks: Mapping[str, int],
        delta: float = 0.05,
        rng: Optional[np.random.Generator] = None,
    ):
        if not 0.0 <= delta < 1.0:
            raise ValueError(f"delta must be in [0, 1), got {delta}")
        self.ranks = dict(ranks)
        self.delta = delta
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._default_rank = (max(self.ranks.values()) + 1) if self.ranks else 0
        self._queues: Dict[int, Deque[Any]] = {}
        self._size = 0

    def push(self, job: Any, service: str) -> None:
        rank = self.ranks.get(service, self._default_rank)
        self._queues.setdefault(rank, deque()).append(job)
        self._size += 1

    def pop(self) -> Optional[Any]:
        if self._size == 0:
            return None
        non_empty: List[int] = sorted(
            rank for rank, queue in self._queues.items() if queue
        )
        chosen = non_empty[-1]
        for rank in non_empty[:-1]:
            if self._rng.random() < 1.0 - self.delta:
                chosen = rank
                break
        job = self._queues[chosen].popleft()
        self._size -= 1
        return job

    def __len__(self) -> int:
        return self._size
