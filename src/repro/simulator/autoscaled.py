"""In-simulation autoscaling: the control loop running inside the DES.

The experiment harness's windowed replay (one fresh simulation per
scaling window) measures steady-state windows; this module instead runs
the *whole* control loop inside one continuous simulation, as the real
deployment does: every ``interval_min`` the autoscaler observes the
arrival rate of the previous interval, recomputes the allocation, and the
simulator applies it — new containers only join after a cold-start delay,
removed ones drain.  Queues carry over across scaling decisions, so
under-provisioned intervals leave a backlog the next interval must clear,
exactly the transient the windowed harness cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.model import (
    InfeasibleSLAError,
    MicroserviceProfile,
    ServiceSpec,
)
from repro.core.scaling import Autoscaler
from repro.simulator.simulation import (
    ClusterSimulator,
    RateSpec,
    SimulatedMicroservice,
    SimulationConfig,
    SimulationResult,
)
from repro.workloads.prediction import WorkloadPredictor

_MS_PER_MINUTE = 60_000.0


@dataclass
class AutoscaleConfig:
    """Control-loop knobs."""

    interval_min: float = 1.0
    startup_delay_ms: float = 3_000.0  # container cold start (paper: seconds)

    def __post_init__(self) -> None:
        if self.interval_min <= 0:
            raise ValueError("interval_min must be positive")
        if self.startup_delay_ms < 0:
            raise ValueError("startup_delay_ms must be non-negative")


@dataclass
class AutoscaledResult:
    """Simulation measurements plus the scaling time series."""

    simulation: SimulationResult
    #: (minute, total containers) after each scaling decision.
    scaling_events: List[Tuple[float, int]] = field(default_factory=list)
    #: (minute, per-service observed rate) the scaler acted on.
    observed_rates: List[Tuple[float, Dict[str, float]]] = field(
        default_factory=list
    )

    def container_series(self) -> List[int]:
        return [total for _, total in self.scaling_events]


class AutoscaledSimulation:
    """Wires an :class:`Autoscaler` into a running :class:`ClusterSimulator`.

    Args:
        specs: Services (graphs + SLAs).
        simulated: Ground-truth microservice parameters.
        scaler: The scheme making the decisions.
        profiles: Latency models the scaler believes in.
        rates: True arrival-rate processes (constant or callable).
        config: Simulation settings (duration, seed, scheduling).
        autoscale: Control-loop settings.
        predictor_factory: Optional per-service forecaster constructor;
            when given, the scaler plans for the predicted next-interval
            rate instead of the last observed one.
        telemetry: Optional :class:`~repro.telemetry.TelemetrySink`; the
            simulation emits live telemetry and every reconcile records
            decision-audit entries (observed/planned workload, container
            deltas, and the reason — including kept-allocation outcomes
            on infeasible SLAs).
        chaos: Optional :class:`~repro.resilience.ChaosSchedule` of
            deterministic faults.  Crashed containers are restored by the
            next reconcile (the autoscaler sees the reduced count and
            scales back to target) in addition to any per-crash
            ``restart_after_ms`` recovery.
        resilience: Optional
            :class:`~repro.resilience.ResiliencePolicies` woven into the
            request path of the underlying simulator.
    """

    def __init__(
        self,
        specs: Sequence[ServiceSpec],
        simulated: Mapping[str, SimulatedMicroservice],
        scaler: Autoscaler,
        profiles: Mapping[str, MicroserviceProfile],
        rates: Mapping[str, RateSpec],
        config: Optional[SimulationConfig] = None,
        autoscale: Optional[AutoscaleConfig] = None,
        predictor_factory=None,
        telemetry=None,
        chaos=None,
        resilience=None,
    ):
        self.specs = list(specs)
        self.scaler = scaler
        self.profiles = dict(profiles)
        self.autoscale = autoscale or AutoscaleConfig()
        self.config = config or SimulationConfig()

        # Initial allocation for the rate at t=0.
        initial_rates = {}
        for spec in self.specs:
            rate_spec = rates.get(spec.name, 0.0)
            initial_rates[spec.name] = (
                rate_spec(0.0) if callable(rate_spec) else float(rate_spec)
            )
        initial_specs = scaler.with_workloads(self.specs, initial_rates)
        allocation = scaler.scale(initial_specs, self.profiles)

        self.simulator = ClusterSimulator(
            self.specs,
            simulated,
            containers=allocation.containers,
            rates=rates,
            config=self.config,
            priorities=allocation.priorities,
            telemetry=telemetry,
            chaos=chaos,
            resilience=resilience,
        )
        self._telemetry = telemetry
        self.result = AutoscaledResult(simulation=self.simulator.result)
        self._predictors: Dict[str, WorkloadPredictor] = {}
        if predictor_factory is not None:
            self._predictors = {
                spec.name: predictor_factory() for spec in self.specs
            }
        self._last_generated: Dict[str, int] = {
            spec.name: 0 for spec in self.specs
        }

    # ------------------------------------------------------------------
    def run(self) -> AutoscaledResult:
        duration_ms = self.config.duration_min * _MS_PER_MINUTE
        interval_ms = self.autoscale.interval_min * _MS_PER_MINUTE
        tick = interval_ms
        while tick < duration_ms:
            self.simulator.events.schedule(tick, self._rescale)
            tick += interval_ms
        self.simulator.run()
        return self.result

    # ------------------------------------------------------------------
    def _rescale(self, now_ms: float) -> None:
        # Each tick re-runs the full Eq. 5 pipeline.  The graph, SLA and
        # profiles are constant across ticks (only observed rates move),
        # so the merge-tree cache and the targets memo in
        # ``repro.core.latency_targets`` turn the per-tick phase-1 target
        # computation into a lookup; only container counts and the
        # priority phase are recomputed from live rates.
        minute = now_ms / _MS_PER_MINUTE
        observed: Dict[str, float] = {}
        for spec in self.specs:
            generated = self.simulator.result.generated.get(spec.name, 0)
            delta = generated - self._last_generated[spec.name]
            self._last_generated[spec.name] = generated
            rate = delta / self.autoscale.interval_min  # req/min
            predictor = self._predictors.get(spec.name)
            if predictor is not None:
                rate = predictor.observe_and_predict(rate, horizon=1.0)
            observed[spec.name] = rate
        self.result.observed_rates.append((minute, dict(observed)))

        planning_specs = self.scaler.with_workloads(self.specs, observed)
        try:
            allocation = self.scaler.scale(planning_specs, self.profiles)
        except InfeasibleSLAError:
            if self._telemetry is not None:
                self._telemetry.decisions.record(
                    minute=minute,
                    actor="autoscaler",
                    microservice="*",
                    before=0,
                    after=0,
                    reason=(
                        f"{self.scaler.name}: SLA infeasible for observed "
                        "workload; kept current allocation"
                    ),
                    workload=sum(observed.values()),
                )
            return  # keep the current deployment
        total_observed = sum(observed.values())
        reason = (
            f"{self.scaler.name} reconcile @ {minute:g} min "
            f"(observed {total_observed:.0f} req/min)"
        )
        # Per-microservice latency target for the audit trail: the
        # tightest target any service imposes on it.
        targets: Dict[str, float] = {}
        for per_ms in allocation.targets.values():
            for name, value in per_ms.items():
                if name not in targets or value < targets[name]:
                    targets[name] = value
        for name, count in allocation.containers.items():
            self.simulator.scale_container_count(
                name,
                count,
                startup_delay_ms=self.autoscale.startup_delay_ms,
                reason=reason,
                workload=total_observed,
                latency_target_ms=targets.get(name),
            )
        total = sum(
            self.simulator.container_count(name)
            for name in allocation.containers
        )
        self.result.scaling_events.append((minute, total))
