"""Synthetic DeathStarBench-like applications (paper §6.1).

The paper evaluates on three DeathStarBench applications:

* **Social Network** — 36 unique microservices, 3 services, shared
  microservices (post storage, user timeline, social graph);
* **Media Service** — 38 unique microservices, 1 service;
* **Hotel Reservation** — 15 unique microservices, 4 services, shared
  microservices (frontend, profile, reservation).

We reproduce the *structure* that drives the experiments — microservice
counts, service fan-out, which microservices are shared — with realistic
call topologies (stateless logic services backed by mongodb / redis /
memcached containers).  The paper counts 3 shared microservices per app;
here the three shared *stateless* services match that count, and their
storage backends are naturally shared as well.

Each microservice carries ground-truth simulator parameters
(``base_service_ms``, ``threads``) and an *analytic profile* — a piecewise
latency model derived from its queueing capacity — used by the
analytic/theoretical experiments (the paper's own ``theoretical-resource``
artifact step).  High-fidelity experiments fit profiles from simulator runs
instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence

from repro.core.model import (
    ContainerSpec,
    LatencySegment,
    MicroserviceProfile,
    PiecewiseLatencyModel,
    ServiceSpec,
)
from repro.graphs import CallNode, DependencyGraph, call, validate_graph
from repro.simulator.simulation import SimulatedMicroservice

_MS_PER_MINUTE = 60_000.0


@dataclass
class Application:
    """A benchmark application: services, ground truth, and defaults."""

    name: str
    services: List[ServiceSpec]
    simulated: Dict[str, SimulatedMicroservice]
    container_specs: Dict[str, ContainerSpec] = field(default_factory=dict)

    def microservices(self) -> List[str]:
        """Unique microservices across all services."""
        seen: Dict[str, None] = {}
        for spec in self.services:
            for name in spec.graph.microservices():
                seen.setdefault(name, None)
        return list(seen)

    def shared_microservices(self) -> List[str]:
        """Microservices appearing in more than one service."""
        counts: Dict[str, int] = {}
        for spec in self.services:
            for name in spec.graph.microservices():
                counts[name] = counts.get(name, 0) + 1
        return [name for name, count in counts.items() if count > 1]

    def shared_stateless(self) -> List[str]:
        """Shared microservices excluding storage backends.

        This is the count the paper reports (3 per application).
        """
        backends = ("mongodb", "redis", "memcached", "rabbitmq")
        return [
            name
            for name in self.shared_microservices()
            if not name.endswith(backends)
        ]

    def with_workloads(
        self, workloads: Dict[str, float], sla: float = None
    ) -> List[ServiceSpec]:
        """Service specs with updated workloads (and optionally one SLA)."""
        updated = []
        for spec in self.services:
            changes = {"workload": workloads.get(spec.name, spec.workload)}
            if sla is not None:
                changes["sla"] = sla
            updated.append(replace(spec, **changes))
        return updated

    def analytic_profiles(
        self, interference_multiplier: float = 1.0
    ) -> Dict[str, MicroserviceProfile]:
        """Piecewise profiles derived from each microservice's capacity.

        The shape mirrors the simulator's emergent behaviour: P95 ≈ 2×
        the mean service time at light load, a knee (≈3× base) near 70 %
        of the per-container capacity, and a steep post-cutoff segment
        reaching ~15× base close to saturation.  Host interference
        multiplies service time, scaling latency up and capacity down.
        """
        if interference_multiplier < 1.0:
            raise ValueError(
                f"interference_multiplier must be >= 1, "
                f"got {interference_multiplier}"
            )
        return {
            name: analytic_profile(
                name,
                sim.base_service_ms,
                sim.threads,
                interference_multiplier=interference_multiplier,
                container=self.container_specs.get(name, ContainerSpec()),
            )
            for name, sim in self.simulated.items()
        }


def analytic_profile(
    name: str,
    base_service_ms: float,
    threads: int,
    interference_multiplier: float = 1.0,
    container: ContainerSpec = None,
    resource_demand: float = None,
    peak_latency_factor: float = 8.0,
) -> MicroserviceProfile:
    """Piecewise profile from queueing capacity (shared by apps and benches).

    The shape mirrors the simulator's emergent behaviour and the paper's
    Fig. 3 curves: P95 ≈ 2× the mean service time at light load, a knee
    (≈3× base) near 70 % of the per-container capacity
    ``threads / base_service_ms``, and a steep post-cutoff segment
    reaching ``peak_latency_factor × base`` at the edge of the profiled
    range (``max_load`` = 1.3× the cut-off ≈ 91 % of capacity) —
    provisioning never extrapolates past that range.
    """
    if container is None:
        container = ContainerSpec()
    base = base_service_ms * interference_multiplier
    capacity = threads / base * _MS_PER_MINUTE  # req/min/container
    cutoff = 0.7 * capacity
    low = LatencySegment(slope=base / cutoff, intercept=2.0 * base)
    # Through (cutoff, 3·base) and (1.3·cutoff, peak·base).
    high_slope = (peak_latency_factor - 3.0) * base / (0.3 * cutoff)
    high = LatencySegment(
        slope=high_slope, intercept=3.0 * base - high_slope * cutoff
    )
    return MicroserviceProfile(
        name=name,
        model=PiecewiseLatencyModel(
            low=low, high=high, cutoff=cutoff, max_load=1.3 * cutoff
        ),
        resource_demand=(
            resource_demand if resource_demand is not None else container.cpu
        ),
        container=container,
    )


def _backed(name: str, *backends: str, parallel: bool = True) -> CallNode:
    """A stateless service calling its storage backends."""
    children = [call(b) for b in backends]
    if not children:
        return call(name)
    stages = [children] if parallel else [[c] for c in children]
    return call(name, stages=stages)


_DEFAULTS_BY_SUFFIX = {
    "mongodb": (3.0, 2),
    "redis": (1.0, 2),
    "memcached": (0.8, 2),
    "rabbitmq": (1.5, 2),
}


def _simulated(
    names: Sequence[str], overrides: Dict[str, tuple]
) -> Dict[str, SimulatedMicroservice]:
    result = {}
    for name in names:
        if name in overrides:
            base, threads = overrides[name]
        else:
            base, threads = 3.0, 1
            for suffix, params in _DEFAULTS_BY_SUFFIX.items():
                if name.endswith(suffix):
                    base, threads = params
                    break
        result[name] = SimulatedMicroservice(
            name, base_service_ms=base, threads=threads
        )
    return result


def _application(
    name: str,
    graphs: List[DependencyGraph],
    overrides: Dict[str, tuple],
    workload: float = 6000.0,
    sla: float = 200.0,
) -> Application:
    for graph in graphs:
        validate_graph(graph)
    services = [
        ServiceSpec(graph.service, graph, workload=workload, sla=sla)
        for graph in graphs
    ]
    all_names: Dict[str, None] = {}
    for graph in graphs:
        for ms_name in graph.microservices():
            all_names.setdefault(ms_name, None)
    return Application(
        name=name,
        services=services,
        simulated=_simulated(list(all_names), overrides),
        container_specs={n: ContainerSpec() for n in all_names},
    )


def social_network() -> Application:
    """Social Network: 36 microservices, 3 services, 3 shared (stateless).

    Services: ``compose-post`` (write path), ``read-home-timeline``,
    ``read-user-timeline``.  Shared stateless microservices:
    ``post-storage-service`` (all three), ``user-timeline-service``
    (compose + read-user), ``social-graph-service`` (compose + read-home).
    """

    def post_storage() -> CallNode:
        return _backed(
            "post-storage-service", "post-storage-memcached", "post-storage-mongodb"
        )

    def user_timeline() -> CallNode:
        return _backed(
            "user-timeline-service", "user-timeline-redis", "user-timeline-mongodb"
        )

    def social_graph() -> CallNode:
        return _backed(
            "social-graph-service", "social-graph-redis", "social-graph-mongodb"
        )

    compose = DependencyGraph(
        "compose-post",
        call(
            "nginx-compose",
            stages=[
                [_backed("auth-service", "auth-redis")],
                [
                    call(
                        "compose-post-service",
                        stages=[
                            [
                                call("unique-id-service"),
                                call(
                                    "text-service",
                                    stages=[
                                        [
                                            _backed(
                                                "url-shorten-service",
                                                "url-shorten-mongodb",
                                            ),
                                            _backed(
                                                "user-mention-service",
                                                "user-mention-memcached",
                                                "user-mention-mongodb",
                                            ),
                                        ],
                                        [call("text-filter-service")],
                                    ],
                                ),
                                call(
                                    "media-service",
                                    stages=[
                                        [call("media-filter-service")],
                                        [
                                            call("media-memcached"),
                                            call("media-mongodb"),
                                        ],
                                        [call("media-frontend")],
                                    ],
                                ),
                                _backed(
                                    "user-service",
                                    "user-memcached",
                                    "user-mongodb",
                                    parallel=False,
                                ),
                            ],
                            [call("compose-post-redis")],
                            [post_storage()],
                            [
                                user_timeline(),
                                call(
                                    "write-home-timeline-service",
                                    stages=[
                                        [call("write-home-timeline-rabbitmq")],
                                        [social_graph()],
                                    ],
                                ),
                            ],
                        ],
                    )
                ],
            ],
        ),
    )

    read_home = DependencyGraph(
        "read-home-timeline",
        call(
            "nginx-home",
            stages=[
                [
                    call(
                        "home-timeline-service",
                        stages=[
                            [call("home-timeline-redis")],
                            [social_graph()],
                            [post_storage()],
                        ],
                    )
                ]
            ],
        ),
    )

    read_user = DependencyGraph(
        "read-user-timeline",
        call(
            "nginx-user",
            stages=[[user_timeline()], [post_storage()]],
        ),
    )

    overrides = {
        # The write path's timeline fan-out is workload-sensitive (one
        # heavy thread) while post storage is cheap and wide — exactly the
        # U-vs-P contrast of paper Figs. 4-5.
        "user-timeline-service": (6.0, 1),
        "post-storage-service": (2.5, 2),
        "home-timeline-service": (2.5, 2),
        "social-graph-service": (4.5, 1),
        "compose-post-service": (5.0, 1),
        "unique-id-service": (1.5, 2),
        "text-service": (4.0, 1),
        "url-shorten-service": (2.5, 1),
        "user-mention-service": (2.5, 1),
        "media-service": (4.0, 1),
        "user-service": (2.5, 2),
        "write-home-timeline-service": (3.0, 1),
        "text-filter-service": (2.0, 2),
        "media-filter-service": (2.0, 2),
        "media-frontend": (2.0, 2),
        "auth-service": (2.0, 2),
        "nginx-compose": (1.5, 4),
        "nginx-home": (1.5, 4),
        "nginx-user": (1.5, 4),
    }
    return _application("social-network", [compose, read_home, read_user], overrides)


def media_service() -> Application:
    """Media Service: 38 microservices, 1 service (compose-review)."""

    compose_review = DependencyGraph(
        "compose-review",
        call(
            "nginx-media",
            stages=[
                [_backed("media-auth-service", "media-auth-redis")],
                [
                    call(
                        "compose-review-service",
                        stages=[
                            [
                                _backed(
                                    "movie-id-service",
                                    "movie-id-memcached",
                                    "movie-id-mongodb",
                                ),
                                call("text-review-service"),
                                _backed("user-media-service", "user-media-mongodb"),
                                _backed("rating-service", "rating-redis"),
                            ],
                            [
                                _backed(
                                    "review-storage-service",
                                    "review-storage-memcached",
                                    "review-storage-mongodb",
                                )
                            ],
                            [
                                _backed(
                                    "user-review-service",
                                    "user-review-redis",
                                    "user-review-mongodb",
                                ),
                                _backed(
                                    "movie-review-service",
                                    "movie-review-redis",
                                    "movie-review-mongodb",
                                ),
                            ],
                        ],
                    )
                ],
                [
                    call(
                        "page-service",
                        stages=[
                            [
                                _backed(
                                    "movie-info-service",
                                    "movie-info-memcached",
                                    "movie-info-mongodb",
                                ),
                                _backed(
                                    "plot-service", "plot-memcached", "plot-mongodb"
                                ),
                                _backed(
                                    "cast-info-service",
                                    "cast-info-memcached",
                                    "cast-info-mongodb",
                                ),
                            ],
                            [
                                _backed("video-service", "video-mongodb"),
                                _backed("photo-service", "photo-mongodb"),
                                call("trailer-service"),
                            ],
                            [
                                _backed(
                                    "recommendation-media-service",
                                    "recommendation-media-mongodb",
                                )
                            ],
                        ],
                    )
                ],
            ],
        ),
    )

    overrides = {
        "compose-review-service": (5.0, 1),
        "page-service": (4.0, 1),
        "movie-review-service": (4.0, 1),
        "user-review-service": (3.5, 1),
        "review-storage-service": (2.5, 2),
        "rating-service": (2.0, 2),
        "media-auth-service": (2.0, 2),
        "nginx-media": (1.5, 4),
    }
    return _application("media-service", [compose_review], overrides)


def hotel_reservation() -> Application:
    """Hotel Reservation: 15 microservices, 4 services, 3 shared (stateless).

    Services: ``search-hotel``, ``recommend-hotel``, ``reserve-hotel``,
    ``login-hotel``.  Shared stateless microservices: ``frontend-hotel``
    (all four), ``profile-service`` (search + recommend),
    ``reservation-service`` (search + reserve).
    """

    def profile() -> CallNode:
        return _backed("profile-service", "profile-memcached", "profile-mongodb")

    def reservation() -> CallNode:
        return _backed("reservation-service", "reservation-mongodb")

    search = DependencyGraph(
        "search-hotel",
        call(
            "frontend-hotel",
            stages=[
                [
                    call(
                        "search-service",
                        stages=[
                            [
                                _backed("geo-service", "geo-mongodb"),
                                _backed(
                                    "rate-service",
                                    "rate-memcached",
                                    "rate-mongodb",
                                ),
                            ],
                            [reservation()],
                        ],
                    )
                ],
                [profile()],
            ],
        ),
    )
    recommend = DependencyGraph(
        "recommend-hotel",
        call(
            "frontend-hotel",
            stages=[[call("recommendation-service", stages=[[profile()]])]],
        ),
    )
    reserve = DependencyGraph(
        "reserve-hotel",
        call("frontend-hotel", stages=[[reservation()]]),
    )
    login = DependencyGraph(
        "login-hotel",
        call(
            "frontend-hotel",
            stages=[[_backed("user-hotel-service", "user-hotel-mongodb")]],
        ),
    )

    overrides = {
        "search-service": (6.0, 1),
        "profile-service": (2.5, 2),
        "reservation-service": (2.0, 2),
        "recommendation-service": (4.0, 1),
        "frontend-hotel": (1.5, 4),
        "geo-service": (4.0, 1),
        "rate-service": (3.0, 2),
        "user-hotel-service": (2.5, 2),
    }
    return _application(
        "hotel-reservation", [search, recommend, reserve, login], overrides
    )
