"""Synthetic Alibaba-trace-like workloads.

The paper uses the Alibaba 2021 microservice traces in three places:

* Fig. 2 — the distribution of how many online services share each
  microservice (40 % of microservices are shared by >100 services);
* Fig. 13 — dynamic per-minute workload curves replayed against the
  Social Network application;
* Fig. 16 / §6.5 — Taobao-scale simulations: 500+ services averaging ~50
  microservices each, 300+ shared microservices.

The real traces are not redistributable here, so this module generates
statistically matched synthetic equivalents from a seed:
:func:`sharing_counts` draws per-microservice popularity from a heavy-
tailed Beta so the Fig. 2 CDF shape holds, and :func:`generate_taobao`
builds service dependency graphs over a pool of hot shared microservices
plus per-service private tails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.model import (
    ContainerSpec,
    LatencySegment,
    MicroserviceProfile,
    PiecewiseLatencyModel,
    ServiceSpec,
)
from repro.graphs import CallNode, DependencyGraph
from repro.workloads.arrival import DiurnalRate


def sharing_counts(
    n_microservices: int = 20_000,
    n_services: int = 1_000,
    hot_fraction: float = 0.45,
    seed: int = 0,
) -> np.ndarray:
    """How many services use each microservice (the Fig. 2 population).

    A ``hot_fraction`` of microservices are *hot* (infrastructure-like:
    auth, user, caching tiers) with inclusion probabilities drawn from
    Beta(2.5, 7) — most of them land in well over 100 of 1000 services —
    while the rest form a cold long tail (Beta(1, 200)).  The resulting
    CDF matches the paper's headline: roughly 40 % of microservices are
    shared by more than 100 online services.

    Returns:
        Integer array of length ``n_microservices``: the number of online
        services each microservice appears in.
    """
    if n_microservices < 1 or n_services < 1:
        raise ValueError("population sizes must be positive")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    rng = np.random.default_rng(seed)
    n_hot = int(n_microservices * hot_fraction)
    probabilities = np.concatenate(
        [
            rng.beta(2.5, 7.0, size=n_hot),
            rng.beta(1.0, 200.0, size=n_microservices - n_hot),
        ]
    )
    counts = rng.binomial(n_services, probabilities)
    # Every microservice exists because at least one service calls it.
    return np.maximum(counts, 1)


@dataclass
class TaobaoWorkload:
    """A generated Taobao-scale workload.

    Attributes:
        services: One spec per service (graph, workload, SLA).
        profiles: Piecewise latency profiles per microservice.
        rates: Optional dynamic rate per service (diurnal), for replay.
    """

    services: List[ServiceSpec]
    profiles: Dict[str, MicroserviceProfile]
    rates: Dict[str, DiurnalRate] = field(default_factory=dict)

    def shared_microservices(self) -> List[str]:
        counts: Dict[str, int] = {}
        for spec in self.services:
            for name in spec.graph.microservices():
                counts[name] = counts.get(name, 0) + 1
        return [name for name, value in counts.items() if value > 1]

    def microservice_count(self) -> int:
        names = set()
        for spec in self.services:
            names.update(spec.graph.microservices())
        return len(names)


def _random_profile(
    name: str, rng: np.random.Generator
) -> MicroserviceProfile:
    """A plausible random piecewise profile (continuous at the cut-off)."""
    base = rng.uniform(0.5, 5.0)  # idle P95, ms
    cutoff = rng.uniform(50.0, 400.0)  # req/min/container
    low_slope = base * rng.uniform(0.2, 0.8) / cutoff
    steepness = rng.uniform(4.0, 12.0)
    high_slope = low_slope * steepness
    latency_at_cutoff = low_slope * cutoff + base
    high_intercept = latency_at_cutoff - high_slope * cutoff
    return MicroserviceProfile(
        name=name,
        model=PiecewiseLatencyModel(
            low=LatencySegment(low_slope, base),
            high=LatencySegment(high_slope, high_intercept),
            cutoff=cutoff,
        ),
        resource_demand=float(rng.uniform(0.05, 0.4)),
        container=ContainerSpec(cpu=0.1, memory_mb=200.0),
    )


def _random_tree(
    service: str,
    microservices: List[str],
    rng: np.random.Generator,
    max_children: int = 4,
    parallel_probability: float = 0.5,
) -> DependencyGraph:
    """A random call tree over a fixed multiset of microservices.

    Production graphs behave like trees (paper §5.3.3); children attach to
    random earlier nodes, joining the parent's last stage with
    ``parallel_probability`` (parallel call) or opening a new stage
    (sequential call).
    """
    if not microservices:
        raise ValueError("need at least one microservice for a graph")
    nodes = [CallNode(microservices[0])]
    for name in microservices[1:]:
        parent = nodes[rng.integers(0, len(nodes))]
        child = CallNode(name)
        attach_parallel = (
            parent.stages
            and len(parent.stages[-1]) < max_children
            and rng.random() < parallel_probability
        )
        if attach_parallel:
            parent.stages[-1].append(child)
        else:
            parent.stages.append([child])
        nodes.append(child)
    return DependencyGraph(service=service, root=nodes[0])


def generate_taobao(
    n_services: int = 500,
    mean_graph_size: int = 50,
    shared_pool: int = 350,
    shared_per_service: int = 12,
    sla_range: tuple = (100.0, 400.0),
    workload_range: tuple = (1_000.0, 40_000.0),
    seed: int = 0,
    with_rates: bool = False,
) -> TaobaoWorkload:
    """Generate a Taobao-scale service population (paper §6.5).

    Each service's graph mixes draws from a hot *shared pool* (Zipf-
    weighted, so some microservices are shared by very many services) with
    service-private microservices, yielding 300+ shared microservices for
    the default parameters — the paper's reported count.

    Args:
        n_services: Number of online services (paper: 500+).
        mean_graph_size: Average microservices per service (paper: ~50).
        shared_pool: Size of the hot shared-microservice pool.
        shared_per_service: Mean draws from the pool per service.
        sla_range: Uniform range of per-service SLAs (ms).
        workload_range: Uniform range of per-service workloads (req/min).
        seed: RNG seed.
        with_rates: Also attach diurnal rate processes per service.

    Returns:
        A :class:`TaobaoWorkload`.
    """
    if n_services < 1:
        raise ValueError("n_services must be positive")
    if mean_graph_size < 2:
        raise ValueError("mean_graph_size must be at least 2")
    rng = np.random.default_rng(seed)

    pool = [f"shared-{i:04d}" for i in range(shared_pool)]
    weights = 1.0 / np.arange(1, shared_pool + 1) ** 0.8
    weights /= weights.sum()

    profiles: Dict[str, MicroserviceProfile] = {
        name: _random_profile(name, rng) for name in pool
    }

    services: List[ServiceSpec] = []
    rates: Dict[str, DiurnalRate] = {}
    for index in range(n_services):
        service = f"taobao-svc-{index:04d}"
        size = max(3, int(rng.normal(mean_graph_size, mean_graph_size / 4)))
        n_shared = min(
            size - 2, max(1, int(rng.poisson(shared_per_service)))
        )
        shared_picks = list(
            rng.choice(pool, size=n_shared, replace=False, p=weights)
        )
        n_private = size - n_shared - 1
        private = [f"{service}-ms-{i:03d}" for i in range(n_private)]
        for name in private:
            profiles[name] = _random_profile(name, rng)
        entry = f"{service}-entry"
        profiles[entry] = _random_profile(entry, rng)

        members = shared_picks + private
        rng.shuffle(members)
        graph = _random_tree(service, [entry] + members, rng)
        workload = float(rng.uniform(*workload_range))
        sla = float(rng.uniform(*sla_range))
        services.append(
            ServiceSpec(service, graph, workload=workload, sla=sla)
        )
        if with_rates:
            rates[service] = DiurnalRate(
                base=workload,
                amplitude=float(rng.uniform(0.3, 0.7)),
                period_min=1440.0,
                seed=seed + index + 1,
            )

    return TaobaoWorkload(services=services, profiles=profiles, rates=rates)
