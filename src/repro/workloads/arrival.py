"""Arrival-rate processes.

All processes are callables ``rate(minute) -> requests/minute`` so they can
be handed directly to :class:`~repro.simulator.simulation.ClusterSimulator`
or sampled per scaling round by the experiment harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class StaticRate:
    """Constant workload (the paper's static settings, 600–100 000 req/min)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be non-negative, got {self.rate}")

    def __call__(self, minute: float) -> float:
        return self.rate


@dataclass(frozen=True)
class SteppedRate:
    """Piecewise-constant workload: a list of (start_minute, rate) steps."""

    steps: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("steps must be non-empty")
        starts = [start for start, _ in self.steps]
        if starts != sorted(starts):
            raise ValueError("step start times must be non-decreasing")

    def __call__(self, minute: float) -> float:
        rate = self.steps[0][1]
        for start, value in self.steps:
            if minute >= start:
                rate = value
            else:
                break
        return rate


@dataclass
class DiurnalRate:
    """Alibaba-like diurnal workload: sinusoid plus smooth noise.

    rate(t) = base · (1 + amplitude·sin(2πt/period + phase)) · noise(t),
    floored at zero.  Noise is a fixed per-minute log-normal sequence so
    the process is deterministic for a given seed.
    """

    base: float
    amplitude: float = 0.5
    period_min: float = 1440.0
    phase: float = -math.pi / 2.0  # trough at t=0, peak mid-period
    noise_sigma: float = 0.05
    seed: int = 0
    horizon_min: int = 2880
    _noise: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError(f"base must be positive, got {self.base}")
        if not 0 <= self.amplitude <= 1:
            raise ValueError(f"amplitude must be in [0, 1], got {self.amplitude}")
        rng = np.random.default_rng(self.seed)
        self._noise = rng.lognormal(0.0, self.noise_sigma, size=self.horizon_min)

    def __call__(self, minute: float) -> float:
        wave = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * minute / self.period_min + self.phase
        )
        noise = self._noise[int(minute) % len(self._noise)]
        return max(self.base * wave * noise, 0.0)


@dataclass(frozen=True)
class TraceRate:
    """Replay of a recorded per-minute rate series (held flat per minute)."""

    series: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.series:
            raise ValueError("series must be non-empty")
        if any(value < 0 for value in self.series):
            raise ValueError("rates must be non-negative")

    def __call__(self, minute: float) -> float:
        index = min(int(minute), len(self.series) - 1)
        return self.series[index]

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "TraceRate":
        return cls(tuple(float(v) for v in samples))
