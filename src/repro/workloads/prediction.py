"""Short-horizon workload prediction for proactive scaling.

Erms scales for the *observed* workload; with monitoring delay, reactive
scaling under-provisions on rising edges (our Fig. 13 harness models
this).  A small forecaster closes most of that gap: scale for the
predicted rate one horizon ahead instead of the last observation.  This
is a natural extension the paper leaves implicit ("all schemes could
respond to the workload changes promptly"); the ablation benchmark
quantifies it.

Implementations are deliberately simple and dependency-free:

* :class:`LastValuePredictor` — the reactive baseline (predicts no change);
* :class:`HoltPredictor` — double exponential smoothing (level + trend),
  the classic choice for short-horizon rate forecasting.
"""

from __future__ import annotations

import abc
from typing import List, Optional


class WorkloadPredictor(abc.ABC):
    """Online one-step-ahead rate predictor."""

    @abc.abstractmethod
    def observe(self, rate: float) -> None:
        """Feed one observation (requests/minute)."""

    @abc.abstractmethod
    def predict(self, horizon: float = 1.0) -> float:
        """Forecast the rate ``horizon`` observation intervals ahead."""

    def observe_and_predict(self, rate: float, horizon: float = 1.0) -> float:
        self.observe(rate)
        return self.predict(horizon)


class LastValuePredictor(WorkloadPredictor):
    """Predicts the last observed value — purely reactive scaling."""

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def observe(self, rate: float) -> None:
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        self._last = float(rate)

    def predict(self, horizon: float = 1.0) -> float:
        if self._last is None:
            raise RuntimeError("no observations yet")
        return self._last


class HoltPredictor(WorkloadPredictor):
    """Holt's linear (double exponential) smoothing.

    level_t = α·y_t + (1−α)(level + trend)
    trend_t = β·(level_t − level) + (1−β)·trend
    forecast(h) = level + h·trend  (floored at zero)

    Args:
        alpha: Level smoothing factor in (0, 1].
        beta: Trend smoothing factor in (0, 1].
    """

    def __init__(self, alpha: float = 0.6, beta: float = 0.4):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        self.alpha = alpha
        self.beta = beta
        self._level: Optional[float] = None
        self._trend: float = 0.0

    def observe(self, rate: float) -> None:
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        if self._level is None:
            self._level = float(rate)
            self._trend = 0.0
            return
        previous = self._level
        self._level = self.alpha * rate + (1.0 - self.alpha) * (
            self._level + self._trend
        )
        self._trend = self.beta * (self._level - previous) + (
            1.0 - self.beta
        ) * self._trend

    def predict(self, horizon: float = 1.0) -> float:
        if self._level is None:
            raise RuntimeError("no observations yet")
        return max(self._level + horizon * self._trend, 0.0)


def backtest(
    predictor: WorkloadPredictor, series: List[float], horizon: float = 1.0
) -> List[float]:
    """Run a predictor over a series; returns one forecast per step.

    The i-th output is the forecast made after observing ``series[:i+1]``
    for time ``i + horizon`` — align with ``series[i + horizon]`` when
    scoring.
    """
    forecasts = []
    for value in series:
        forecasts.append(predictor.observe_and_predict(value, horizon))
    return forecasts
