"""Workloads: arrival processes and benchmark application topologies.

* :mod:`repro.workloads.arrival` — static, stepped, and diurnal
  (Alibaba-like) request arrival-rate processes.
* :mod:`repro.workloads.deathstarbench` — synthetic stand-ins for the three
  DeathStarBench applications the paper evaluates (Social Network, Media
  Service, Hotel Reservation) with the same microservice/service/shared
  counts.
* :mod:`repro.workloads.alibaba` — a seeded generator of Alibaba-trace-like
  workloads: the microservice-sharing distribution of Fig. 2 and
  Taobao-scale service populations for the Fig. 16 simulations.
"""

from repro.workloads.arrival import (
    DiurnalRate,
    StaticRate,
    SteppedRate,
    TraceRate,
)
from repro.workloads.deathstarbench import (
    Application,
    analytic_profile,
    hotel_reservation,
    media_service,
    social_network,
)
from repro.workloads.alibaba import (
    TaobaoWorkload,
    generate_taobao,
    sharing_counts,
)
from repro.workloads.prediction import (
    HoltPredictor,
    LastValuePredictor,
    WorkloadPredictor,
    backtest,
)

__all__ = [
    "DiurnalRate",
    "StaticRate",
    "SteppedRate",
    "TraceRate",
    "Application",
    "analytic_profile",
    "hotel_reservation",
    "media_service",
    "social_network",
    "TaobaoWorkload",
    "generate_taobao",
    "sharing_counts",
    "HoltPredictor",
    "LastValuePredictor",
    "WorkloadPredictor",
    "backtest",
]
