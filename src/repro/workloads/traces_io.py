"""Alibaba-v2021-style trace rows: export and call-graph reconstruction.

The cluster-trace-microservices-v2021 dataset the paper analyzes encodes
call graphs as *MSCallGraph* rows: one row per call with a ``traceid``,
a hierarchical ``rpcid`` ("0", "0.1", "0.1.2", ...), the upstream
microservice (``um``), the downstream microservice (``dm``), and the
response time ``rt``.  Sibling calls that share an rpcid prefix are
children of the same parent call; within a parent, calls are issued in
rpcid order with identical-timestamp siblings considered parallel — here,
sibling order is taken as stage order, with an explicit ``parallel`` flag
per row since the public trace's timestamps are too coarse to always
decide.

This module writes and reads that row format (CSV) and reconstructs
:class:`~repro.graphs.dependency.DependencyGraph` objects from it, so the
reproduction can exchange workloads in the shape of the real dataset.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graphs import CallNode, DependencyGraph

FIELDNAMES = ["traceid", "service", "rpcid", "um", "dm", "rt", "parallel"]


@dataclass(frozen=True)
class CallRow:
    """One MSCallGraph-style row."""

    traceid: str
    service: str
    rpcid: str
    um: str  # upstream microservice (caller)
    dm: str  # downstream microservice (callee)
    rt: float  # response time, ms
    parallel: bool = False  # parallel with the previous sibling

    def depth(self) -> int:
        return self.rpcid.count(".")

    def parent_rpcid(self) -> Optional[str]:
        if "." not in self.rpcid:
            return None
        return self.rpcid.rsplit(".", 1)[0]


def graph_to_rows(
    graph: DependencyGraph, traceid: str = "trace-0", rt: float = 1.0
) -> List[CallRow]:
    """Flatten a dependency graph into MSCallGraph-style rows.

    The root microservice appears as the ``dm`` of the synthetic "USER"
    entry call with rpcid "0", matching the dataset's convention.
    """
    rows: List[CallRow] = [
        CallRow(
            traceid=traceid,
            service=graph.service,
            rpcid="0",
            um="USER",
            dm=graph.root.microservice,
            rt=rt,
        )
    ]

    def _visit(node: CallNode, rpcid: str) -> None:
        index = 1
        for stage in node.stages:
            for position, child in enumerate(stage):
                child_rpcid = f"{rpcid}.{index}"
                rows.append(
                    CallRow(
                        traceid=traceid,
                        service=graph.service,
                        rpcid=child_rpcid,
                        um=node.microservice,
                        dm=child.microservice,
                        rt=rt,
                        parallel=position > 0,
                    )
                )
                _visit(child, child_rpcid)
                index += 1

    _visit(graph.root, "0")
    return rows


def rows_to_graph(rows: Sequence[CallRow]) -> DependencyGraph:
    """Rebuild a dependency graph from one trace's rows.

    Rows may arrive unordered; they are sorted by rpcid depth and sibling
    index.  A row whose ``parallel`` flag is set joins its previous
    sibling's stage; otherwise it opens a new stage — reproducing the
    stage structure :func:`graph_to_rows` flattened.
    """
    if not rows:
        raise ValueError("need at least one row")
    traceids = {row.traceid for row in rows}
    if len(traceids) != 1:
        raise ValueError(f"rows span multiple traces: {sorted(traceids)}")

    def _sibling_index(rpcid: str) -> Tuple:
        return tuple(int(part) for part in rpcid.split("."))

    ordered = sorted(rows, key=lambda r: _sibling_index(r.rpcid))
    root_row = ordered[0]
    if root_row.rpcid != "0":
        raise ValueError(f"missing root row (rpcid '0'); got {root_row.rpcid!r}")

    nodes: Dict[str, CallNode] = {"0": CallNode(root_row.dm)}
    for row in ordered[1:]:
        parent_rpcid = row.parent_rpcid()
        parent = nodes.get(parent_rpcid)
        if parent is None:
            raise ValueError(
                f"row {row.rpcid!r} has no parent row {parent_rpcid!r}"
            )
        if parent.microservice != row.um:
            raise ValueError(
                f"row {row.rpcid!r}: upstream {row.um!r} does not match "
                f"parent node {parent.microservice!r}"
            )
        node = CallNode(row.dm)
        if row.parallel and parent.stages:
            parent.stages[-1].append(node)
        else:
            parent.stages.append([node])
        nodes[row.rpcid] = node
    return DependencyGraph(service=root_row.service, root=nodes["0"])


def write_csv(rows: Iterable[CallRow], path: str) -> int:
    """Write rows to a CSV file; returns the count."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDNAMES)
        writer.writeheader()
        for row in rows:
            writer.writerow(
                {
                    "traceid": row.traceid,
                    "service": row.service,
                    "rpcid": row.rpcid,
                    "um": row.um,
                    "dm": row.dm,
                    "rt": row.rt,
                    "parallel": int(row.parallel),
                }
            )
            count += 1
    return count


def read_csv(path: str) -> List[CallRow]:
    """Read rows written by :func:`write_csv`."""
    rows: List[CallRow] = []
    with open(path, newline="") as handle:
        for record in csv.DictReader(handle):
            rows.append(
                CallRow(
                    traceid=record["traceid"],
                    service=record["service"],
                    rpcid=record["rpcid"],
                    um=record["um"],
                    dm=record["dm"],
                    rt=float(record["rt"]),
                    parallel=bool(int(record["parallel"])),
                )
            )
    return rows


def graphs_from_csv(path: str) -> Dict[str, DependencyGraph]:
    """Load a CSV of many traces; returns one graph per traceid."""
    by_trace: Dict[str, List[CallRow]] = {}
    for row in read_csv(path):
        by_trace.setdefault(row.traceid, []).append(row)
    return {
        traceid: rows_to_graph(rows) for traceid, rows in by_trace.items()
    }
