"""Shared experiment plumbing.

Connects the pieces the way Erms' deployment does (paper §3): the cluster
simulator is the testbed, its traces are profiled into piecewise models,
scalers consume the models, and their allocations are evaluated back on
the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import Allocation, MicroserviceProfile, ServiceSpec
from repro.experiments.parallel import WorkerPool, get_context, run_cells
from repro.graphs import DependencyGraph, call
from repro.profiling.piecewise import fit_piecewise
from repro.simulator.simulation import (
    ClusterSimulator,
    RateSpec,
    SimulatedMicroservice,
    SimulationConfig,
    SimulationResult,
)


def evaluate_allocation(
    specs: Sequence[ServiceSpec],
    simulated: Mapping[str, SimulatedMicroservice],
    allocation: Allocation,
    rates: Optional[Mapping[str, RateSpec]] = None,
    duration_min: float = 2.0,
    warmup_min: float = 0.5,
    seed: int = 0,
    delta: float = 0.05,
    container_multipliers: Optional[Mapping[str, Sequence[float]]] = None,
    telemetry=None,
    chaos=None,
    resilience=None,
    on_simulator=None,
) -> SimulationResult:
    """Run one allocation on the simulator and return the measurements.

    Priority scheduling is enabled automatically when the allocation
    carries priorities (i.e. was produced by full Erms).  Pass a
    :class:`~repro.telemetry.TelemetrySink` as ``telemetry`` to collect
    live spans, windowed metrics, and SLA alerts from the evaluation run;
    pass a :class:`~repro.resilience.ChaosSchedule` /
    :class:`~repro.resilience.ResiliencePolicies` as ``chaos`` /
    ``resilience`` to evaluate the allocation under faults.
    ``on_simulator`` is called with the constructed simulator before
    ``run()`` — the observability server attaches here.
    """
    scheduling = "priority" if allocation.priorities else "fcfs"
    config = SimulationConfig(
        duration_min=duration_min,
        warmup_min=warmup_min,
        seed=seed,
        delta=delta,
        scheduling=scheduling,
        record_own_latency=False,
    )
    if rates is None:
        rates = {spec.name: spec.workload for spec in specs}
    simulator = ClusterSimulator(
        specs,
        simulated,
        containers=allocation.containers,
        rates=rates,
        config=config,
        priorities=allocation.priorities,
        container_multipliers=container_multipliers,
        telemetry=telemetry,
        chaos=chaos,
        resilience=resilience,
    )
    if on_simulator is not None:
        on_simulator(simulator)
    return simulator.run()


def _probe_cell(cell: Dict) -> float:
    """Drive one container at one load level; returns the tail latency.

    Top-level so it pickles into pool workers.  The probed microservice
    and the sweep settings are shared context (shipped once per worker);
    the payload carries only the load level and the cell's own seed,
    making the result identical in-process or not.
    """
    context = get_context()
    microservice: SimulatedMicroservice = context["microservice"]
    graph = DependencyGraph("probe", call(microservice.name))
    spec = ServiceSpec("probe", graph, workload=0.0, sla=1.0e9)
    simulator = ClusterSimulator(
        [spec],
        {microservice.name: microservice},
        containers={microservice.name: 1},
        rates={"probe": float(cell["load"])},
        config=SimulationConfig(
            duration_min=context["duration_min"],
            warmup_min=context["warmup_min"],
            seed=cell["seed"],
        ),
        container_multipliers={
            microservice.name: [context["interference_multiplier"]]
        },
    )
    result = simulator.run()
    return result.tail_latency("probe", context["percentile"])


def simulate_profiling_sweep(
    microservice: SimulatedMicroservice,
    loads: Sequence[float],
    interference_multiplier: float = 1.0,
    duration_min: float = 1.5,
    warmup_min: float = 0.5,
    seed: int = 0,
    percentile: float = 95.0,
    workers: int = 1,
    pool: Optional[WorkerPool] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Measure one microservice's P95 latency across per-container loads.

    This is the offline-profiling data collection of §5.2 against the
    simulator: a single container is driven at each load level and its
    tail latency recorded.  Load levels are independent runs seeded
    ``seed + index``, so with ``workers > 1`` they fan out across
    processes and still return exactly the serial result.

    Returns:
        (loads, p95_latencies) arrays.
    """
    context = {
        "microservice": microservice,
        "interference_multiplier": interference_multiplier,
        "duration_min": duration_min,
        "warmup_min": warmup_min,
        "percentile": percentile,
    }
    cells = [
        {"load": load, "seed": seed + index}
        for index, load in enumerate(loads)
    ]
    latencies = run_cells(_probe_cell, cells, workers, context=context, pool=pool)
    return np.asarray(loads, dtype=float), np.asarray(latencies)


def fit_profiles_from_simulation(
    simulated: Mapping[str, SimulatedMicroservice],
    resource_demands: Optional[Mapping[str, float]] = None,
    sweep_points: int = 10,
    max_load_fraction: float = 0.95,
    interference_multiplier: float = 1.0,
    duration_min: float = 1.0,
    warmup_min: Optional[float] = None,
    seed: int = 0,
    workers: int = 1,
    pool: Optional[WorkerPool] = None,
) -> Dict[str, MicroserviceProfile]:
    """Profile every microservice by sweeping the simulator (§5.2).

    The per-container load sweep spans up to ``max_load_fraction`` of each
    microservice's theoretical capacity ``threads / base_service_ms``; the
    measured P95 curve is fitted piecewise.  This produces *measured*
    profiles — the controller's belief is then genuinely learned from the
    substrate it controls, as in the real system.  ``workers`` fans the
    per-load probe runs out across processes (see
    :func:`simulate_profiling_sweep`).
    """
    # Resolve the default once, before iterating: every microservice
    # profiles with the same warmup, and the parameter is never mutated
    # mid-loop.
    if warmup_min is None:
        warmup_min = duration_min / 3.0
    profiles: Dict[str, MicroserviceProfile] = {}
    for name, sim in simulated.items():
        capacity = sim.threads / (
            sim.base_service_ms * interference_multiplier
        ) * 60_000.0
        loads = np.linspace(
            0.1 * capacity, max_load_fraction * capacity, sweep_points
        )
        xs, ys = simulate_profiling_sweep(
            sim,
            loads,
            interference_multiplier=interference_multiplier,
            duration_min=duration_min,
            warmup_min=warmup_min,
            seed=seed,
            workers=workers,
            pool=pool,
        )
        fit = fit_piecewise(xs, ys)
        demand = 1.0
        if resource_demands and name in resource_demands:
            demand = resource_demands[name]
        profiles[name] = MicroserviceProfile(
            name=name, model=fit.model, resource_demand=demand
        )
    return profiles


@dataclass(frozen=True)
class SchemeOutcome:
    """One scheme's results in a comparison experiment."""

    scheme: str
    containers: int
    violation_rate: Optional[float] = None
    p95_latency: Optional[float] = None
