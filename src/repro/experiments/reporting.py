"""Plain-text table formatting for benchmark output.

The paper's figures become printed tables in this reproduction; every
benchmark prints the rows it would plot, so `pytest benchmarks/ -s` shows
the paper-style numbers.  :func:`render_run_report` turns a telemetry
run report (:func:`repro.telemetry.build_run_report`) into the same
table style for ``python -m repro report``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render dict rows as an aligned text table.

    Args:
        rows: Sequence of dicts with identical keys (column order follows
            the first row's key order).
        title: Optional heading printed above the table.
        float_format: Format applied to float cells.

    Returns:
        The rendered table as one string.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())

    def _cell(value: Any) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def render_run_report(report: Mapping[str, Any]) -> str:
    """Render a telemetry run report as readable text tables.

    Sections (each skipped when empty): per-service outcomes, the SLA
    monitor's window timeline, alerts, and the scaling decision audit
    log.  ``report`` is a :func:`repro.telemetry.build_run_report` dict.
    """
    sections: List[str] = []

    service_rows = [
        {
            "service": name,
            "generated": entry.get("generated", 0),
            "completed": entry.get("completed", 0),
            "sla_ms": entry.get("sla_ms", ""),
            "p95_ms": entry.get("p95_ms", ""),
            "violation_rate": entry.get("violation_rate", ""),
        }
        for name, entry in report.get("services", {}).items()
    ]
    if service_rows:
        sections.append(format_table(service_rows, title="Services"))

    window_rows = [
        {
            "service": w["service"],
            "window": w["window"],
            "start_min": w["start_min"],
            "count": w["count"],
            "violations": w["violations"],
            "p95_ms": w["p95_ms"],
            "sla_ms": w["sla_ms"],
        }
        for w in report.get("windows", [])
    ]
    if window_rows:
        sections.append(format_table(window_rows, title="SLA windows"))

    alert_rows: List[Dict[str, Any]] = list(report.get("alerts", []))
    if alert_rows:
        sections.append(format_table(alert_rows, title="Alerts"))
    else:
        sections.append("Alerts\n(none)")

    decision_rows = [
        {
            "minute": d["minute"],
            "actor": d["actor"],
            "microservice": d["microservice"],
            "before": d["before"],
            "after": d["after"],
            "delta": d["delta"],
            "workload": d.get("workload", ""),
            "reason": d["reason"],
        }
        for d in report.get("decisions", [])
    ]
    if decision_rows:
        sections.append(format_table(decision_rows, title="Scaling decisions"))

    summary = (
        f"events={report.get('events_processed', 0)}  "
        f"traces={report.get('traces_collected', 0)}/"
        f"{report.get('traces_sampled', 0)} kept/sampled  "
        f"duration={report.get('duration_min', 0):g} min"
    )
    sections.append(summary)
    return "\n\n".join(sections)
