"""Plain-text table formatting for benchmark output.

The paper's figures become printed tables in this reproduction; every
benchmark prints the rows it would plot, so `pytest benchmarks/ -s` shows
the paper-style numbers.  :func:`render_run_report` turns a telemetry
run report (:func:`repro.telemetry.build_run_report`) into the same
table style for ``python -m repro report``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render dict rows as an aligned text table.

    Args:
        rows: Sequence of dicts with identical keys (column order follows
            the first row's key order).
        title: Optional heading printed above the table.
        float_format: Format applied to float cells.

    Returns:
        The rendered table as one string.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())

    def _cell(value: Any) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def render_run_report(report: Mapping[str, Any]) -> str:
    """Render a telemetry run report as readable text tables.

    Sections (each skipped when empty): per-service outcomes, the SLA
    monitor's window timeline, alerts, and the scaling decision audit
    log.  ``report`` is a :func:`repro.telemetry.build_run_report` dict.
    """
    sections: List[str] = []

    service_rows = [
        {
            "service": name,
            "generated": entry.get("generated", 0),
            "completed": entry.get("completed", 0),
            "sla_ms": entry.get("sla_ms", ""),
            "p95_ms": entry.get("p95_ms", ""),
            "violation_rate": entry.get("violation_rate", ""),
        }
        for name, entry in report.get("services", {}).items()
    ]
    if service_rows:
        sections.append(format_table(service_rows, title="Services"))

    window_rows = [
        {
            "service": w["service"],
            "window": w["window"],
            "start_min": w["start_min"],
            "count": w["count"],
            "violations": w["violations"],
            "p95_ms": w["p95_ms"],
            "sla_ms": w["sla_ms"],
        }
        for w in report.get("windows", [])
    ]
    if window_rows:
        sections.append(format_table(window_rows, title="SLA windows"))

    alert_rows: List[Dict[str, Any]] = list(report.get("alerts", []))
    if alert_rows:
        sections.append(format_table(alert_rows, title="Alerts"))
    else:
        sections.append("Alerts\n(none)")

    decision_rows = [
        {
            "minute": d["minute"],
            "actor": d["actor"],
            "microservice": d["microservice"],
            "before": d["before"],
            "after": d["after"],
            "delta": d["delta"],
            "workload": d.get("workload", ""),
            "reason": d["reason"],
        }
        for d in report.get("decisions", [])
    ]
    if decision_rows:
        sections.append(format_table(decision_rows, title="Scaling decisions"))

    analysis = report.get("analysis")
    if analysis:
        sections.extend(render_analysis_sections(analysis))

    summary = (
        f"events={report.get('events_processed', 0)}  "
        f"traces={report.get('traces_collected', 0)}/"
        f"{report.get('traces_sampled', 0)} kept/sampled  "
        f"duration={report.get('duration_min', 0):g} min"
    )
    sections.append(summary)
    return "\n\n".join(sections)


def render_analysis_sections(analysis: Mapping[str, Any]) -> List[str]:
    """Render a ``RunAnalysis.to_dict()`` payload as text-table sections.

    Shared by ``python -m repro analyze`` and ``render_run_report`` (when
    a run report carries an ``"analysis"`` section).  Sections: critical-
    path attribution, SLA blame ranking, priority inversions, drift
    verdicts, and a sampling summary line.
    """
    sections: List[str] = []

    cp_rows = analysis.get("critical_path", [])
    if cp_rows:
        sections.append(
            format_table(cp_rows, title="Critical-path attribution")
        )

    blame = analysis.get("blame")
    if blame:
        entries = blame.get("entries", [])
        if entries:
            sections.append(
                format_table(
                    entries,
                    title=(
                        f"SLA blame (P{blame.get('percentile', 95):g} vs "
                        f"targets, {len(blame.get('violating_windows', []))} "
                        f"violating windows)"
                    ),
                )
            )
        else:
            sections.append("SLA blame\n(no violating windows)")
        inversions = blame.get("inversions", [])
        if inversions:
            sections.append(
                format_table(inversions, title="Priority inversions")
            )

    drift_rows = [
        {
            "microservice": d["microservice"],
            "drifted": d["drifted"],
            "n_windows": d["n_windows"],
            "median_rel_error": d["median_rel_error"],
            "observed_p95_ms": d["observed_p95_ms"],
            "predicted_p95_ms": d["predicted_p95_ms"],
            "reason": d["reason"],
        }
        for d in analysis.get("drift", [])
    ]
    if drift_rows:
        sections.append(format_table(drift_rows, title="Profile drift"))

    sampling = analysis.get("sampling")
    if sampling:
        threshold = sampling.get("tail_threshold_ms")
        mode = (
            f"tail>{threshold:g}ms" if threshold is not None else "head-only"
        )
        sections.append(
            f"Sampling: {mode}  "
            f"buffered={sampling.get('sampled_traces', 0)}  "
            f"kept={sampling.get('kept_traces', 0)}  "
            f"tail_dropped={sampling.get('tail_dropped', 0)}"
        )
    return sections
