"""Plain-text table formatting for benchmark output.

The paper's figures become printed tables in this reproduction; every
benchmark prints the rows it would plot, so `pytest benchmarks/ -s` shows
the paper-style numbers.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render dict rows as an aligned text table.

    Args:
        rows: Sequence of dicts with identical keys (column order follows
            the first row's key order).
        title: Optional heading printed above the table.
        float_format: Format applied to float cells.

    Returns:
        The rendered table as one string.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())

    def _cell(value: Any) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)
