"""Terminal plots: sparklines, bars, and CDFs for benchmark output.

The paper's figures become text in this reproduction; these helpers make
the printed results legible at a glance without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

import numpy as np

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = None) -> str:
    """Unicode sparkline of a series (resampled to ``width`` if given)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return ""
    if width is not None and width > 0 and data.size > width:
        positions = np.linspace(0, data.size - 1, width)
        data = np.interp(positions, np.arange(data.size), data)
    lo, hi = float(data.min()), float(data.max())
    if hi == lo:
        return _BLOCKS[4] * data.size
    scaled = (data - lo) / (hi - lo) * (len(_BLOCKS) - 2)
    return "".join(_BLOCKS[int(round(v)) + 1] for v in scaled)


def bar_chart(
    values: Mapping[str, float], width: int = 40, fmt: str = "{:.1f}"
) -> str:
    """Horizontal bar chart, one labelled row per entry."""
    if not values:
        return "(no data)"
    top = max(values.values())
    label_width = max(len(str(k)) for k in values)
    lines: List[str] = []
    for key, value in values.items():
        length = 0 if top <= 0 else int(round(value / top * width))
        lines.append(
            f"{str(key).ljust(label_width)}  "
            f"{'█' * length}{'·' if length == 0 else ''} {fmt.format(value)}"
        )
    return "\n".join(lines)


def cdf_table(
    samples_by_label: Mapping[str, Sequence[float]],
    points: int = 5,
) -> str:
    """Percentile table of several distributions (a textual CDF).

    One column per label, one row per percentile — the information of the
    paper's CDF plots (Figs. 11a, 16a) in text form.
    """
    if not samples_by_label:
        return "(no data)"
    percentiles = np.linspace(10, 90, points)
    labels = list(samples_by_label)
    label_width = max(max(len(l) for l in labels), 6)
    header = "pctl".ljust(6) + "  " + "  ".join(
        label.rjust(label_width) for label in labels
    )
    lines = [header, "-" * len(header)]
    for percentile in percentiles:
        row = f"p{percentile:>4.0f} " + "  " + "  ".join(
            f"{np.percentile(np.asarray(list(samples_by_label[label]), dtype=float), percentile):>{label_width}.0f}"
            for label in labels
        )
        lines.append(row)
    return "\n".join(lines)
