"""Experiment harness: one runner per paper figure.

Each runner returns plain dataclasses/dicts of the rows the paper's figure
plots; the benchmark suite prints them and asserts the qualitative shape
(who wins, by roughly what factor, where crossovers fall).  See
EXPERIMENTS.md for the per-figure paper-vs-measured record.
"""

from repro.experiments.delta import run_delta_sweep
from repro.experiments.harness import (
    evaluate_allocation,
    fit_profiles_from_simulation,
    simulate_profiling_sweep,
)
from repro.experiments.parallel import (
    WorkerPool,
    default_workers,
    get_context,
    run_cells,
)
from repro.experiments.reporting import format_table, render_run_report
from repro.experiments.plots import bar_chart, cdf_table, sparkline
from repro.experiments.static import StaticSweepResult, run_static_sweep
from repro.experiments.dynamic import DynamicResult, run_dynamic_workload
from repro.experiments.interference import (
    InterferenceResult,
    run_interference_comparison,
)
from repro.experiments.trace_sim import TraceSimResult, run_trace_simulation
from repro.experiments.resilience import (
    ChaosComparison,
    ResilienceSweepResult,
    default_chaos_schedule,
    default_policy_grid,
    default_resilience_scenario,
    run_chaos_comparison,
    run_resilience_sweep,
)

__all__ = [
    "WorkerPool",
    "default_workers",
    "get_context",
    "evaluate_allocation",
    "fit_profiles_from_simulation",
    "run_cells",
    "run_delta_sweep",
    "simulate_profiling_sweep",
    "format_table",
    "render_run_report",
    "bar_chart",
    "cdf_table",
    "sparkline",
    "StaticSweepResult",
    "run_static_sweep",
    "DynamicResult",
    "run_dynamic_workload",
    "InterferenceResult",
    "run_interference_comparison",
    "TraceSimResult",
    "run_trace_simulation",
    "ChaosComparison",
    "ResilienceSweepResult",
    "default_chaos_schedule",
    "default_policy_grid",
    "default_resilience_scenario",
    "run_chaos_comparison",
    "run_resilience_sweep",
]
