"""δ-parameter sweep for priority scheduling (paper §4.3, Fig. 9).

Erms' priority queue is δ-probabilistic: with probability δ a lower-rank
job is served ahead of a higher-rank one, trading a little latency on the
tight-SLA ("hot") service for starvation-freedom on the loose-SLA
("cold") one.  The paper sweeps δ and finds a sweet spot (δ ≈ 0.05).

:func:`run_delta_sweep` reproduces that sweep on the simulator: a shared
microservice serving one hot and one cold service, replayed once per δ
value.  Each δ cell is an independent simulation with its own seed, so
the sweep fans out through :func:`repro.experiments.parallel.run_cells`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.model import ServiceSpec
from repro.experiments.parallel import WorkerPool, get_context, run_cells
from repro.graphs import DependencyGraph, call
from repro.simulator.simulation import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)

__all__ = ["run_delta_sweep"]


def _delta_cell(cell: Dict) -> Dict:
    """Simulate one δ value (top-level so it pickles into pool workers).

    The scenario (specs, microservice, rates, priorities, settings) is
    constant across the sweep and lives in the shared context; the payload
    is just the δ under test.
    """
    context = get_context()
    result = ClusterSimulator(
        context["specs"],
        context["simulated"],
        containers=context["containers"],
        rates=context["rates"],
        config=SimulationConfig(
            duration_min=context["duration_min"],
            warmup_min=context["warmup_min"],
            seed=context["seed"],
            scheduling="priority",
            delta=cell["delta"],
        ),
        priorities=context["priorities"],
    ).run()
    return {
        "delta": cell["delta"],
        "hot_p95_ms": result.tail_latency("hot"),
        "cold_p95_ms": result.tail_latency("cold"),
    }


def run_delta_sweep(
    deltas: Sequence[float] = (0.0, 0.05, 0.2),
    shared: SimulatedMicroservice = None,
    hot_rate: float = 36_000.0,
    cold_rate: float = 6_000.0,
    hot_sla: float = 50.0,
    cold_sla: float = 300.0,
    duration_min: float = 1.5,
    warmup_min: float = 0.3,
    seed: int = 1,
    workers: int = 1,
    pool: Optional[WorkerPool] = None,
) -> List[Dict]:
    """Sweep δ at a shared microservice under priority scheduling.

    Two services share one microservice ``P``: ``hot`` (tight SLA, high
    rate, rank 0) and ``cold`` (loose SLA, low rate, rank 1).  Each δ is
    one independent simulation seeded with ``seed``, so results are
    identical for any ``workers`` value.

    Returns:
        One row per δ: ``{"delta", "hot_p95_ms", "cold_p95_ms"}``.
    """
    if shared is None:
        shared = SimulatedMicroservice("P", base_service_ms=5.0, threads=4)
    name = shared.name
    specs = [
        ServiceSpec("hot", DependencyGraph("hot", call(name)), 0.0, hot_sla),
        ServiceSpec("cold", DependencyGraph("cold", call(name)), 0.0, cold_sla),
    ]
    context = {
        "specs": specs,
        "simulated": {name: shared},
        "containers": {name: 1},
        "rates": {"hot": hot_rate, "cold": cold_rate},
        "priorities": {name: {"hot": 0, "cold": 1}},
        "duration_min": duration_min,
        "warmup_min": warmup_min,
        "seed": seed,
    }
    cells = [{"delta": float(delta)} for delta in deltas]
    return run_cells(_delta_cell, cells, workers, context=context, pool=pool)
