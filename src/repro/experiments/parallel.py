"""Deterministic process-parallel execution of independent experiment cells.

Every sweep in the experiment layer — the static (workload × SLA × scheme)
grid, the offline profiling load sweep, the interference provisioner
search, the δ sweep — evaluates *independent* simulation cells: each cell
carries its own seed and shares no state with its neighbours.  That makes
them embarrassingly parallel, and — because a cell's result is a pure
function of its payload — exactly reproducible: a ``workers=N`` run
returns the same values as ``workers=1``, cell for cell.

:func:`run_cells` is the one primitive.  It maps a *top-level, picklable*
function over a list of cell payloads on a ``ProcessPoolExecutor``,
preserving input order, and falls back to the serial path whenever
multiprocessing is not worth it (one worker, one cell) or not available
(sandboxes without ``fork``/semaphores, unpicklable payloads, a broken
pool).  Callers therefore never need their own serial branch.
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, List, Sequence, TypeVar

Cell = TypeVar("Cell")
Result = TypeVar("Result")

__all__ = ["default_workers", "run_cells"]


def default_workers() -> int:
    """Worker count used for ``workers=0``: one per CPU."""
    return max(1, os.cpu_count() or 1)


def _run_serial(fn: Callable[[Cell], Result], cells: Sequence[Cell]) -> List[Result]:
    return [fn(cell) for cell in cells]


def run_cells(
    fn: Callable[[Cell], Result],
    cells: Sequence[Cell],
    workers: int = 1,
) -> List[Result]:
    """Evaluate ``fn`` over ``cells``, order-preserving, optionally parallel.

    Args:
        fn: A **module-level** function (it must pickle) taking one cell
            payload.  For determinism the payload must carry everything
            the cell needs, including its RNG seed.
        cells: Cell payloads; results come back in the same order.
        workers: Process count.  ``<= 1`` runs serially in-process;
            ``0`` means "one per CPU" (:func:`default_workers`).

    Returns:
        ``[fn(cell) for cell in cells]`` — by construction the parallel
        path returns exactly this, so serial and parallel runs are
        interchangeable.
    """
    cells = list(cells)
    if workers == 0:
        workers = default_workers()
    if workers <= 1 or len(cells) <= 1:
        return _run_serial(fn, cells)

    try:
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
    except ImportError:  # pragma: no cover - stdlib always has it
        return _run_serial(fn, cells)

    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
            return list(pool.map(fn, cells))
    except (
        OSError,  # no fork / no POSIX semaphores (restricted sandboxes)
        PermissionError,
        BrokenExecutor,  # includes BrokenProcessPool
        pickle.PicklingError,
        AttributeError,  # fn not importable from the worker (not top-level)
        RuntimeError,  # e.g. missing __main__ guard on some start methods
    ):
        # The pool could not run this workload; the serial path always can.
        return _run_serial(fn, cells)
