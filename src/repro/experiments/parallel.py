"""Deterministic process-parallel execution of independent experiment cells.

Every sweep in the experiment layer — the static (workload × SLA × scheme)
grid, the offline profiling load sweep, the interference provisioner
search, the δ sweep — evaluates *independent* simulation cells: each cell
carries its own seed and shares no state with its neighbours.  That makes
them embarrassingly parallel, and — because a cell's result is a pure
function of its payload plus the sweep's shared context — exactly
reproducible: a ``workers=N`` run returns the same values as
``workers=1``, cell for cell.

Two primitives:

* :class:`WorkerPool` — a persistent process pool with a *shared
  read-only context*.  The context (application object, specs, profiles,
  allocation tables — everything constant across a sweep) is shipped to
  each worker exactly **once**, through the fork initializer; per-cell
  payloads then shrink to index-plus-scalar dicts.  One pool is reused
  across every ``run_cells`` call of a ``compare``/``trace-sim`` run;
  the executor is only re-forked when the context actually changes.
* :func:`run_cells` — maps a *top-level, picklable* function over a list
  of cell payloads, preserving input order.  It runs serially when
  parallelism is not worth it (one worker, one cell) and falls back to
  the serial path only when the *pool infrastructure* is unavailable
  (sandboxes without ``fork``/semaphores, unpicklable payloads, a broken
  pool).  An exception raised by the cell function itself is a real
  error: it re-raises immediately, exactly as the serial path would —
  it does NOT trigger a silent serial re-run of every cell.

Cell functions read the shared context via :func:`get_context`; the
serial path installs the same context in-process, so a cell function is
written once and behaves identically everywhere.
"""

from __future__ import annotations

import functools
import os
import pickle
import traceback
from typing import Any, Callable, List, Optional, Sequence, TypeVar

Cell = TypeVar("Cell")
Result = TypeVar("Result")

__all__ = ["WorkerPool", "default_workers", "get_context", "run_cells"]


def default_workers() -> int:
    """Worker count used for ``workers=0``: one per CPU."""
    return max(1, os.cpu_count() or 1)


# ----------------------------------------------------------------------
# Shared read-only context
# ----------------------------------------------------------------------
#: The per-process shared context.  In a pool worker it is installed once
#: by the fork initializer; on the serial path it is installed around the
#: map call.  Treat it as read-only: it is *copied* into workers, so
#: mutations would silently diverge between processes.
_CONTEXT: Any = None


def get_context() -> Any:
    """The sweep-wide shared context visible to the running cell function."""
    return _CONTEXT


def _install_context(context: Any) -> None:
    global _CONTEXT
    _CONTEXT = context


def _init_worker(context: Any) -> None:
    """Fork initializer: receives the shared context once per worker."""
    _install_context(context)


# ----------------------------------------------------------------------
# Cell-error transport
# ----------------------------------------------------------------------
class _CellFailure:
    """An exception raised by the cell function inside a worker.

    Wrapped so it travels back as an ordinary *result*: the parent then
    re-raises the original exception immediately, and pool-infrastructure
    errors (which surface as exceptions from ``executor.map`` itself)
    remain distinguishable from cell errors.
    """

    __slots__ = ("error", "worker_traceback")

    def __init__(self, error: BaseException, worker_traceback: str) -> None:
        self.error = error
        self.worker_traceback = worker_traceback


def _guarded(fn: Callable[[Cell], Result], cell: Cell):
    """Run one cell, converting cell exceptions into :class:`_CellFailure`."""
    try:
        return fn(cell)
    except Exception as exc:  # noqa: BLE001 - transported to the parent
        return _CellFailure(exc, traceback.format_exc())


def _raise_cell_failure(failure: _CellFailure) -> None:
    error = failure.error
    if hasattr(error, "add_note"):  # 3.11+
        error.add_note(
            "raised inside a pool worker; worker traceback:\n"
            + failure.worker_traceback
        )
    raise error


def _pool_errors() -> tuple:
    """Exception classes that mean *the pool* failed, not the cell."""
    from concurrent.futures import BrokenExecutor

    return (
        OSError,  # no fork / no POSIX semaphores (restricted sandboxes)
        PermissionError,
        BrokenExecutor,  # includes BrokenProcessPool
        pickle.PicklingError,
        AttributeError,  # fn not importable from the worker (not top-level)
        TypeError,  # unpicklable payload objects
        RuntimeError,  # e.g. missing __main__ guard on some start methods
    )


def _run_serial(
    fn: Callable[[Cell], Result], cells: Sequence[Cell], context: Any
) -> List[Result]:
    """In-process reference path; installs the same context the pool would."""
    previous = _CONTEXT
    _install_context(context)
    try:
        return [fn(cell) for cell in cells]
    finally:
        _install_context(previous)


# ----------------------------------------------------------------------
# Persistent pool
# ----------------------------------------------------------------------
class WorkerPool:
    """A persistent process pool with a shared read-only context.

    The pool survives across ``map`` calls (and across whole sweeps), so
    worker start-up and context shipping amortize over an entire
    ``compare``/``trace-sim`` run.  The executor is created lazily and
    re-forked only when :meth:`set_context` installs a *different*
    context object — identical context objects are free.

    Args:
        workers: Process count (``0`` = one per CPU).
        measure: Record per-map dispatch statistics (payload bytes) in
            :attr:`last_map_stats`; costs one extra pickle per payload,
            so it is off by default and only used by benchmarks.
    """

    def __init__(self, workers: int = 0, measure: bool = False) -> None:
        self.workers = workers if workers > 0 else default_workers()
        self.measure = measure
        #: Statistics of the most recent parallel map (measure=True only):
        #: ``{"cells": int, "payload_bytes": int, "chunksize": int}``.
        self.last_map_stats: Optional[dict] = None
        self._context: Any = None
        self._executor = None
        self._broken = False

    # -- context ----------------------------------------------------
    def set_context(self, context: Any) -> None:
        """Install the shared context, re-forking workers only on change."""
        if context is self._context:
            return
        self._context = context
        self._shutdown_executor()

    @property
    def context(self) -> Any:
        return self._context

    # -- lifecycle --------------------------------------------------
    def _shutdown_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def _ensure_executor(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self._context,),
            )
        return self._executor

    def close(self) -> None:
        """Shut the workers down; the pool can be mapped again (re-forks)."""
        self._shutdown_executor()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- mapping ----------------------------------------------------
    def map(
        self,
        fn: Callable[[Cell], Result],
        cells: Sequence[Cell],
        chunksize: Optional[int] = None,
    ) -> List[Result]:
        """``[fn(cell) for cell in cells]``, order-preserving.

        Cells are dispatched in chunks so tiny payloads do not drown in
        per-task IPC overhead.  An exception raised *by the cell
        function* re-raises immediately (no serial re-run); only pool-
        infrastructure failures fall back to the serial path.
        """
        cells = list(cells)
        if not cells:
            return []
        if self.workers <= 1 or len(cells) <= 1 or self._broken:
            return _run_serial(fn, cells, self._context)

        if chunksize is None:
            chunksize = max(1, -(-len(cells) // (self.workers * 4)))
        # Pre-flight: everything about to be enqueued must pickle.  An
        # unpicklable function or payload dies inside the executor's
        # queue-feeder thread, after which ``shutdown(wait=True)`` can
        # deadlock joining the manager thread — so verify up front and
        # run serially instead.  The pool itself stays healthy for later
        # maps; the pickle pass doubles as the payload measurement.
        try:
            pickle.dumps(functools.partial(_guarded, fn))
            payload_bytes = sum(len(pickle.dumps(cell)) for cell in cells)
        except Exception:
            if self.measure:
                self.last_map_stats = {
                    "cells": len(cells),
                    "payload_bytes": -1,
                    "chunksize": chunksize,
                }
            return _run_serial(fn, cells, self._context)
        if self.measure:
            self.last_map_stats = {
                "cells": len(cells),
                "payload_bytes": payload_bytes,
                "chunksize": chunksize,
            }
        try:
            executor = self._ensure_executor()
            results = list(
                executor.map(
                    functools.partial(_guarded, fn), cells, chunksize=chunksize
                )
            )
        except _pool_errors():
            # The pool could not run this workload; the serial path always
            # can.  Mark the pool broken so later maps skip straight to it.
            self._broken = True
            try:
                self._shutdown_executor()
            except Exception:  # pragma: no cover - best-effort cleanup
                self._executor = None
            return _run_serial(fn, cells, self._context)

        for result in results:
            if isinstance(result, _CellFailure):
                _raise_cell_failure(result)
        return results


# ----------------------------------------------------------------------
# One-shot helper
# ----------------------------------------------------------------------
def run_cells(
    fn: Callable[[Cell], Result],
    cells: Sequence[Cell],
    workers: int = 1,
    *,
    context: Any = None,
    pool: Optional[WorkerPool] = None,
    chunksize: Optional[int] = None,
) -> List[Result]:
    """Evaluate ``fn`` over ``cells``, order-preserving, optionally parallel.

    Args:
        fn: A **module-level** function (it must pickle) taking one cell
            payload.  For determinism the payload (plus the shared
            context) must carry everything the cell needs, including its
            RNG seed.  Inside ``fn``, :func:`get_context` returns the
            shared context on both the serial and the parallel path.
        cells: Cell payloads; results come back in the same order.
        workers: Process count.  ``<= 1`` runs serially in-process;
            ``0`` means "one per CPU" (:func:`default_workers`).
            Ignored when ``pool`` is given.
        context: Shared read-only context for this map.  ``None`` keeps
            the pool's current context (or no context).
        pool: A persistent :class:`WorkerPool` to reuse; worker start-up
            and context shipping then amortize across calls.
        chunksize: Cells per dispatched task (default: enough for ~4
            chunks per worker).

    Returns:
        ``[fn(cell) for cell in cells]`` — by construction the parallel
        path returns exactly this, so serial and parallel runs are
        interchangeable.

    Raises:
        Whatever ``fn`` raises, immediately, on both paths.  Only pool-
        infrastructure failures are absorbed by the serial fallback.
    """
    cells = list(cells)
    if pool is not None:
        if context is not None:
            pool.set_context(context)
        return pool.map(fn, cells, chunksize=chunksize)
    if workers == 0:
        workers = default_workers()
    if workers <= 1 or len(cells) <= 1:
        return _run_serial(fn, cells, context)
    with WorkerPool(min(workers, len(cells))) as ephemeral:
        ephemeral.set_context(context)
        return ephemeral.map(fn, cells, chunksize=chunksize)
