"""Resilience sweep: violation rates with policies on/off under faults.

The robustness counterpart of the static sweep: a pinned
:class:`~repro.resilience.ChaosSchedule` (container crash with restart,
an error window, a latency spike) is replayed against the *same*
deployment under several :class:`~repro.resilience.ResiliencePolicies`
bundles — from observation-only (``disabled``) to the full
retry + timeout + breaker + admission stack — and the per-service SLA
miss rate is compared.  Because the schedule and every policy RNG are
seeded, each cell is a pure function of (context, payload) and the grid
fans out over :func:`~repro.experiments.parallel.run_cells` unchanged.

Two entry points:

* :func:`run_resilience_sweep` — a controlled two-tenant scenario
  (``gold`` at priority rank 0, ``besteffort`` at rank 1, sharing one
  database tier) designed so the policy stack's effect on the
  high-priority tenant is visible: errors recovered by retries, crash
  backlog shed from the best-effort tenant first (Eqs. 13–14 priority
  consistency — rank 0 is never shed).
* :func:`run_chaos_comparison` — the same on/off comparison over a
  benchmark application and a scaling scheme's allocation (the
  ``python -m repro chaos`` subcommand).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import ServiceSpec
from repro.core.scaling import Autoscaler
from repro.experiments.harness import evaluate_allocation
from repro.experiments.parallel import WorkerPool, get_context, run_cells
from repro.graphs import DependencyGraph, call
from repro.resilience import (
    ChaosSchedule,
    CrashEvent,
    ErrorWindow,
    LatencySpike,
    ResiliencePolicies,
    RetryPolicy,
    TimeoutPolicy,
)
from repro.simulator.simulation import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.workloads.deathstarbench import Application


# ----------------------------------------------------------------------
# Controlled two-tenant scenario
# ----------------------------------------------------------------------
def default_resilience_scenario() -> Dict:
    """Two tenants sharing a database tier, near saturation.

    ``gold`` (rank 0 on the shared tier, tight SLA) and ``besteffort``
    (rank 1, loose SLA) each call a private frontend and then the shared
    ``shared-db``.  The database runs two containers with combined
    capacity just above the offered load, so losing one to a crash
    creates a genuine backlog that admission control must shed — from
    the best-effort tenant only.
    """
    specs = [
        ServiceSpec(
            name="gold",
            graph=DependencyGraph("gold", call("gold-fe", [[call("shared-db")]])),
            workload=16_000.0,
            sla=80.0,
        ),
        ServiceSpec(
            name="besteffort",
            graph=DependencyGraph(
                "besteffort", call("be-fe", [[call("shared-db")]])
            ),
            workload=50_000.0,
            sla=400.0,
        ),
    ]
    simulated = {
        "gold-fe": SimulatedMicroservice("gold-fe", base_service_ms=1.0, threads=4),
        "be-fe": SimulatedMicroservice("be-fe", base_service_ms=1.0, threads=4),
        "shared-db": SimulatedMicroservice(
            "shared-db", base_service_ms=4.0, threads=4
        ),
    }
    return {
        "specs": specs,
        "simulated": simulated,
        "containers": {"gold-fe": 1, "be-fe": 1, "shared-db": 2},
        "rates": {spec.name: spec.workload for spec in specs},
        "priorities": {"shared-db": {"gold": 0, "besteffort": 1}},
    }


def default_chaos_schedule(seed: int = 0) -> ChaosSchedule:
    """The pinned fault schedule for the controlled scenario.

    Inside a 2-minute run: one database container crashes mid-run and
    restarts after 15 s (the backlog that admission control sheds); the
    database then serves a 25 % error window (the retries' job) followed
    by a brief *total* outage (the circuit breaker's job — every call
    fails, the breaker trips within its threshold, and half-open probes
    re-close it when the window ends); finally the best-effort frontend
    suffers a 4x latency spike.
    """
    return ChaosSchedule(
        crashes=(
            CrashEvent(
                at_min=0.6, microservice="shared-db", restart_after_ms=15_000.0
            ),
        ),
        error_windows=(
            ErrorWindow(
                microservice="shared-db",
                start_min=1.1,
                end_min=1.5,
                error_rate=0.25,
            ),
            ErrorWindow(
                microservice="shared-db",
                start_min=1.6,
                end_min=1.7,
                error_rate=1.0,
            ),
        ),
        latency_spikes=(
            LatencySpike(
                microservice="be-fe", start_min=1.75, end_min=1.95, multiplier=4.0
            ),
        ),
        seed=seed,
    )


def default_policy_grid(seed: int = 0) -> List[Tuple[str, ResiliencePolicies]]:
    """(label, policies) pairs from no mitigation to the full stack."""
    return [
        ("no-policy", ResiliencePolicies.disabled(seed=seed)),
        (
            "retry",
            ResiliencePolicies(
                retry=RetryPolicy(), timeout=TimeoutPolicy(), seed=seed
            ),
        ),
        ("full", ResiliencePolicies.default(seed=seed)),
    ]


@dataclass
class ResilienceSweepResult:
    """Rows of the sweep: one per (policy, service)."""

    chaos: ChaosSchedule
    rows: List[Dict] = field(default_factory=list)

    def policies(self) -> List[str]:
        seen: Dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row["policy"], None)
        return list(seen)

    def row(self, policy: str, service: str) -> Dict:
        for row in self.rows:
            if row["policy"] == policy and row["service"] == service:
                return row
        raise KeyError(f"no row for policy={policy!r} service={service!r}")

    def miss_rate(self, policy: str, service: str) -> float:
        return self.row(policy, service)["sla_miss_rate"]

    def improvement(self, service: str, policy: str = "full",
                    baseline: str = "no-policy") -> float:
        """Absolute miss-rate reduction of ``policy`` vs ``baseline``."""
        return self.miss_rate(baseline, service) - self.miss_rate(policy, service)


def _service_rows(result, specs: Sequence[ServiceSpec]) -> List[Dict]:
    """Per-service outcome rows from one simulation result.

    The SLA miss rate folds every way a request can miss its target:
    completions over the SLA (warmup included — faults do not wait for
    it), requests failed after exhausting retries, requests shed by
    admission control, and queued jobs dropped by a non-retried crash.
    """
    rows = []
    for spec in specs:
        generated = result.generated.get(spec.name, 0)
        completed = result.completed.get(spec.name, 0)
        failed = result.failed_requests.get(spec.name, 0)
        shed = result.shed_requests.get(spec.name, 0)
        dropped = result.dropped_requests.get(spec.name, 0)
        latencies = result.latencies(spec.name, include_warmup=True)
        violations = int(np.sum(latencies > spec.sla)) if len(latencies) else 0
        p95 = (
            float(np.percentile(latencies, 95.0)) if len(latencies) else None
        )
        missed = violations + failed + shed + dropped
        rows.append(
            {
                "service": spec.name,
                "sla": spec.sla,
                "generated": generated,
                "completed": completed,
                "failed": failed,
                "shed": shed,
                "dropped": dropped,
                "violations": violations,
                "p95": p95,
                "sla_miss_rate": missed / generated if generated else 0.0,
            }
        )
    return rows


def _resilience_cell(cell: Dict) -> List[Dict]:
    """Run one policy bundle under the shared schedule (pickles for pools)."""
    context = get_context()
    scenario = context["scenario"]
    config = SimulationConfig(
        duration_min=context["duration_min"],
        warmup_min=context["warmup_min"],
        seed=context["seed"],
        scheduling="priority" if scenario["priorities"] else "fcfs",
    )
    simulator = ClusterSimulator(
        scenario["specs"],
        scenario["simulated"],
        containers=scenario["containers"],
        rates=scenario["rates"],
        config=config,
        priorities=scenario["priorities"],
        chaos=context["chaos"],
        resilience=cell["policies"],
    )
    result = simulator.run()
    rows = _service_rows(result, scenario["specs"])
    for row in rows:
        row["policy"] = cell["label"]
        row["stats"] = result.resilience
    return rows


def run_resilience_sweep(
    scenario: Optional[Dict] = None,
    chaos: Optional[ChaosSchedule] = None,
    policy_grid: Optional[Sequence[Tuple[str, ResiliencePolicies]]] = None,
    duration_min: float = 2.0,
    warmup_min: float = 0.25,
    seed: int = 0,
    workers: int = 1,
    pool: Optional[WorkerPool] = None,
) -> ResilienceSweepResult:
    """Replay one fault schedule under each policy bundle.

    Every cell shares the identical deployment, seed, and
    :class:`ChaosSchedule`; only the :class:`ResiliencePolicies` bundle
    varies, so miss-rate differences are attributable to the policies
    alone.  Cells are independent and fan out over ``workers`` processes
    (or a persistent ``pool``) with results identical to ``workers=1``.
    """
    if scenario is None:
        scenario = default_resilience_scenario()
    if chaos is None:
        chaos = default_chaos_schedule(seed=seed)
    if policy_grid is None:
        policy_grid = default_policy_grid(seed=seed)
    context = {
        "scenario": scenario,
        "chaos": chaos,
        "duration_min": duration_min,
        "warmup_min": warmup_min,
        "seed": seed,
    }
    payloads = [
        {"label": label, "policies": policies}
        for label, policies in policy_grid
    ]
    cell_rows = run_cells(
        _resilience_cell, payloads, workers, context=context, pool=pool
    )
    result = ResilienceSweepResult(chaos=chaos)
    for rows in cell_rows:
        result.rows.extend(rows)
    return result


# ----------------------------------------------------------------------
# Application-level on/off comparison (CLI ``chaos`` subcommand)
# ----------------------------------------------------------------------
@dataclass
class ChaosComparison:
    """Policies-off vs policies-on outcomes under one fault schedule."""

    chaos: ChaosSchedule
    #: mode -> per-service rows (see :func:`_service_rows`).
    rows: Dict[str, List[Dict]] = field(default_factory=dict)
    #: mode -> resilience-layer counters.
    stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: mode -> fault / policy decision records (actor, minute, reason).
    decisions: Dict[str, List[Dict]] = field(default_factory=dict)

    def miss_rate(self, mode: str, service: str) -> float:
        for row in self.rows.get(mode, []):
            if row["service"] == service:
                return row["sla_miss_rate"]
        raise KeyError(f"no row for mode={mode!r} service={service!r}")


def run_chaos_comparison(
    app: Application,
    scheme: Autoscaler,
    workload: float,
    sla: float,
    chaos: Optional[ChaosSchedule] = None,
    policies: Optional[ResiliencePolicies] = None,
    duration_min: float = 2.0,
    warmup_min: float = 0.25,
    seed: int = 0,
    on_simulator=None,
) -> ChaosComparison:
    """Scale an application, then replay one fault schedule on/off.

    The allocation comes from ``scheme`` at the given (workload, SLA)
    point; the same allocation then runs twice under the identical
    ``chaos`` schedule — once observation-only
    (:meth:`ResiliencePolicies.disabled`) and once with ``policies``
    (the default bundle unless given).  Both runs attach a telemetry
    sink so every injected fault and policy decision lands in the
    returned decision records.  ``on_simulator`` (if given) is invoked
    with the constructed simulator of the *resilient* run — the
    ``--serve`` observability plane attaches to the run whose breaker /
    chaos activity is worth watching live.
    """
    from repro.telemetry import TelemetryConfig, TelemetrySink

    specs = app.with_workloads(
        {service.name: workload for service in app.services}, sla=sla
    )
    scheme.reset()
    allocation = scheme.scale(specs, app.analytic_profiles())
    if chaos is None:
        chaos = ChaosSchedule.random(
            sorted(app.simulated), duration_min=duration_min, seed=seed
        )
    if policies is None:
        policies = ResiliencePolicies.default(seed=seed)
    comparison = ChaosComparison(chaos=chaos)
    for mode, bundle in (
        ("no-policy", ResiliencePolicies.disabled(seed=policies.seed)),
        ("resilient", policies),
    ):
        sink = TelemetrySink(
            config=TelemetryConfig(seed=seed, max_traces=0)
        )
        result = evaluate_allocation(
            specs,
            app.simulated,
            allocation,
            duration_min=duration_min,
            warmup_min=warmup_min,
            seed=seed,
            telemetry=sink,
            chaos=chaos,
            resilience=bundle,
            on_simulator=on_simulator if mode == "resilient" else None,
        )
        comparison.rows[mode] = _service_rows(result, specs)
        comparison.stats[mode] = result.resilience or {}
        comparison.decisions[mode] = [
            {
                "minute": record.minute,
                "actor": record.actor,
                "microservice": record.microservice,
                "reason": record.reason,
            }
            for record in sink.decisions.records
            if record.actor in ("chaos", "circuit-breaker", "admission",
                                "failure-injection")
        ]
    return comparison
