"""Static-workload comparison (paper §6.3.1, Figs. 11-12, and Fig. 14).

Sweeps (workload, SLA) settings over a benchmark application, scales with
every scheme, and (optionally) replays each allocation on the cluster
simulator to measure end-to-end tail latency and SLA violation rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.model import InfeasibleSLAError, MicroserviceProfile
from repro.core.scaling import Autoscaler
from repro.experiments.harness import evaluate_allocation
from repro.experiments.parallel import WorkerPool, get_context, run_cells
from repro.workloads.deathstarbench import Application


@dataclass
class StaticSweepResult:
    """Rows of the static sweep: one per (workload, sla, scheme)."""

    rows: List[Dict] = field(default_factory=list)

    def schemes(self) -> List[str]:
        seen: Dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row["scheme"], None)
        return list(seen)

    def container_distribution(self, scheme: str) -> np.ndarray:
        """All container totals of one scheme (the Fig. 11a CDF input)."""
        return np.array(
            [row["containers"] for row in self.rows if row["scheme"] == scheme]
        )

    def average_containers(self, scheme: str) -> float:
        values = self.container_distribution(scheme)
        if len(values) == 0:
            raise ValueError(f"no rows for scheme {scheme!r}")
        return float(np.mean(values))

    def average_violation(self, scheme: str) -> float:
        values = [
            row["violation"]
            for row in self.rows
            if row["scheme"] == scheme and row.get("violation") is not None
        ]
        if not values:
            raise ValueError(f"no simulated rows for scheme {scheme!r}")
        return float(np.mean(values))

    def average_p95(self, scheme: str) -> float:
        values = [
            row["p95"]
            for row in self.rows
            if row["scheme"] == scheme and row.get("p95") is not None
        ]
        if not values:
            raise ValueError(f"no simulated rows for scheme {scheme!r}")
        return float(np.mean(values))

    def savings_vs(self, scheme: str, baseline: str) -> float:
        """Fractional container savings of ``scheme`` against ``baseline``."""
        ours = self.average_containers(scheme)
        theirs = self.average_containers(baseline)
        return 1.0 - ours / theirs


def _simulate_static_cell(cell: Dict) -> Dict:
    """Replay one grid cell's allocation (top-level so it pickles).

    The sweep-wide constants — the application, simulation settings,
    sampling configuration — live in the shared context shipped to each
    worker once (:func:`get_context`); the payload carries only what
    varies per cell: the grid coordinates, the seed, and the scheme's
    allocation.  Specs are rebuilt in-worker from the coordinates, so the
    result remains a pure function of (context, payload) and identical
    whether it runs in-process or in a worker process.
    """
    context = get_context()
    app = context["app"]
    specs = app.with_workloads(
        {s.name: cell["workload"] for s in app.services}, sla=cell["sla"]
    )
    allocation = cell["allocation"]
    interference_multiplier = context["interference_multiplier"]
    multipliers = None
    if interference_multiplier != 1.0:
        multipliers = {
            name: [interference_multiplier] * count
            for name, count in allocation.containers.items()
        }
    sink = None
    sampling_rate = context.get("sampling_rate", 1.0)
    tail_threshold_ms = context.get("tail_threshold_ms")
    if sampling_rate < 1.0 or tail_threshold_ms is not None:
        from repro.telemetry import TelemetryConfig, TelemetrySink

        # max_traces=0: the sweep only wants the retention *accounting*
        # (sampled/kept/dropped), not the trace objects, so nothing is
        # materialized or held across hundreds of grid cells.
        sink = TelemetrySink(
            config=TelemetryConfig(
                sampling_rate=sampling_rate,
                tail_threshold_ms=tail_threshold_ms,
                seed=cell["seed"],
                max_traces=0,
            )
        )
    sim = evaluate_allocation(
        specs,
        app.simulated,
        allocation,
        duration_min=context["duration_min"],
        warmup_min=context["warmup_min"],
        seed=cell["seed"],
        container_multipliers=multipliers,
        telemetry=sink,
        chaos=context.get("chaos"),
        resilience=context.get("resilience"),
    )
    violations = []
    p95s = []
    for spec in specs:
        if sim.completed.get(spec.name, 0) == 0:
            continue
        violations.append(sim.sla_violation_rate(spec.name, spec.sla))
        p95s.append(sim.tail_latency(spec.name))
    measured: Dict = (
        {"violation": None, "p95": None}
        if not violations
        else {
            "violation": float(np.mean(violations)),
            "p95": float(np.mean(p95s)),
        }
    )
    if sink is not None:
        measured["traces_sampled"] = sink.sampled_traces
        measured["traces_kept"] = sink.kept_traces
        measured["tail_dropped"] = sink.tail_dropped
    return measured


def run_static_sweep(
    app: Application,
    schemes: Sequence[Autoscaler],
    workloads: Sequence[float],
    slas: Sequence[float],
    profiles: Optional[Mapping[str, MicroserviceProfile]] = None,
    simulate: bool = False,
    duration_min: float = 1.5,
    warmup_min: float = 0.5,
    seed: int = 0,
    interference_multiplier: float = 1.0,
    historic_multiplier: Optional[float] = None,
    workers: int = 1,
    sampling_rate: float = 1.0,
    tail_threshold_ms: Optional[float] = None,
    pool: Optional[WorkerPool] = None,
    chaos=None,
    resilience=None,
) -> StaticSweepResult:
    """Run the full (workload × SLA × scheme) grid.

    Args:
        app: Benchmark application.
        schemes: Autoscalers to compare.
        workloads: Per-service request rates (req/min) to sweep.
        slas: End-to-end SLAs (ms) to sweep.
        profiles: Latency profiles for the scalers; the application's
            analytic profiles by default.
        simulate: Also replay each allocation on the simulator to measure
            violation rate and P95 (slower).
        duration_min / warmup_min / seed: Simulation settings.
        interference_multiplier: Actual host colocation level.  Schemes
            with ``interference_aware`` condition their profiles on it
            (Erms feeds measured utilization into Eq. 15); the rest scale
            against *historic* profiles fitted when colocation was lighter
            (``historic_multiplier``, default halfway between idle and the
            current level) — the paper's §2.2 critique that fixed
            statistics do not track interference.  The simulator replays
            everyone at the true level.
        workers: Process count for the simulation replays (``0`` = one per
            CPU).  Allocations always run serially — schemes are stateful
            (``reset()``/``scale()``) — then the independent per-cell
            simulations fan out; results are identical to ``workers=1``.
        sampling_rate: Trace head-sampling rate for the replays.  Any
            value below 1.0 (or a tail threshold) attaches a counting-only
            telemetry sink per cell; rows then carry
            ``traces_sampled`` / ``traces_kept`` / ``tail_dropped``.
        tail_threshold_ms: Tail-based sampling threshold for the replays
            (see :class:`~repro.telemetry.TelemetryConfig`).
        pool: Persistent :class:`WorkerPool` to reuse across sweeps; the
            sweep's shared context is installed on it (re-forking only if
            it changed) and ``workers`` is ignored.
        chaos / resilience: Optional
            :class:`~repro.resilience.ChaosSchedule` /
            :class:`~repro.resilience.ResiliencePolicies` applied to every
            simulated cell (both are picklable frozen dataclasses, so the
            parallel path is unaffected).

    Returns:
        A :class:`StaticSweepResult`; infeasible (SLA below latency floor)
        combinations are skipped for all schemes alike.
    """
    if profiles is None:
        profiles = app.analytic_profiles(interference_multiplier)
    if historic_multiplier is None:
        historic_multiplier = 1.0 + (interference_multiplier - 1.0) / 2.0
    blind_profiles = (
        app.analytic_profiles(historic_multiplier)
        if interference_multiplier != 1.0
        else profiles
    )
    # Pass 1 (serial): allocations.  Schemes are stateful, so reset/scale
    # must run in grid order; this pass is cheap relative to simulation.
    result = StaticSweepResult()
    cells: List[Dict] = []
    for workload in workloads:
        for sla in slas:
            specs = app.with_workloads(
                {s.name: workload for s in app.services}, sla=sla
            )
            for scheme in schemes:
                scheme_profiles = (
                    profiles if scheme.interference_aware else blind_profiles
                )
                scheme.reset()  # each grid cell is a fresh deployment
                try:
                    allocation = scheme.scale(specs, scheme_profiles)
                except InfeasibleSLAError:
                    continue
                row = {
                    "workload": workload,
                    "sla": sla,
                    "scheme": scheme.name,
                    "containers": allocation.total_containers(),
                    "violation": None,
                    "p95": None,
                }
                result.rows.append(row)
                if simulate:
                    cells.append(
                        {
                            "row": row,
                            "workload": workload,
                            "sla": sla,
                            "seed": seed,
                            "allocation": allocation,
                        }
                    )

    # Pass 2 (parallel-safe): independent simulation replays, one per
    # cell, each fully determined by the shared context + its payload.
    if cells:
        context = {
            "app": app,
            "duration_min": duration_min,
            "warmup_min": warmup_min,
            "interference_multiplier": interference_multiplier,
            "sampling_rate": sampling_rate,
            "tail_threshold_ms": tail_threshold_ms,
            "chaos": chaos,
            "resilience": resilience,
        }
        payloads = [
            {key: value for key, value in cell.items() if key != "row"}
            for cell in cells
        ]
        measured_rows = run_cells(
            _simulate_static_cell, payloads, workers, context=context, pool=pool
        )
        for cell, measured in zip(cells, measured_rows):
            cell["row"].update(measured)
    return result
