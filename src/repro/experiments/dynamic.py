"""Dynamic-workload experiment (paper §6.3.2, Fig. 13).

Replays an Alibaba-like diurnal workload against a benchmark application.
Every scaling window the current rate is observed, each scheme recomputes
its allocation, and the window is simulated at the true rate — yielding
the paper's two time series: containers deployed over time (Fig. 13a) and
tail latency over time with SLA violations at peaks (Fig. 13b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.model import InfeasibleSLAError, MicroserviceProfile
from repro.core.scaling import Autoscaler
from repro.experiments.harness import evaluate_allocation
from repro.experiments.parallel import WorkerPool, get_context, run_cells
from repro.workloads.deathstarbench import Application
from repro.workloads.prediction import WorkloadPredictor


@dataclass
class DynamicResult:
    """Per-window time series for every scheme."""

    windows: List[float] = field(default_factory=list)  # window start minutes
    rates: List[float] = field(default_factory=list)
    containers: Dict[str, List[int]] = field(default_factory=dict)
    p95: Dict[str, List[float]] = field(default_factory=dict)
    violations: Dict[str, List[float]] = field(default_factory=dict)

    def average_containers(self, scheme: str) -> float:
        return float(np.mean(self.containers[scheme]))

    def peak_violation(self, scheme: str) -> float:
        return float(np.max(self.violations[scheme]))

    def mean_violation(self, scheme: str) -> float:
        return float(np.mean(self.violations[scheme]))

    def tracks_workload(self, scheme: str) -> float:
        """Correlation between the rate series and container series."""
        if len(self.windows) < 3:
            raise ValueError("need at least 3 windows")
        return float(np.corrcoef(self.rates, self.containers[scheme])[0, 1])


def _dynamic_cell(cell: Dict) -> Dict:
    """Replay one (window, scheme) allocation (top-level so it pickles).

    The application, SLA and simulation settings are constant across the
    whole run and live in the shared context; the payload carries only
    the window's actual rate, the scheme's allocation and the seed.
    """
    context = get_context()
    app = context["app"]
    sla = context["sla"]
    sim_duration_min = context["sim_duration_min"]
    interference_multiplier = context["interference_multiplier"]
    actual_specs = app.with_workloads(
        {s.name: cell["actual"] for s in app.services}, sla=sla
    )
    allocation = cell["allocation"]
    multipliers = None
    if interference_multiplier != 1.0:
        multipliers = {
            name: [interference_multiplier] * count
            for name, count in allocation.containers.items()
        }
    sim = evaluate_allocation(
        actual_specs,
        app.simulated,
        allocation,
        duration_min=sim_duration_min,
        warmup_min=min(0.3, sim_duration_min / 3),
        seed=cell["seed"],
        container_multipliers=multipliers,
    )
    p95s, violations = [], []
    for spec in actual_specs:
        if sim.completed.get(spec.name, 0) == 0:
            continue
        p95s.append(sim.tail_latency(spec.name))
        violations.append(sim.sla_violation_rate(spec.name, sla))
    return {
        "p95": float(np.mean(p95s)) if p95s else float("nan"),
        "violation": float(np.mean(violations)) if violations else 0.0,
    }


def run_dynamic_workload(
    app: Application,
    schemes: Sequence[Autoscaler],
    rate: Callable[[float], float],
    sla: float = 200.0,
    total_min: float = 30.0,
    window_min: float = 3.0,
    profiles: Optional[Mapping[str, MicroserviceProfile]] = None,
    sim_duration_min: float = 1.0,
    seed: int = 0,
    observation_lag_min: float = 0.0,
    interference_multiplier: float = 1.0,
    historic_multiplier: Optional[float] = None,
    predictor: Optional["WorkloadPredictor"] = None,
    workers: int = 1,
    pool: Optional[WorkerPool] = None,
) -> DynamicResult:
    """Windowed scale-and-replay over a dynamic rate.

    All of the application's services follow the same ``rate`` curve (the
    paper replays one Alibaba workload trace against the Social Network
    application).  ``observation_lag_min`` models monitoring delay: the
    schemes scale for the rate observed that long ago, while the window is
    simulated at the *current* rate — under-provisioning on rising edges
    is how reactive schemes get caught out at workload peaks (Fig. 13b).
    ``interference_multiplier``/``historic_multiplier`` mirror the static
    sweep: interference-aware schemes plan against the live colocation
    level, the rest against historic statistics.  When a ``predictor`` is
    given, schemes plan for its forecast of the *current* rate from the
    lagged observations (proactive scaling) instead of the raw lagged
    observation (reactive scaling).

    Allocations run serially in window order — schemes and the predictor
    are stateful — then every (window, scheme) replay fans out as one
    independent cell over ``workers`` processes (or the given ``pool``);
    results are identical to ``workers=1``.
    """
    if profiles is None:
        profiles = app.analytic_profiles(interference_multiplier)
    if historic_multiplier is None:
        historic_multiplier = 1.0 + (interference_multiplier - 1.0) / 2.0
    blind_profiles = (
        app.analytic_profiles(historic_multiplier)
        if interference_multiplier != 1.0
        else profiles
    )
    result = DynamicResult()
    for scheme in schemes:
        result.containers[scheme.name] = []
        result.p95[scheme.name] = []
        result.violations[scheme.name] = []

    # Pass 1 (serial): observe, predict, allocate — in window order, since
    # schemes and the predictor carry state between windows.  Each
    # feasible (window, scheme) allocation becomes one pending replay;
    # infeasible windows record their sentinel row (0 containers, NaN
    # P95, violation 1.0) immediately.
    pending: List[Dict] = []  # payloads for _dynamic_cell
    slots: List[tuple] = []  # (scheme name, index into that scheme's rows)
    minute = 0.0
    while minute < total_min:
        actual = float(rate(minute))
        observed = float(rate(max(0.0, minute - observation_lag_min)))
        if predictor is not None:
            horizon = (
                observation_lag_min / window_min if window_min > 0 else 1.0
            )
            observed = predictor.observe_and_predict(observed, horizon)
        result.windows.append(minute)
        result.rates.append(actual)
        specs = app.with_workloads(
            {s.name: observed for s in app.services}, sla=sla
        )
        for scheme in schemes:
            scheme_profiles = (
                profiles if scheme.interference_aware else blind_profiles
            )
            try:
                allocation = scheme.scale(specs, scheme_profiles)
            except InfeasibleSLAError:
                result.containers[scheme.name].append(0)
                result.p95[scheme.name].append(float("nan"))
                result.violations[scheme.name].append(1.0)
                continue
            result.containers[scheme.name].append(
                allocation.total_containers()
            )
            result.p95[scheme.name].append(float("nan"))
            result.violations[scheme.name].append(0.0)
            slots.append(
                (scheme.name, len(result.p95[scheme.name]) - 1)
            )
            pending.append(
                {
                    "actual": actual,
                    "allocation": allocation,
                    "seed": seed + int(minute),
                }
            )
        minute += window_min

    # Pass 2 (parallel-safe): the independent window replays.
    if pending:
        context = {
            "app": app,
            "sla": sla,
            "sim_duration_min": sim_duration_min,
            "interference_multiplier": interference_multiplier,
        }
        measured = run_cells(
            _dynamic_cell, pending, workers, context=context, pool=pool
        )
        for (scheme_name, index), row in zip(slots, measured):
            result.p95[scheme_name][index] = row["p95"]
            result.violations[scheme_name][index] = row["violation"]
    return result
