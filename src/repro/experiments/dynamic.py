"""Dynamic-workload experiment (paper §6.3.2, Fig. 13).

Replays an Alibaba-like diurnal workload against a benchmark application.
Every scaling window the current rate is observed, each scheme recomputes
its allocation, and the window is simulated at the true rate — yielding
the paper's two time series: containers deployed over time (Fig. 13a) and
tail latency over time with SLA violations at peaks (Fig. 13b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.model import InfeasibleSLAError, MicroserviceProfile
from repro.core.scaling import Autoscaler
from repro.experiments.harness import evaluate_allocation
from repro.workloads.deathstarbench import Application
from repro.workloads.prediction import WorkloadPredictor


@dataclass
class DynamicResult:
    """Per-window time series for every scheme."""

    windows: List[float] = field(default_factory=list)  # window start minutes
    rates: List[float] = field(default_factory=list)
    containers: Dict[str, List[int]] = field(default_factory=dict)
    p95: Dict[str, List[float]] = field(default_factory=dict)
    violations: Dict[str, List[float]] = field(default_factory=dict)

    def average_containers(self, scheme: str) -> float:
        return float(np.mean(self.containers[scheme]))

    def peak_violation(self, scheme: str) -> float:
        return float(np.max(self.violations[scheme]))

    def mean_violation(self, scheme: str) -> float:
        return float(np.mean(self.violations[scheme]))

    def tracks_workload(self, scheme: str) -> float:
        """Correlation between the rate series and container series."""
        if len(self.windows) < 3:
            raise ValueError("need at least 3 windows")
        return float(np.corrcoef(self.rates, self.containers[scheme])[0, 1])


def run_dynamic_workload(
    app: Application,
    schemes: Sequence[Autoscaler],
    rate: Callable[[float], float],
    sla: float = 200.0,
    total_min: float = 30.0,
    window_min: float = 3.0,
    profiles: Optional[Mapping[str, MicroserviceProfile]] = None,
    sim_duration_min: float = 1.0,
    seed: int = 0,
    observation_lag_min: float = 0.0,
    interference_multiplier: float = 1.0,
    historic_multiplier: Optional[float] = None,
    predictor: Optional["WorkloadPredictor"] = None,
) -> DynamicResult:
    """Windowed scale-and-replay over a dynamic rate.

    All of the application's services follow the same ``rate`` curve (the
    paper replays one Alibaba workload trace against the Social Network
    application).  ``observation_lag_min`` models monitoring delay: the
    schemes scale for the rate observed that long ago, while the window is
    simulated at the *current* rate — under-provisioning on rising edges
    is how reactive schemes get caught out at workload peaks (Fig. 13b).
    ``interference_multiplier``/``historic_multiplier`` mirror the static
    sweep: interference-aware schemes plan against the live colocation
    level, the rest against historic statistics.  When a ``predictor`` is
    given, schemes plan for its forecast of the *current* rate from the
    lagged observations (proactive scaling) instead of the raw lagged
    observation (reactive scaling).
    """
    if profiles is None:
        profiles = app.analytic_profiles(interference_multiplier)
    if historic_multiplier is None:
        historic_multiplier = 1.0 + (interference_multiplier - 1.0) / 2.0
    blind_profiles = (
        app.analytic_profiles(historic_multiplier)
        if interference_multiplier != 1.0
        else profiles
    )
    result = DynamicResult()
    for scheme in schemes:
        result.containers[scheme.name] = []
        result.p95[scheme.name] = []
        result.violations[scheme.name] = []

    minute = 0.0
    while minute < total_min:
        actual = float(rate(minute))
        observed = float(rate(max(0.0, minute - observation_lag_min)))
        if predictor is not None:
            horizon = (
                observation_lag_min / window_min if window_min > 0 else 1.0
            )
            observed = predictor.observe_and_predict(observed, horizon)
        result.windows.append(minute)
        result.rates.append(actual)
        specs = app.with_workloads(
            {s.name: observed for s in app.services}, sla=sla
        )
        for scheme in schemes:
            scheme_profiles = (
                profiles if scheme.interference_aware else blind_profiles
            )
            try:
                allocation = scheme.scale(specs, scheme_profiles)
            except InfeasibleSLAError:
                result.containers[scheme.name].append(0)
                result.p95[scheme.name].append(float("nan"))
                result.violations[scheme.name].append(1.0)
                continue
            actual_specs = app.with_workloads(
                {s.name: actual for s in app.services}, sla=sla
            )
            multipliers = None
            if interference_multiplier != 1.0:
                multipliers = {
                    name: [interference_multiplier] * count
                    for name, count in allocation.containers.items()
                }
            sim = evaluate_allocation(
                actual_specs,
                app.simulated,
                allocation,
                duration_min=sim_duration_min,
                warmup_min=min(0.3, sim_duration_min / 3),
                seed=seed + int(minute),
                container_multipliers=multipliers,
            )
            specs_for_eval = actual_specs
            p95s, violations = [], []
            for spec in specs_for_eval:
                if sim.completed.get(spec.name, 0) == 0:
                    continue
                p95s.append(sim.tail_latency(spec.name))
                violations.append(sim.sla_violation_rate(spec.name, sla))
            result.containers[scheme.name].append(
                allocation.total_containers()
            )
            result.p95[scheme.name].append(
                float(np.mean(p95s)) if p95s else float("nan")
            )
            result.violations[scheme.name].append(
                float(np.mean(violations)) if violations else 0.0
            )
        minute += window_min
    return result
