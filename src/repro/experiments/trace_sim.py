"""Trace-driven simulation at Alibaba scale (paper §6.5, Fig. 16).

Generates a synthetic Taobao-like population (hundreds of services, ~50
microservices each, 300+ shared) and compares schemes *analytically*: each
scheme allocates containers from the profiled models, exactly as the
paper's own trace-driven simulation evaluates "theoretical resource
allocation".  Measured outputs:

* Fig. 16a — the per-service container-count distribution;
* Fig. 16b — the average container total per scheme, the improvement of
  Latency Target Computation alone (Erms-FCFS), and the extra reduction
  from Priority Scheduling (full Erms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.model import InfeasibleSLAError
from repro.core.scaling import Autoscaler
from repro.experiments.parallel import WorkerPool, get_context, run_cells
from repro.workloads.alibaba import TaobaoWorkload


@dataclass
class TraceSimResult:
    """Per-scheme allocations at trace scale."""

    #: scheme -> per-service container totals (for the Fig. 16a CDF).
    per_service: Dict[str, List[int]] = field(default_factory=dict)
    #: scheme -> total containers across the population.
    totals: Dict[str, int] = field(default_factory=dict)
    skipped_services: int = 0

    def average_per_service(self, scheme: str) -> float:
        return float(np.mean(self.per_service[scheme]))

    def reduction_factor(self, scheme: str, baseline: str) -> float:
        """How many times fewer containers ``scheme`` uses than ``baseline``."""
        ours = self.totals[scheme]
        theirs = self.totals[baseline]
        if ours == 0:
            raise ValueError(f"scheme {scheme!r} allocated zero containers")
        return theirs / ours

    def cdf_point(self, scheme: str, containers: int) -> float:
        """Fraction of services needing at most ``containers`` containers."""
        values = np.array(self.per_service[scheme])
        return float(np.mean(values <= containers))


def _check_feasibility_batch(cell: Dict) -> List[bool]:
    """Feasibility flags for one batch of specs (top-level so it pickles).

    The full spec list and the (large) shared profile map ship once per
    worker in the shared context; each payload is just an index range.
    """
    from repro.core.latency_targets import compute_service_targets

    context = get_context()
    specs = context["specs"]
    profiles = context["profiles"]
    flags: List[bool] = []
    for spec in specs[cell["start"] : cell["stop"]]:
        try:
            compute_service_targets(spec, profiles)
            flags.append(True)
        except InfeasibleSLAError:
            flags.append(False)
    return flags


def run_trace_simulation(
    workload: TaobaoWorkload,
    schemes: Sequence[Autoscaler],
    workers: int = 1,
    pool: Optional[WorkerPool] = None,
) -> TraceSimResult:
    """Allocate the whole population with every scheme.

    Shared microservices couple the services, so each scheme scales the
    *entire* population at once; per-service totals attribute each
    microservice's containers to the services using it, split evenly —
    enough for the distribution shape Fig. 16a reports.

    Services whose SLA is infeasible against the generated profiles are
    skipped consistently across schemes.  ``workers`` fans the per-service
    feasibility pre-filter out across processes (``0`` = one per CPU);
    flags are order-preserving, so the feasible set — and every scheme's
    allocation — is identical to the serial run.  The scheme allocations
    themselves stay serial: each couples the whole population at once.
    """
    # Pre-filter infeasible services once so every scheme sees the same
    # set.  The checks are independent per service, so batch them across
    # workers; batches keep the payload count small relative to pickling
    # the shared profile map per cell.
    specs = list(workload.services)
    n_batches = max(1, min(len(specs), (workers or 8) * 4))
    step = (len(specs) + n_batches - 1) // n_batches if specs else 1
    context = {"specs": specs, "profiles": workload.profiles}
    batches = [
        {"start": i, "stop": min(i + step, len(specs))}
        for i in range(0, len(specs), step)
    ]
    flags = [
        flag
        for batch_flags in run_cells(
            _check_feasibility_batch, batches, workers, context=context, pool=pool
        )
        for flag in batch_flags
    ]
    feasible = [spec for spec, ok in zip(specs, flags) if ok]
    skipped = len(specs) - len(feasible)

    users: Dict[str, List[str]] = {}
    for spec in feasible:
        for name in spec.graph.microservices():
            users.setdefault(name, []).append(spec.name)

    result = TraceSimResult(skipped_services=skipped)
    for scheme in schemes:
        allocation = scheme.scale(feasible, workload.profiles)
        per_service: Dict[str, float] = {spec.name: 0.0 for spec in feasible}
        for name, count in allocation.containers.items():
            owners = users.get(name, [])
            if not owners:
                continue
            share = count / len(owners)
            for owner in owners:
                per_service[owner] += share
        result.per_service[scheme.name] = [
            int(round(value)) for value in per_service.values()
        ]
        result.totals[scheme.name] = allocation.total_containers()
    return result
