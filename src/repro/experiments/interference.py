"""Interference-aware provisioning experiment (paper §6.4.3, Fig. 15).

Compares Erms' interference-aware placement against the Kubernetes default
on a cluster where some hosts carry heavy background (batch) load:

* place the same logical allocation with each provisioner;
* derive every container's service-time multiplier from its host's
  utilization (the simulator's interference model);
* replay on the simulator, growing the allocation until the SLA holds —
  the interference-blind placement needs more containers (Fig. 15a) and,
  at equal containers, delivers worse latency (Fig. 15b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import Allocation, MicroserviceProfile
from repro.core.provisioning import (
    Cluster,
    Provisioner,
)
from repro.core.scaling import Autoscaler
from repro.experiments.harness import evaluate_allocation
from repro.experiments.parallel import WorkerPool, get_context, run_cells
from repro.simulator.interference import InterferenceModel
from repro.workloads.deathstarbench import Application


def multipliers_from_placement(
    cluster: Cluster, model: InterferenceModel
) -> Dict[str, List[float]]:
    """Per-container service-time multipliers implied by a placement."""
    multipliers: Dict[str, List[float]] = {}
    for host in cluster.hosts:
        factor = model.host_multiplier(cluster, host)
        for name, count in host.containers.items():
            multipliers.setdefault(name, []).extend([factor] * count)
    return multipliers


def _place(
    provisioner: Provisioner,
    hosts: int,
    background: Sequence[Tuple[float, float]],
    containers: Mapping[str, int],
    profiles: Mapping[str, MicroserviceProfile],
) -> Cluster:
    cluster = Cluster.homogeneous(hosts)
    for index, (cpu, mem) in enumerate(background):
        cluster.hosts[index % hosts].background_cpu += cpu
        cluster.hosts[index % hosts].background_memory_mb += mem
    cluster.register(dict(profiles))
    provisioner.apply(cluster, dict(containers))
    return cluster


@dataclass
class InterferenceResult:
    """Outcome per provisioner."""

    containers_needed: Dict[str, int] = field(default_factory=dict)
    p95_equal_containers: Dict[str, float] = field(default_factory=dict)
    imbalance: Dict[str, float] = field(default_factory=dict)
    rows: List[Dict] = field(default_factory=list)


def _provisioner_search(cell: Dict) -> Dict:
    """The grow-until-SLA-holds loop for one provisioner (picklable cell).

    Rounds within one provisioner are inherently sequential (each round's
    counts depend on the previous verdict), but provisioners never share
    state, so each search is one parallel cell.  Everything the searches
    have in common (specs, profiles, the base allocation, the cluster
    shape) travels once in the shared context; the payload is just the
    provisioner under test.
    """
    context = get_context()
    provisioner: Provisioner = cell["provisioner"]
    specs = context["specs"]
    profiles = context["profiles"]
    base_allocation: Allocation = context["base_allocation"]
    interference: InterferenceModel = context["interference"]
    duration_min = context["duration_min"]

    counts = dict(base_allocation.containers)
    p95_equal = float("nan")
    imbalance = float("nan")
    for round_index in range(context["max_growth_rounds"]):
        cluster = _place(
            provisioner, context["hosts"], context["background"], counts, profiles
        )
        multipliers = multipliers_from_placement(cluster, interference)
        allocation = Allocation(
            containers=dict(counts),
            priorities=base_allocation.priorities,
        )
        sim = evaluate_allocation(
            specs,
            context["simulated"],
            allocation,
            duration_min=duration_min,
            warmup_min=min(0.3, duration_min / 3),
            seed=context["seed"] + round_index,
            container_multipliers=multipliers,
        )
        violations, p95s = [], []
        for spec in specs:
            if sim.completed.get(spec.name, 0) == 0:
                violations.append(1.0)
                continue
            violations.append(sim.sla_violation_rate(spec.name, spec.sla))
            p95s.append(sim.tail_latency(spec.name))
        violation = float(np.mean(violations)) if violations else 0.0
        final_p95 = float(np.mean(p95s)) if p95s else float("nan")
        if round_index == 0:
            # Equal-container comparison (Fig. 15b) uses the first round.
            p95_equal = final_p95
            imbalance = cluster.imbalance()
        if violation <= context["violation_threshold"]:
            break
        counts = {
            name: max(count + 1, math.ceil(count * context["growth_factor"]))
            for name, count in counts.items()
        }
    return {
        "provisioner": provisioner.name,
        "containers": sum(counts.values()),
        "p95_equal": p95_equal,
        "imbalance": imbalance,
    }


def run_interference_comparison(
    app: Application,
    scaler: Autoscaler,
    provisioners: Sequence[Provisioner],
    workload: float = 20_000.0,
    sla: float = 250.0,
    hosts: int = 8,
    background: Sequence[Tuple[float, float]] = ((24.0, 48_000.0),) * 3,
    interference: Optional[InterferenceModel] = None,
    max_growth_rounds: int = 6,
    growth_factor: float = 1.3,
    violation_threshold: float = 0.05,
    duration_min: float = 1.0,
    seed: int = 0,
    profiles: Optional[Mapping[str, MicroserviceProfile]] = None,
    workers: int = 1,
    pool: Optional[WorkerPool] = None,
) -> InterferenceResult:
    """Find the containers each provisioner needs to satisfy the SLA.

    Both provisioners start from the same scheme allocation; whenever the
    simulated violation rate exceeds ``violation_threshold`` every
    microservice's count grows by ``growth_factor`` and the placement is
    redone — mirroring an operator scaling until the SLA holds.  With
    ``workers > 1`` the per-provisioner searches run in parallel
    processes; results are identical to the serial run.
    """
    if interference is None:
        interference = InterferenceModel()
    if profiles is None:
        profiles = app.analytic_profiles()
    specs = app.with_workloads(
        {s.name: workload for s in app.services}, sla=sla
    )
    base_allocation = scaler.scale(specs, profiles)

    context = {
        "specs": specs,
        "profiles": profiles,
        "simulated": app.simulated,
        "base_allocation": base_allocation,
        "interference": interference,
        "hosts": hosts,
        "background": background,
        "max_growth_rounds": max_growth_rounds,
        "growth_factor": growth_factor,
        "violation_threshold": violation_threshold,
        "duration_min": duration_min,
        "seed": seed,
    }
    cells = [{"provisioner": provisioner} for provisioner in provisioners]
    result = InterferenceResult()
    for row in run_cells(
        _provisioner_search, cells, workers, context=context, pool=pool
    ):
        name = row["provisioner"]
        result.containers_needed[name] = row["containers"]
        result.p95_equal_containers[name] = row["p95_equal"]
        result.imbalance[name] = row["imbalance"]
        result.rows.append(dict(row))
    return result
