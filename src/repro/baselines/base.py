"""Shared machinery for the baseline autoscalers.

GrandSLAm and Rhythm allocate latency targets from *statistics* of
microservice latency observed across workloads (mean, variance, and the
correlation with end-to-end latency).  The paper's §2.2 critique is exactly
that these statistics are fixed — they do not change with the operating
point — so the baselines misallocate under load.  We compute them from the
same profiled latency models Erms uses, sweeping the admissible load range,
which is both faithful and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.core.model import MicroserviceProfile, ServiceSpec


@dataclass(frozen=True)
class MicroserviceStats:
    """Workload-independent latency statistics of one microservice."""

    mean: float
    variance: float
    correlation: float

    def __post_init__(self) -> None:
        if self.mean < 0 or self.variance < 0:
            raise ValueError("mean and variance must be non-negative")


def stats_from_profiles(
    spec: ServiceSpec,
    profiles: Mapping[str, MicroserviceProfile],
    sweep_points: int = 40,
) -> Dict[str, MicroserviceStats]:
    """Latency statistics per microservice of one service.

    Sweeps each microservice's per-container load from near zero to 30 %
    past its cut-off (the observable operating range), evaluates the
    profiled latency, and computes mean, variance, and the Pearson
    correlation with the end-to-end latency folded through the graph at
    the same sweep index — mimicking how the baselines would fit these
    statistics from historic traces.
    """
    names = spec.graph.microservices()
    fractions = np.linspace(0.05, 1.3, sweep_points)
    series: Dict[str, np.ndarray] = {}
    for name in names:
        model = profiles[name].model
        loads = fractions * model.cutoff
        series[name] = np.array([model.latency(load) for load in loads])

    e2e = np.zeros(sweep_points)
    for index in range(sweep_points):
        latencies = {name: float(series[name][index]) for name in names}
        e2e[index] = spec.graph.end_to_end_latency(latencies)

    stats: Dict[str, MicroserviceStats] = {}
    for name in names:
        values = series[name]
        mean = float(np.mean(values))
        variance = float(np.var(values))
        if np.std(values) > 0 and np.std(e2e) > 0:
            correlation = float(np.corrcoef(values, e2e)[0, 1])
        else:
            correlation = 0.0
        stats[name] = MicroserviceStats(
            mean=mean, variance=variance, correlation=abs(correlation)
        )
    return stats


def structural_weight_denominator(
    spec: ServiceSpec, weights: Mapping[str, float]
) -> float:
    """Fold weights through the graph: sum sequential, max parallel.

    Allocating ``T_i = SLA · w_i / denom`` with this denominator guarantees
    every critical path's target sum stays within the SLA, since each
    path's weight sum is at most the folded total.
    """
    return spec.graph.end_to_end_latency(dict(weights))


def targets_from_weights(
    spec: ServiceSpec, weights: Mapping[str, float]
) -> Dict[str, float]:
    """Proportional SLA split: T_i = SLA · w_i / structural_fold(w).

    Zero or degenerate weights fall back to a uniform split.
    """
    names = spec.graph.microservices()
    safe = {name: max(weights.get(name, 0.0), 0.0) for name in names}
    if all(value == 0.0 for value in safe.values()):
        safe = {name: 1.0 for name in names}
    denominator = structural_weight_denominator(spec, safe)
    if denominator <= 0:
        safe = {name: 1.0 for name in names}
        denominator = structural_weight_denominator(spec, safe)
    return {
        name: spec.sla * safe[name] / denominator for name in names
    }
