"""Baseline autoscalers the paper compares Erms against (§6.1).

* :class:`GrandSLAm` — latency targets proportional to each microservice's
  mean latency across workloads (Kannan et al., EuroSys'19).
* :class:`Rhythm` — targets proportional to the normalized product of mean
  latency, latency variance, and the correlation between microservice and
  end-to-end latency (Zhao et al., EuroSys'20).
* :class:`Firm` — localizes one critical microservice per critical path and
  iteratively tunes only those (Qiu et al., OSDI'20; the reinforcement-
  learning tuner is modeled by a greedy bottleneck-chasing loop with the
  same observable behaviour: good steady-state, late reaction, and
  over-allocation under high load).

All share the :class:`~repro.core.scaling.Autoscaler` interface, convert
latency targets to container counts through the *same* profiled models as
Erms (only the target-allocation rule differs, as in the paper's
evaluation), and treat shared microservices with default FCFS min-target
scaling.
"""

from repro.baselines.base import MicroserviceStats, stats_from_profiles
from repro.baselines.grandslam import GrandSLAm
from repro.baselines.rhythm import Rhythm
from repro.baselines.firm import Firm

__all__ = [
    "MicroserviceStats",
    "stats_from_profiles",
    "GrandSLAm",
    "Rhythm",
    "Firm",
]
