"""Firm baseline (Qiu et al., OSDI'20; paper §6.1).

Firm localizes, on each critical path, the *critical microservice* with the
heaviest impact on end-to-end latency, and tunes resources for those
microservices only (using reinforcement learning in the original system).
We model the trained tuner's observable policy as a greedy loop: starting
from a conservative baseline allocation, repeatedly add a container to the
critical microservice with the highest predicted own latency until the
predicted end-to-end latency meets the SLA or the iteration budget runs
out.  This reproduces the behaviours the paper attributes to Firm:

* non-critical microservices keep a static allocation, so when one of them
  becomes the bottleneck the tuner wastes resources on critical ones and
  can violate the SLA (Fig. 12-13, "late detection of bottlenecks");
* under high workloads the per-critical-microservice tuning over-allocates
  (Fig. 11's long tail — "more than 3× resources compared to Erms").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Set

from repro.core.latency_targets import predicted_end_to_end
from repro.core.model import (
    Allocation,
    MicroserviceProfile,
    ServiceSpec,
)
from repro.core.scaling import Autoscaler, combined_shared_workloads


@dataclass
class Firm(Autoscaler):
    """Critical-path localization + greedy critical-microservice tuning.

    Attributes:
        max_iterations: Tuning steps per scaling round (the RL agent's
            action budget).
        baseline_load_fraction: Non-critical microservices are statically
            provisioned to run at this fraction of their cut-off load.
        max_paths: Cap on enumerated critical paths per graph.
    """

    max_iterations: int = 100
    baseline_load_fraction: float = 0.9
    max_paths: int = 200
    #: Fraction of a critical microservice's previous allocation retained
    #: at the start of the next round.  The RL agent reclaims resources
    #: when utilization drops, so capacity decays toward the baseline and
    #: must be re-earned step by step when load returns — the late
    #: detection the paper observes at workload peaks.
    scale_down_rate: float = 0.8
    name: str = "firm"

    def __post_init__(self) -> None:
        # Firm's RL agent adjusts the *current* deployment step by step, so
        # consecutive scale() calls start from the previous allocation —
        # and only the *critical* microservices are ever tuned; the rest
        # keep the replica counts they were first deployed with.  Both are
        # the source of Firm's "late detection of bottlenecks" under
        # dynamic workloads (paper §6.3.2).  Call reset() to forget
        # history (a fresh deployment episode).
        self._last_critical_containers: Dict[str, int] = {}
        self._static_baseline: Dict[str, int] = {}

    def reset(self) -> None:
        """Forget the previous deployment (fresh RL episode)."""
        self._last_critical_containers = {}
        self._static_baseline = {}

    def scale(
        self,
        specs: Sequence[ServiceSpec],
        profiles: Mapping[str, MicroserviceProfile],
    ) -> Allocation:
        allocation = Allocation()
        combined = combined_shared_workloads(specs)

        for spec in specs:
            workloads = spec.microservice_workloads()
            # Firm observes actual per-microservice load; at a shared
            # microservice (single FCFS queue) that is the combined demand.
            observed = {
                name: combined.get(name, workloads[name])
                for name in workloads
            }
            critical = self._critical_microservices(spec, profiles, observed)
            containers = self._baseline_allocation(spec, profiles, observed)
            # Non-critical microservices are not autoscaled: they keep the
            # replica counts of their first deployment.
            for name in list(containers):
                if name in self._static_baseline:
                    if name not in critical:
                        containers[name] = self._static_baseline[name]
                else:
                    self._static_baseline[name] = containers[name]
            for name in critical:
                previous = self._last_critical_containers.get(name)
                if previous is not None:
                    decayed = int(previous * self.scale_down_rate)
                    containers[name] = max(containers[name], decayed)
            containers = self._tune(
                spec, profiles, observed, critical, containers
            )
            for name in critical:
                self._last_critical_containers[name] = containers[name]
            allocation.targets[spec.name] = {}
            for name, count in containers.items():
                allocation.containers[name] = max(
                    allocation.containers.get(name, 0), count
                )
        return allocation

    # ------------------------------------------------------------------
    def _critical_microservices(
        self,
        spec: ServiceSpec,
        profiles: Mapping[str, MicroserviceProfile],
        observed: Mapping[str, float],
    ) -> Set[str]:
        """One critical microservice per critical path: max slope·load."""
        critical: Set[str] = set()
        for path in spec.graph.critical_paths(limit=self.max_paths):
            best_name, best_impact = None, -1.0
            for name in path:
                impact = profiles[name].model.high.slope * observed[name]
                if impact > best_impact:
                    best_name, best_impact = name, impact
            if best_name is not None:
                critical.add(best_name)
        return critical

    def _baseline_allocation(
        self,
        spec: ServiceSpec,
        profiles: Mapping[str, MicroserviceProfile],
        observed: Mapping[str, float],
    ) -> Dict[str, int]:
        """Static provisioning at ``baseline_load_fraction`` of the cut-off."""
        containers: Dict[str, int] = {}
        for name in spec.graph.microservices():
            cutoff = profiles[name].model.cutoff
            per_container = cutoff * self.baseline_load_fraction
            containers[name] = max(
                1, -(-int(observed[name]) // max(int(per_container), 1))
            )
        return containers

    def _tune(
        self,
        spec: ServiceSpec,
        profiles: Mapping[str, MicroserviceProfile],
        observed: Mapping[str, float],
        critical: Set[str],
        containers: Dict[str, int],
    ) -> Dict[str, int]:
        """Greedy RL-like loop: grow the worst critical microservice."""
        overrides = dict(observed)
        for _ in range(self.max_iterations):
            predicted = predicted_end_to_end(
                spec, profiles, containers, workload_overrides=overrides
            )
            if predicted <= spec.sla:
                break
            worst, worst_latency = None, -1.0
            for name in critical:
                load = observed[name] / containers[name]
                latency = profiles[name].model.latency(load)
                if latency > worst_latency:
                    worst, worst_latency = name, latency
            if worst is None:
                break
            # No reward gradient: the worst critical microservice is
            # already at its latency floor, so the bottleneck must be a
            # non-critical microservice Firm never tunes — the blind spot
            # the paper attributes to it.  Stop burning resources.
            floor = profiles[worst].model.low.intercept
            if worst_latency <= max(floor, 0.0) * 1.05 + 1e-9:
                break
            # The RL agent scales aggressively when far from the SLO.
            step = max(1, containers[worst] // 5)
            containers[worst] += step
        return containers
