"""Rhythm baseline (Zhao et al., EuroSys'20; paper §6.1).

Rhythm scores each microservice's *contribution* to end-to-end latency as
the normalized product of its mean latency, its latency variance, and the
correlation between its latency and the end-to-end latency, then splits the
SLA proportionally to contribution.  Like GrandSLAm the contribution is a
fixed statistic, so the split does not track the operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.baselines.base import stats_from_profiles, targets_from_weights
from repro.baselines.grandslam import _priorities_from_targets
from repro.core.model import (
    Allocation,
    MicroserviceProfile,
    ServiceSpec,
    best_effort_containers,
)
from repro.core.scaling import Autoscaler, apply_fcfs_shared_scaling


@dataclass
class Rhythm(Autoscaler):
    """Contribution-proportional SLA splitting.

    Attributes:
        sweep_points: Resolution of the statistics sweep.
        use_priority: Bolt-on priority scheduling at shared microservices
            (the §6.4.2 variant; targets are not recomputed).
    """

    sweep_points: int = 40
    use_priority: bool = False
    interference_aware: bool = False
    name: str = "rhythm"

    def __post_init__(self) -> None:
        if self.use_priority:
            self.name = "rhythm+priority"

    def scale(
        self,
        specs: Sequence[ServiceSpec],
        profiles: Mapping[str, MicroserviceProfile],
    ) -> Allocation:
        allocation = Allocation()
        per_service_targets: Dict[str, Dict[str, float]] = {}
        for spec in specs:
            stats = stats_from_profiles(spec, profiles, self.sweep_points)
            raw = {
                name: s.mean * s.variance * s.correlation
                for name, s in stats.items()
            }
            weights = _normalize(raw)
            targets = targets_from_weights(spec, weights)
            per_service_targets[spec.name] = targets
            allocation.targets[spec.name] = targets
            workloads = spec.microservice_workloads()
            for ms_name, target in targets.items():
                needed = best_effort_containers(
                    profiles[ms_name].model, workloads[ms_name], target
                )
                allocation.containers[ms_name] = max(
                    allocation.containers.get(ms_name, 0), needed
                )

        apply_fcfs_shared_scaling(specs, profiles, per_service_targets, allocation)
        if self.use_priority:
            allocation.priorities = _priorities_from_targets(
                specs, per_service_targets
            )
        return allocation


def _normalize(raw: Mapping[str, float]) -> Dict[str, float]:
    """Scale contributions to [epsilon, 1] so no microservice gets zero."""
    values = np.array(list(raw.values()), dtype=float)
    top = float(values.max()) if len(values) else 0.0
    if top <= 0:
        return {name: 1.0 for name in raw}
    # Every microservice needs some latency budget: Rhythm deploys all
    # components, so contributions are floored well above zero (otherwise
    # negligible-contribution microservices would be assigned unmeetable
    # targets and dominate the container count).
    floor = 0.1
    return {
        name: max(value / top, floor) for name, value in raw.items()
    }
