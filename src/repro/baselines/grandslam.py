"""GrandSLAm baseline (Kannan et al., EuroSys'19; paper §6.1).

GrandSLAm splits the end-to-end SLA across the stages of a microservice
pipeline *proportionally to each stage's average latency* observed across
workloads.  The allocation is independent of the current operating point —
the limitation paper §2.2 demonstrates in Fig. 4: the workload-sensitive
microservice is under-budgeted exactly when the workload is high.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.baselines.base import stats_from_profiles, targets_from_weights
from repro.core.model import (
    Allocation,
    MicroserviceProfile,
    ServiceSpec,
    best_effort_containers,
)
from repro.core.scaling import Autoscaler, apply_fcfs_shared_scaling


@dataclass
class GrandSLAm(Autoscaler):
    """Mean-latency-proportional SLA splitting.

    Attributes:
        sweep_points: Resolution of the statistics sweep.
        use_priority: When True, requests at shared microservices are
            priority-scheduled (ranked by target) instead of FCFS — the
            §6.4.2 "GrandSLAm + priority" variant.  Note that unlike Erms,
            targets are *not* recomputed: the paper's point is that bolting
            priority onto GrandSLAm barely helps.
    """

    sweep_points: int = 40
    use_priority: bool = False
    interference_aware: bool = False
    name: str = "grandslam"

    def __post_init__(self) -> None:
        if self.use_priority:
            self.name = "grandslam+priority"

    def scale(
        self,
        specs: Sequence[ServiceSpec],
        profiles: Mapping[str, MicroserviceProfile],
    ) -> Allocation:
        allocation = Allocation()
        per_service_targets: Dict[str, Dict[str, float]] = {}
        for spec in specs:
            stats = stats_from_profiles(spec, profiles, self.sweep_points)
            weights = {name: s.mean for name, s in stats.items()}
            targets = targets_from_weights(spec, weights)
            per_service_targets[spec.name] = targets
            allocation.targets[spec.name] = targets
            workloads = spec.microservice_workloads()
            for ms_name, target in targets.items():
                needed = best_effort_containers(
                    profiles[ms_name].model, workloads[ms_name], target
                )
                allocation.containers[ms_name] = max(
                    allocation.containers.get(ms_name, 0), needed
                )

        apply_fcfs_shared_scaling(specs, profiles, per_service_targets, allocation)
        if self.use_priority:
            allocation.priorities = _priorities_from_targets(
                specs, per_service_targets
            )
        return allocation


def _priorities_from_targets(
    specs: Sequence[ServiceSpec],
    per_service_targets: Mapping[str, Mapping[str, float]],
) -> Dict[str, Dict[str, int]]:
    """Rank services at shared microservices by their targets (low first)."""
    users: Dict[str, list] = {}
    for spec in specs:
        for name in spec.graph.microservices():
            users.setdefault(name, []).append(spec.name)
    priorities: Dict[str, Dict[str, int]] = {}
    for ms_name, services in users.items():
        if len(services) < 2:
            continue
        ordered = sorted(
            services, key=lambda svc: (per_service_targets[svc][ms_name], svc)
        )
        priorities[ms_name] = {svc: rank for rank, svc in enumerate(ordered)}
    return priorities
