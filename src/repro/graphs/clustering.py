"""Dependency-graph clustering for dynamic call graphs (paper §7, §9).

A service's call graph can vary with request content.  Erms' shipped
behaviour merges all observed variants into one *complete* graph and
scales for it — over-provisioning when most requests touch only a small
subset (§7).  The paper names the remedy as future work: *cluster graphs
into multiple classes and scale resources in each class instead of a
complete graph* (§9).  This module implements that extension:

* :func:`graph_similarity` — Jaccard similarity over node and edge sets;
* :func:`cluster_graphs` — greedy agglomerative clustering by similarity
  threshold, each class keeping its merged representative graph;
* :class:`GraphClass` — a class of variants: merged graph, members, and
  the observed frequency used to split the service workload per class.

Scaling per class then proceeds by treating each class as a sub-service
with its share of the workload; containers per microservice are the sum
over classes (each class's requests are disjoint traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from repro.graphs.dependency import CallNode, DependencyGraph


def _node_set(graph: DependencyGraph) -> Set[str]:
    return set(graph.microservices())


def _edge_set(graph: DependencyGraph) -> Set[Tuple[str, str]]:
    edges: Set[Tuple[str, str]] = set()

    def _visit(node: CallNode) -> None:
        for child in node.children():
            edges.add((node.microservice, child.microservice))
            _visit(child)

    _visit(graph.root)
    return edges


def graph_similarity(first: DependencyGraph, second: DependencyGraph) -> float:
    """Jaccard similarity over nodes and edges, averaged.

    1.0 for structurally identical microservice sets/call edges, 0.0 for
    disjoint graphs.  Cheap (linear in graph size) — this runs over every
    trace variant of every service.
    """
    nodes1, nodes2 = _node_set(first), _node_set(second)
    node_union = nodes1 | nodes2
    node_score = len(nodes1 & nodes2) / len(node_union) if node_union else 1.0

    edges1, edges2 = _edge_set(first), _edge_set(second)
    edge_union = edges1 | edges2
    edge_score = len(edges1 & edges2) / len(edge_union) if edge_union else 1.0
    return (node_score + edge_score) / 2.0


def merge_variants(
    service: str, variants: Sequence[DependencyGraph]
) -> DependencyGraph:
    """Union several variants into one complete graph (paper §7).

    Children are matched by microservice name within corresponding stages
    (the Tracing Coordinator's merge rule); the result over-approximates
    every variant.
    """
    if not variants:
        raise ValueError("need at least one variant")
    from repro.tracing.coordinator import _merge_call_trees
    import copy

    merged = copy.deepcopy(variants[0].root)
    for variant in variants[1:]:
        _merge_call_trees(merged, copy.deepcopy(variant.root))
    return DependencyGraph(service=service, root=merged)


@dataclass
class GraphClass:
    """One cluster of graph variants."""

    representative: DependencyGraph
    members: List[int] = field(default_factory=list)  # variant indices
    weight: float = 0.0  # fraction of requests taking this class

    def size(self) -> int:
        return len(self.members)


def cluster_graphs(
    variants: Sequence[DependencyGraph],
    frequencies: Sequence[float] = None,
    similarity_threshold: float = 0.6,
) -> List[GraphClass]:
    """Greedy agglomerative clustering of graph variants.

    Each variant joins the first existing class whose representative is at
    least ``similarity_threshold`` similar, and the representative is
    re-merged to cover it; otherwise it founds a new class.  Variants are
    processed in descending frequency so the biggest classes form around
    the most common shapes.

    Args:
        variants: Observed graph variants of one service.
        frequencies: Relative frequency per variant (uniform by default).
        similarity_threshold: Joining threshold in [0, 1]; 0 reproduces
            the complete-graph behaviour (one class), 1 keeps every
            distinct variant separate.

    Returns:
        Classes with weights normalized to sum to 1.
    """
    if not variants:
        raise ValueError("need at least one variant")
    if not 0.0 <= similarity_threshold <= 1.0:
        raise ValueError(
            f"similarity_threshold must be in [0, 1], got {similarity_threshold}"
        )
    if frequencies is None:
        frequencies = [1.0] * len(variants)
    if len(frequencies) != len(variants):
        raise ValueError("frequencies must match variants")
    if any(f < 0 for f in frequencies):
        raise ValueError("frequencies must be non-negative")
    total = sum(frequencies) or 1.0

    order = sorted(
        range(len(variants)), key=lambda i: frequencies[i], reverse=True
    )
    classes: List[GraphClass] = []
    for index in order:
        variant = variants[index]
        best_class, best_score = None, similarity_threshold
        for cls in classes:
            score = graph_similarity(cls.representative, variant)
            if score >= best_score:
                best_class, best_score = cls, score
        if best_class is None:
            classes.append(
                GraphClass(
                    representative=merge_variants(variant.service, [variant]),
                    members=[index],
                    weight=frequencies[index] / total,
                )
            )
        else:
            best_class.members.append(index)
            best_class.weight += frequencies[index] / total
            best_class.representative = merge_variants(
                variant.service, [best_class.representative, variant]
            )
    return classes


def class_workloads(
    classes: Sequence[GraphClass], service_workload: float
) -> List[float]:
    """Split a service's request rate across its graph classes."""
    if service_workload < 0:
        raise ValueError("service_workload must be non-negative")
    return [cls.weight * service_workload for cls in classes]
