"""Structural validation of dependency graphs.

The Erms scaling models assume well-formed call trees: no empty stages, no
recursive self-calls on a path (which would make the end-to-end latency
recursion diverge), positive fan-out factors, and non-empty microservice
names.  ``validate_graph`` enforces these invariants and raises
:class:`GraphValidationError` with a precise message on violation.
"""

from __future__ import annotations

from typing import List

from repro.graphs import dependency


class GraphValidationError(ValueError):
    """A dependency graph violates a structural invariant."""


def validate_graph(graph: "dependency.DependencyGraph") -> None:
    """Check every invariant; raise :class:`GraphValidationError` on failure."""
    if not graph.service:
        raise GraphValidationError("service name must be non-empty")
    _validate_node(graph.root, ancestry=[])


def _validate_node(node: "dependency.CallNode", ancestry: List[str]) -> None:
    if not node.microservice:
        raise GraphValidationError("microservice name must be non-empty")
    if node.calls_per_request <= 0:
        raise GraphValidationError(
            f"calls_per_request of {node.microservice!r} must be positive, "
            f"got {node.calls_per_request}"
        )
    if node.microservice in ancestry:
        cycle = " -> ".join(ancestry + [node.microservice])
        raise GraphValidationError(f"recursive call cycle detected: {cycle}")
    for index, stage in enumerate(node.stages):
        if not stage:
            raise GraphValidationError(
                f"stage {index} of {node.microservice!r} is empty"
            )
        for child in stage:
            _validate_node(child, ancestry + [node.microservice])
