"""Dependency-graph data model.

The model follows the paper's description of microservice call structure
(paper §2.1): a request enters at a *root* microservice, which then calls its
downstream microservices in *stages*.  Stages execute sequentially; calls
within one stage execute in parallel.  The graph is a call tree — the same
microservice may appear at several call sites (both within one service and
across services), which is exactly how microservice *sharing* arises.

Example — the graph of paper Fig. 1, where T calls Url and U in parallel and
then calls C::

    graph = DependencyGraph(
        service="fig1",
        root=call("T", stages=[[call("Url"), call("U")], [call("C")]]),
    )
    graph.critical_paths()   # [("T", "Url", "C"), ("T", "U", "C")]
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple


@dataclass
class CallNode:
    """One call site in a dependency graph.

    Attributes:
        microservice: Name of the microservice handling this call.
        stages: Sequential stages of downstream calls.  Each stage is a list
            of calls issued in parallel; the next stage starts only after
            every call of the previous stage has returned.
        calls_per_request: Average number of calls made to this node per
            service request (fan-out amplification).  ``1.0`` for plain
            one-call-per-request edges.
    """

    microservice: str
    stages: List[List["CallNode"]] = field(default_factory=list)
    calls_per_request: float = 1.0

    def children(self) -> Iterator["CallNode"]:
        """Yield every downstream call node, stage by stage."""
        for stage in self.stages:
            for node in stage:
                yield node

    def walk(self) -> Iterator["CallNode"]:
        """Yield this node and every descendant in depth-first order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def add_sequential(self, node: "CallNode") -> "CallNode":
        """Append ``node`` as a new sequential stage and return it."""
        self.stages.append([node])
        return node

    def add_parallel(self, node: "CallNode") -> "CallNode":
        """Append ``node`` to the last stage (creating one if needed)."""
        if not self.stages:
            self.stages.append([])
        self.stages[-1].append(node)
        return node


def call(
    microservice: str,
    stages: Sequence[Sequence[CallNode]] = (),
    calls_per_request: float = 1.0,
) -> CallNode:
    """Convenience constructor for declaratively nested call trees."""
    return CallNode(
        microservice=microservice,
        stages=[list(stage) for stage in stages],
        calls_per_request=calls_per_request,
    )


@dataclass
class DependencyGraph:
    """The call tree of one online service.

    Attributes:
        service: Name of the online service this graph belongs to.
        root: The entering microservice's call node (e.g. an Nginx frontend).
    """

    service: str
    root: CallNode

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def nodes(self) -> List[CallNode]:
        """All call nodes in depth-first order (root first)."""
        return list(self.root.walk())

    def microservices(self) -> List[str]:
        """Unique microservice names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for node in self.root.walk():
            seen.setdefault(node.microservice, None)
        return list(seen)

    def node_count(self) -> int:
        """Number of call sites (counting repeated microservices)."""
        return sum(1 for _ in self.root.walk())

    def edge_count(self) -> int:
        """Number of upstream->downstream call edges."""
        return self.node_count() - 1

    def depth(self) -> int:
        """Length (in microservices) of the longest root-to-leaf chain."""

        def _depth(node: CallNode) -> int:
            extra = sum(
                max((_depth(child) for child in stage), default=0)
                for stage in node.stages
            )
            return 1 + extra

        return _depth(self.root)

    def workload_multipliers(self) -> Dict[str, float]:
        """Per-microservice calls issued per one service request.

        A microservice appearing at several call sites accumulates the
        product of ``calls_per_request`` factors along each path.  This is
        the :math:`\\gamma_i / \\gamma_{service}` ratio used to translate a
        service arrival rate into microservice workloads.
        """
        multipliers: Dict[str, float] = {}

        def _visit(node: CallNode, factor: float) -> None:
            factor *= node.calls_per_request
            multipliers[node.microservice] = (
                multipliers.get(node.microservice, 0.0) + factor
            )
            for child in node.children():
                _visit(child, factor)

        _visit(self.root, 1.0)
        return multipliers

    # ------------------------------------------------------------------
    # Critical paths
    # ------------------------------------------------------------------
    def critical_paths(self, limit: int = 10_000) -> List[Tuple[str, ...]]:
        """Enumerate critical paths as tuples of microservice names.

        A critical path picks one branch from every parallel stage along the
        way (paper §2.1); the end-to-end latency is the maximum path sum.
        The number of paths can grow exponentially in pathological graphs, so
        enumeration stops after ``limit`` paths.
        """
        paths = list(itertools.islice(self._paths(self.root), limit))
        return [tuple(p) for p in paths]

    def _paths(self, node: CallNode) -> Iterator[List[str]]:
        stage_choices: List[List[List[str]]] = []
        for stage in node.stages:
            choices: List[List[str]] = []
            for child in stage:
                choices.extend(self._paths(child))
            stage_choices.append(choices)
        if not stage_choices:
            yield [node.microservice]
            return
        for combo in itertools.product(*stage_choices):
            path = [node.microservice]
            for sub in combo:
                path.extend(sub)
            yield path

    def path_latency(
        self, path: Sequence[str], latencies: Dict[str, float]
    ) -> float:
        """Sum of per-microservice latencies along ``path``."""
        return sum(latencies[name] for name in path)

    def end_to_end_latency(self, latencies: Dict[str, float]) -> float:
        """End-to-end latency given each microservice's own latency.

        Computed structurally (own latency plus, per sequential stage, the
        maximum downstream response) rather than by enumerating critical
        paths, so it stays linear in graph size.
        """

        def _response(node: CallNode) -> float:
            total = latencies[node.microservice]
            for stage in node.stages:
                total += max((_response(child) for child in stage), default=0.0)
            return total

        return _response(self.root)
