"""Microservice dependency graphs.

A *dependency graph* (paper Fig. 1) records how one user request fans out
through a service's microservices: each microservice may call downstream
microservices either sequentially (one stage after another) or in parallel
(several calls within one stage).  The end-to-end latency of the service is
the longest execution time over all *critical paths* of the graph.

This package provides the graph data model used by every other part of the
reproduction: the tracing coordinator extracts these graphs from spans, the
Erms core merges them into chains of virtual microservices, and the cluster
simulator walks them to drive request execution.
"""

from repro.graphs.dependency import CallNode, DependencyGraph, call
from repro.graphs.builder import GraphBuilder
from repro.graphs.validation import GraphValidationError, validate_graph

__all__ = [
    "CallNode",
    "DependencyGraph",
    "call",
    "GraphBuilder",
    "GraphValidationError",
    "validate_graph",
    # repro.graphs.clustering is imported lazily by its users to avoid a
    # circular import with repro.tracing (whose merge rule it reuses).
]
