"""Incremental construction of dependency graphs.

``GraphBuilder`` complements the declarative :func:`repro.graphs.call`
constructor for code that discovers a graph gradually — e.g. the tracing
coordinator adding edges as it replays spans, or the synthetic Alibaba trace
generator growing random trees.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.dependency import CallNode, DependencyGraph
from repro.graphs.validation import validate_graph


class GraphBuilder:
    """Builds a :class:`DependencyGraph` one call at a time.

    Example::

        builder = GraphBuilder("compose-post")
        t = builder.set_root("T")
        url = builder.add_parallel(t, "Url")
        u = builder.add_parallel(t, "U", stage=url)   # same stage as Url
        builder.add_sequential(t, "C")
        graph = builder.build()
    """

    def __init__(self, service: str):
        self.service = service
        self._root: Optional[CallNode] = None

    def set_root(self, microservice: str, calls_per_request: float = 1.0) -> CallNode:
        """Create the entering microservice node."""
        if self._root is not None:
            raise ValueError(f"root already set for service {self.service!r}")
        self._root = CallNode(microservice, calls_per_request=calls_per_request)
        return self._root

    def add_sequential(
        self,
        parent: CallNode,
        microservice: str,
        calls_per_request: float = 1.0,
    ) -> CallNode:
        """Add a call that runs after all of ``parent``'s existing stages."""
        node = CallNode(microservice, calls_per_request=calls_per_request)
        return parent.add_sequential(node)

    def add_parallel(
        self,
        parent: CallNode,
        microservice: str,
        stage: Optional[CallNode] = None,
        calls_per_request: float = 1.0,
    ) -> CallNode:
        """Add a call running in parallel with ``parent``'s last stage.

        If ``stage`` is given, the new call joins the stage containing that
        node instead of the last stage.
        """
        node = CallNode(microservice, calls_per_request=calls_per_request)
        if stage is None:
            return parent.add_parallel(node)
        for existing in parent.stages:
            if stage in existing:
                existing.append(node)
                return node
        raise ValueError(
            f"{stage.microservice!r} is not a direct downstream call of "
            f"{parent.microservice!r}"
        )

    def build(self, validate: bool = True) -> DependencyGraph:
        """Finalize and (by default) validate the graph."""
        if self._root is None:
            raise ValueError(f"service {self.service!r} has no root microservice")
        graph = DependencyGraph(service=self.service, root=self._root)
        if validate:
            validate_graph(graph)
        return graph
