"""A from-scratch CART regression tree.

Erms learns the cut-off point :math:`\\sigma_i` as a function of resource
interference with a decision tree (paper §5.2, citing Quinlan).  The
environment has no scikit-learn, so this is a small, dependency-free CART
implementation: binary splits on single features chosen by variance
reduction, mean prediction at the leaves.  It is also the weak learner of
the gradient-boosted baseline in :mod:`repro.profiling.baselines`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """Internal tree node; leaves have ``feature`` None."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None


class DecisionTreeRegressor:
    """CART regression tree with variance-reduction splits.

    Args:
        max_depth: Maximum tree depth (root at depth 0).
        min_samples_leaf: Minimum samples each child must retain.
        max_thresholds: Per feature, candidate thresholds are the unique
            values when few, otherwise this many quantiles — keeps fitting
            near-linear in sample count.
    """

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 5,
        max_thresholds: int = 32,
    ):
        if max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        """Fit the tree; ``features`` is (n, d), ``targets`` is (n,)."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.asarray(targets, dtype=float)
        if features.shape[0] != targets.shape[0]:
            raise ValueError(
                f"feature rows {features.shape[0]} != targets {targets.shape[0]}"
            )
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._root = self._grow(features, targets, depth=0)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for (n, d) features."""
        if self._root is None:
            raise RuntimeError("tree is not fitted; call fit() first")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        return np.array([self._predict_one(row) for row in features])

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def _depth(node: Optional[_Node]) -> int:
            if node is None or node.feature is None:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted; call fit() first")
        return _depth(self._root)

    # ------------------------------------------------------------------
    def _grow(self, features: np.ndarray, targets: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(np.mean(targets)))
        if depth >= self.max_depth or len(targets) < 2 * self.min_samples_leaf:
            return node
        if float(np.ptp(targets)) == 0.0:
            return node

        best_gain, best_feature, best_threshold = 0.0, None, 0.0
        base_sse = float(np.sum((targets - node.value) ** 2))
        for feature in range(features.shape[1]):
            column = features[:, feature]
            unique = np.unique(column)
            if len(unique) < 2:
                continue
            if len(unique) > self.max_thresholds:
                quantiles = np.linspace(0.0, 1.0, self.max_thresholds + 2)[1:-1]
                thresholds = np.unique(np.quantile(column, quantiles))
            else:
                thresholds = (unique[:-1] + unique[1:]) / 2.0
            for threshold in thresholds:
                mask = column <= threshold
                n_left = int(mask.sum())
                n_right = len(targets) - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                left, right = targets[mask], targets[~mask]
                sse = float(
                    np.sum((left - left.mean()) ** 2)
                    + np.sum((right - right.mean()) ** 2)
                )
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain, best_feature, best_threshold = gain, feature, threshold

        if best_feature is None:
            return node
        mask = features[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = float(best_threshold)
        node.left = self._grow(features[mask], targets[mask], depth + 1)
        node.right = self._grow(features[~mask], targets[~mask], depth + 1)
        return node

    def _predict_one(self, row: np.ndarray) -> float:
        node = self._root
        assert node is not None
        while node.feature is not None:
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        return node.value
