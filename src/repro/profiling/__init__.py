"""Offline microservice profiling (paper §2.2, §5.2).

Fits microservice tail latency as a piece-wise linear function of the
per-container workload, with interference-dependent coefficients
(paper Eq. 15):

.. math::

    L = (\\alpha^l C + \\beta^l M + c^l)\\,\\gamma + b^l,
    \\qquad l = 1\\ (\\gamma \\le \\sigma),\\; 2\\ (\\text{otherwise})

where :math:`C, M` are host CPU/memory utilization and the cut-off
:math:`\\sigma` is itself a function of interference, learned by a decision
tree.  Baseline learners (gradient-boosted trees standing in for XGBoost,
and a small MLP) are implemented from scratch for the Fig. 10 accuracy
comparison.
"""

from repro.profiling.piecewise import PiecewiseFit, fit_piecewise
from repro.profiling.decision_tree import DecisionTreeRegressor
from repro.profiling.interference import (
    InterferenceAwareModel,
    fit_interference_model,
)
from repro.profiling.extended import (
    ExtendedInterferenceModel,
    fit_extended_model,
)
from repro.profiling.baselines import (
    GradientBoostedTrees,
    MLPRegressor,
)
from repro.profiling.dataset import (
    ProfilingDataset,
    SyntheticMicroservice,
    generate_synthetic_day,
)
from repro.profiling.accuracy import accuracy_score, mape, r_squared, within_tolerance

__all__ = [
    "PiecewiseFit",
    "fit_piecewise",
    "DecisionTreeRegressor",
    "InterferenceAwareModel",
    "fit_interference_model",
    "ExtendedInterferenceModel",
    "fit_extended_model",
    "GradientBoostedTrees",
    "MLPRegressor",
    "ProfilingDataset",
    "SyntheticMicroservice",
    "generate_synthetic_day",
    "accuracy_score",
    "mape",
    "r_squared",
    "within_tolerance",
]
