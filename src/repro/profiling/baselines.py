"""Baseline profiling learners for the Fig. 10 accuracy comparison.

The paper compares its piecewise model against XGBoost and a three-layer
neural network with 64 neurons.  Neither library is available offline, so
both are reimplemented from scratch on numpy:

* :class:`GradientBoostedTrees` — squared-loss gradient boosting over the
  CART trees of :mod:`repro.profiling.decision_tree` (the algorithmic core
  of XGBoost, minus its second-order/regularization refinements, which do
  not matter at this data scale).
* :class:`MLPRegressor` — a 3-layer ReLU network trained with Adam on
  standardized inputs/targets, matching the paper's "three-layer NN with
  64 neurons".
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.profiling.decision_tree import DecisionTreeRegressor


class GradientBoostedTrees:
    """Gradient boosting with CART weak learners (XGBoost stand-in).

    Args:
        n_estimators: Number of boosting rounds.
        learning_rate: Shrinkage applied to each tree's contribution.
        max_depth: Depth of each weak learner.
        min_samples_leaf: Leaf size of each weak learner.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0 < learning_rate <= 1:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._base: float = 0.0
        self._trees: List[DecisionTreeRegressor] = []

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostedTrees":
        features = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.asarray(targets, dtype=float)
        self._base = float(np.mean(targets))
        self._trees = []
        prediction = np.full_like(targets, self._base)
        for _ in range(self.n_estimators):
            residuals = targets - prediction
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(features, residuals)
            update = tree.predict(features)
            prediction = prediction + self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("model is not fitted; call fit() first")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        prediction = np.full(features.shape[0], self._base)
        for tree in self._trees:
            prediction = prediction + self.learning_rate * tree.predict(features)
        return prediction


class MLPRegressor:
    """Three-layer ReLU MLP trained with Adam.

    Architecture (matching the paper's baseline): input -> 64 -> 64 ->
    output.  Inputs and targets are standardized internally.

    Args:
        hidden: Width of the two hidden layers.
        epochs: Full passes over the training data.
        batch_size: Mini-batch size.
        learning_rate: Adam step size.
        seed: Weight-initialization and shuffling seed.
    """

    def __init__(
        self,
        hidden: int = 64,
        epochs: int = 200,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        seed: int = 0,
    ):
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self._params: Optional[List[np.ndarray]] = None
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._y_mean: float = 0.0
        self._y_std: float = 1.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MLPRegressor":
        rng = np.random.default_rng(self.seed)
        x = np.atleast_2d(np.asarray(features, dtype=float))
        y = np.asarray(targets, dtype=float)

        self._x_mean = x.mean(axis=0)
        self._x_std = x.std(axis=0)
        self._x_std[self._x_std == 0] = 1.0
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        xs = (x - self._x_mean) / self._x_std
        ys = (y - self._y_mean) / self._y_std

        d = xs.shape[1]
        h = self.hidden

        def _init(rows: int, cols: int) -> np.ndarray:
            return rng.normal(0.0, np.sqrt(2.0 / rows), size=(rows, cols))

        params = [
            _init(d, h), np.zeros(h),
            _init(h, h), np.zeros(h),
            _init(h, 1), np.zeros(1),
        ]
        m = [np.zeros_like(p) for p in params]
        v = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        n = len(ys)
        batch = min(self.batch_size, n)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, yb = xs[idx], ys[idx]

                # Forward
                z1 = xb @ params[0] + params[1]
                a1 = np.maximum(z1, 0.0)
                z2 = a1 @ params[2] + params[3]
                a2 = np.maximum(z2, 0.0)
                out = (a2 @ params[4] + params[5]).ravel()

                # Backward (MSE)
                grad_out = (2.0 / len(yb)) * (out - yb)[:, None]
                grads = [None] * 6
                grads[4] = a2.T @ grad_out
                grads[5] = grad_out.sum(axis=0)
                delta2 = (grad_out @ params[4].T) * (z2 > 0)
                grads[2] = a1.T @ delta2
                grads[3] = delta2.sum(axis=0)
                delta1 = (delta2 @ params[2].T) * (z1 > 0)
                grads[0] = xb.T @ delta1
                grads[1] = delta1.sum(axis=0)

                step += 1
                for i in range(6):
                    m[i] = beta1 * m[i] + (1 - beta1) * grads[i]
                    v[i] = beta2 * v[i] + (1 - beta2) * grads[i] ** 2
                    m_hat = m[i] / (1 - beta1**step)
                    v_hat = v[i] / (1 - beta2**step)
                    params[i] = params[i] - self.learning_rate * m_hat / (
                        np.sqrt(v_hat) + eps
                    )

        self._params = params
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._params is None:
            raise RuntimeError("model is not fitted; call fit() first")
        x = np.atleast_2d(np.asarray(features, dtype=float))
        xs = (x - self._x_mean) / self._x_std
        p = self._params
        a1 = np.maximum(xs @ p[0] + p[1], 0.0)
        a2 = np.maximum(a1 @ p[2] + p[3], 0.0)
        out = (a2 @ p[4] + p[5]).ravel()
        return out * self._y_std + self._y_mean
