"""Generalized interference model: arbitrary shared resources (paper §9).

The shipped Eq. 15 conditions the latency slope on host CPU and memory
utilization.  The paper notes the model "can be easily extended to include
various shared resources, including memory bandwidth, LLC, and network
bandwidth" (§5.2) and names the generalization future work (§9).  This
module implements it: each interval's slope is an affine function of a
*named resource vector*,

.. math:: L = \\Big(\\sum_r w_r^l\\, u_r + c^l\\Big)\\,\\gamma + b^l,

with the cut-off σ(u) learned by a decision tree over the same vector.
The two-resource :func:`~repro.profiling.interference.fit_interference_model`
is the special case ``resources = {"cpu": ..., "memory": ...}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.model import LatencySegment, PiecewiseLatencyModel
from repro.profiling.decision_tree import DecisionTreeRegressor
from repro.profiling.piecewise import MIN_SLOPE, fit_piecewise


@dataclass(frozen=True)
class ExtendedSegment:
    """One interval: named resource weights, base slope c, intercept b."""

    weights: Tuple[Tuple[str, float], ...]
    c: float
    b: float

    def slope(self, utilization: Mapping[str, float]) -> float:
        value = self.c + sum(
            weight * utilization.get(name, 0.0) for name, weight in self.weights
        )
        return max(value, MIN_SLOPE)


@dataclass
class ExtendedInterferenceModel:
    """Eq. 15 generalized to an arbitrary resource vector."""

    resource_names: Tuple[str, ...]
    low: ExtendedSegment
    high: ExtendedSegment
    cutoff_tree: DecisionTreeRegressor
    default_cutoff: float

    def _vector(self, utilization: Mapping[str, float]) -> np.ndarray:
        return np.array(
            [[utilization.get(name, 0.0) for name in self.resource_names]]
        )

    def cutoff(self, utilization: Mapping[str, float]) -> float:
        value = float(self.cutoff_tree.predict(self._vector(utilization))[0])
        if not np.isfinite(value) or value <= 0:
            return self.default_cutoff
        return value

    def model_at(self, utilization: Mapping[str, float]) -> PiecewiseLatencyModel:
        """Condition on a measured resource vector."""
        return PiecewiseLatencyModel(
            low=LatencySegment(self.low.slope(utilization), self.low.b),
            high=LatencySegment(self.high.slope(utilization), self.high.b),
            cutoff=self.cutoff(utilization),
        )

    def predict(
        self, loads: np.ndarray, resources: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        loads = np.asarray(loads, dtype=float)
        matrix = np.column_stack(
            [np.asarray(resources[name], dtype=float) for name in self.resource_names]
        )
        cutoffs = self.cutoff_tree.predict(matrix)
        cutoffs = np.where(
            np.isfinite(cutoffs) & (cutoffs > 0), cutoffs, self.default_cutoff
        )

        def _slopes(segment: ExtendedSegment) -> np.ndarray:
            weights = np.array([w for _, w in segment.weights])
            return np.maximum(matrix @ weights + segment.c, MIN_SLOPE)

        low = _slopes(self.low) * loads + self.low.b
        high = _slopes(self.high) * loads + self.high.b
        return np.where(loads <= cutoffs, low, high)


def _fit_side(
    loads: np.ndarray, matrix: np.ndarray, latencies: np.ndarray, names
) -> ExtendedSegment:
    if len(loads) < matrix.shape[1] + 2:
        slope = MIN_SLOPE
        intercept = float(np.mean(latencies)) if len(latencies) else 0.0
        if len(loads) >= 2 and float(np.ptp(loads)) > 0:
            slope = max(
                float(
                    np.sum((loads - loads.mean()) * (latencies - latencies.mean()))
                    / np.sum((loads - loads.mean()) ** 2)
                ),
                MIN_SLOPE,
            )
            intercept = float(latencies.mean() - slope * loads.mean())
        return ExtendedSegment(
            weights=tuple((name, 0.0) for name in names), c=slope, b=intercept
        )
    design = np.column_stack(
        [matrix * loads[:, None], loads, np.ones_like(loads)]
    )
    solution, *_ = np.linalg.lstsq(design, latencies, rcond=None)
    *weights, c, b = (float(v) for v in solution)
    return ExtendedSegment(
        weights=tuple(zip(names, weights)), c=c, b=b
    )


def fit_extended_model(
    loads: np.ndarray,
    resources: Mapping[str, Sequence[float]],
    latencies: np.ndarray,
    bucket_quantiles: int = 4,
    min_bucket_samples: int = 12,
    tree_depth: int = 4,
) -> ExtendedInterferenceModel:
    """Fit the generalized model.

    Bucketing for local cut-off estimation quantizes each resource into
    ``bucket_quantiles`` levels (the 2-D grid of the base fitter does not
    scale to many resources).

    Args:
        loads: Per-container workloads γ.
        resources: Named utilization series, all the same length as
            ``loads``.
        latencies: Tail latency observations.
    """
    loads = np.asarray(loads, dtype=float)
    latencies = np.asarray(latencies, dtype=float)
    names = tuple(sorted(resources))
    if not names:
        raise ValueError("need at least one resource series")
    matrix = np.column_stack(
        [np.asarray(resources[name], dtype=float) for name in names]
    )
    if matrix.shape[0] != len(loads) or len(latencies) != len(loads):
        raise ValueError("all series must have the same length")
    if len(loads) < 8:
        raise ValueError(f"need at least 8 samples, got {len(loads)}")

    # Quantile-bucket the resource vector for local cut-off estimates.
    keys: List[Tuple[int, ...]] = []
    edges = [
        np.quantile(matrix[:, j], np.linspace(0, 1, bucket_quantiles + 1)[1:-1])
        for j in range(matrix.shape[1])
    ]
    for row in matrix:
        keys.append(
            tuple(int(np.searchsorted(edges[j], row[j])) for j in range(len(row)))
        )
    buckets: Dict[Tuple[int, ...], List[int]] = {}
    for index, key in enumerate(keys):
        buckets.setdefault(key, []).append(index)

    centers, cutoffs = [], []
    for indices in buckets.values():
        if len(indices) < min_bucket_samples:
            continue
        idx = np.array(indices)
        try:
            fit = fit_piecewise(loads[idx], latencies[idx])
        except ValueError:
            continue
        centers.append(matrix[idx].mean(axis=0))
        cutoffs.append(fit.model.cutoff)

    if centers:
        tree = DecisionTreeRegressor(max_depth=tree_depth, min_samples_leaf=1)
        tree.fit(np.array(centers), np.array(cutoffs))
        default_cutoff = float(np.median(cutoffs))
    else:
        fit = fit_piecewise(loads, latencies)
        tree = DecisionTreeRegressor(max_depth=0)
        tree.fit(np.zeros((1, matrix.shape[1])), np.array([fit.model.cutoff]))
        default_cutoff = fit.model.cutoff
    if default_cutoff <= 0:
        default_cutoff = float(np.median(loads)) or 1.0

    predicted = tree.predict(matrix)
    predicted = np.where(
        np.isfinite(predicted) & (predicted > 0), predicted, default_cutoff
    )
    low_mask = loads <= predicted
    if low_mask.any() and (~low_mask).any():
        low = _fit_side(loads[low_mask], matrix[low_mask], latencies[low_mask], names)
        high = _fit_side(loads[~low_mask], matrix[~low_mask], latencies[~low_mask], names)
    else:
        shared = _fit_side(loads, matrix, latencies, names)
        low = high = shared

    return ExtendedInterferenceModel(
        resource_names=names,
        low=low,
        high=high,
        cutoff_tree=tree,
        default_cutoff=default_cutoff,
    )
