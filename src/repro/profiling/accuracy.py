"""Accuracy metrics for profiling models.

The paper reports "testing accuracy" percentages (83–88 % on
DeathStarBench and Alibaba traces).  We interpret accuracy as
``1 − MAPE`` clipped to [0, 1] — one minus the mean absolute percentage
error — which matches the reported ranges for regression models, and also
expose R² and a within-tolerance fraction for diagnostics.
"""

from __future__ import annotations

import numpy as np


def mape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute percentage error (actual values must be positive)."""
    actual = np.asarray(actual, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if actual.shape != predicted.shape:
        raise ValueError(
            f"shape mismatch: {actual.shape} vs {predicted.shape}"
        )
    if len(actual) == 0:
        raise ValueError("cannot compute MAPE of empty arrays")
    if np.any(actual <= 0):
        raise ValueError("MAPE requires strictly positive actual values")
    return float(np.mean(np.abs(predicted - actual) / actual))


def accuracy_score(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Profiling accuracy: 1 − MAPE, clipped to [0, 1]."""
    return float(np.clip(1.0 - mape(actual, predicted), 0.0, 1.0))


def r_squared(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination."""
    actual = np.asarray(actual, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    total = float(np.sum((actual - actual.mean()) ** 2))
    residual = float(np.sum((actual - predicted) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


def within_tolerance(
    actual: np.ndarray, predicted: np.ndarray, tolerance: float = 0.2
) -> float:
    """Fraction of predictions within ±tolerance relative error."""
    actual = np.asarray(actual, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if np.any(actual <= 0):
        raise ValueError("within_tolerance requires positive actual values")
    relative = np.abs(predicted - actual) / actual
    return float(np.mean(relative <= tolerance))
