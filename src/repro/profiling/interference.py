"""Interference-aware latency model: the full Eq. 15 fit.

For each interval l ∈ {low, high} the tail latency is

.. math:: L = (\\alpha^l C + \\beta^l M + c^l)\\,\\gamma + b^l

with :math:`C, M` the host CPU and memory utilization and :math:`\\gamma`
the per-container workload.  The interval boundary :math:`\\sigma(C, M)` is
learned by a decision tree (paper §5.2): interference pushes the cut-off
point forward, so latency starts rising earlier on busy hosts (Fig. 3).

Fitting procedure:

1. Bucket samples by (C, M); fit a 1-D piecewise model per bucket to get a
   local cut-off estimate.
2. Train the decision tree to predict the cut-off from (C, M).
3. Partition *all* samples by the tree's cut-off and solve one linear
   least-squares per interval on the design ``[Cγ, Mγ, γ, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.model import LatencySegment, PiecewiseLatencyModel
from repro.profiling.decision_tree import DecisionTreeRegressor
from repro.profiling.piecewise import MIN_SLOPE, fit_piecewise


@dataclass(frozen=True)
class SegmentCoefficients:
    """⟨α, β, c, b⟩ of one interval of Eq. 15."""

    alpha: float
    beta: float
    c: float
    b: float

    def slope(self, cpu: float, memory: float) -> float:
        """Interference-conditioned slope, clamped positive."""
        return max(self.alpha * cpu + self.beta * memory + self.c, MIN_SLOPE)

    def segment(self, cpu: float, memory: float) -> LatencySegment:
        return LatencySegment(slope=self.slope(cpu, memory), intercept=self.b)


@dataclass
class InterferenceAwareModel:
    """The fitted Eq. 15 model of one microservice."""

    low: SegmentCoefficients
    high: SegmentCoefficients
    cutoff_tree: DecisionTreeRegressor
    default_cutoff: float

    def cutoff(self, cpu: float, memory: float) -> float:
        """σ(C, M): the load beyond which the steep interval applies."""
        value = float(self.cutoff_tree.predict(np.array([[cpu, memory]]))[0])
        if not np.isfinite(value) or value <= 0:
            return self.default_cutoff
        return value

    def model_at(self, cpu: float, memory: float) -> PiecewiseLatencyModel:
        """Condition on interference: a concrete piecewise model.

        This is what *Online Scaling* does each round — it feeds the
        cluster-average utilization into the profile and obtains plain
        ⟨slope, intercept⟩ pairs for the optimization (paper §5.3.1).
        """
        return PiecewiseLatencyModel(
            low=self.low.segment(cpu, memory),
            high=self.high.segment(cpu, memory),
            cutoff=self.cutoff(cpu, memory),
        )

    def predict(
        self, loads: np.ndarray, cpus: np.ndarray, memories: np.ndarray
    ) -> np.ndarray:
        """Vectorized latency prediction for sample triples."""
        loads = np.asarray(loads, dtype=float)
        cpus = np.asarray(cpus, dtype=float)
        memories = np.asarray(memories, dtype=float)
        cutoffs = np.array(
            [self.cutoff(c, m) for c, m in zip(cpus, memories)]
        )
        slopes_low = np.maximum(
            self.low.alpha * cpus + self.low.beta * memories + self.low.c,
            MIN_SLOPE,
        )
        slopes_high = np.maximum(
            self.high.alpha * cpus + self.high.beta * memories + self.high.c,
            MIN_SLOPE,
        )
        low = slopes_low * loads + self.low.b
        high = slopes_high * loads + self.high.b
        return np.where(loads <= cutoffs, low, high)


def _fit_interval(
    loads: np.ndarray,
    cpus: np.ndarray,
    memories: np.ndarray,
    latencies: np.ndarray,
) -> SegmentCoefficients:
    """Least squares on [Cγ, Mγ, γ, 1] for one interval."""
    if len(loads) < 4:
        # Too few points for 4 unknowns: fall back to a plain line in γ.
        if len(loads) >= 2 and float(np.ptp(loads)) > 0:
            slope = float(
                np.sum((loads - loads.mean()) * (latencies - latencies.mean()))
                / np.sum((loads - loads.mean()) ** 2)
            )
            slope = max(slope, MIN_SLOPE)
            intercept = float(latencies.mean() - slope * loads.mean())
        else:
            slope, intercept = MIN_SLOPE, float(np.mean(latencies)) if len(latencies) else 0.0
        return SegmentCoefficients(alpha=0.0, beta=0.0, c=slope, b=intercept)

    design = np.column_stack(
        [cpus * loads, memories * loads, loads, np.ones_like(loads)]
    )
    solution, *_ = np.linalg.lstsq(design, latencies, rcond=None)
    alpha, beta, c, b = (float(v) for v in solution)
    return SegmentCoefficients(alpha=alpha, beta=beta, c=c, b=b)


def fit_interference_model(
    loads: np.ndarray,
    cpus: np.ndarray,
    memories: np.ndarray,
    latencies: np.ndarray,
    bucket_size: float = 0.1,
    min_bucket_samples: int = 12,
    tree_depth: int = 4,
    refinement_rounds: int = 2,
) -> InterferenceAwareModel:
    """Fit the full interference-aware profile of one microservice.

    Args:
        loads: Per-container workloads γ.
        cpus: Host CPU utilizations C (fractions).
        memories: Host memory utilizations M (fractions).
        latencies: Tail latency observations L (ms).
        bucket_size: Grid size used to bucket (C, M) for local cut-off
            estimation.
        min_bucket_samples: Buckets with fewer samples are skipped.
        tree_depth: Depth of the σ(C, M) decision tree.
        refinement_rounds: After the initial fit, per-bucket cut-offs are
            re-derived as the SSE-minimizing boundary under the fitted
            interval surfaces, the tree is retrained, and coefficients are
            refit — an EM-style polish that stabilizes the fit on sparse
            or noisy samples.

    Returns:
        The fitted :class:`InterferenceAwareModel`.
    """
    loads = np.asarray(loads, dtype=float)
    cpus = np.asarray(cpus, dtype=float)
    memories = np.asarray(memories, dtype=float)
    latencies = np.asarray(latencies, dtype=float)
    n = len(loads)
    if not (len(cpus) == len(memories) == len(latencies) == n):
        raise ValueError("all sample arrays must have the same length")
    if n < 8:
        raise ValueError(f"need at least 8 samples, got {n}")

    # Step 1: per-(C, M)-bucket cut-off estimates.
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for index in range(n):
        key = (
            int(cpus[index] / bucket_size),
            int(memories[index] / bucket_size),
        )
        buckets.setdefault(key, []).append(index)

    centers: List[Tuple[float, float]] = []
    cutoffs: List[float] = []
    for key, indices in buckets.items():
        if len(indices) < min_bucket_samples:
            continue
        idx = np.array(indices)
        try:
            fit = fit_piecewise(loads[idx], latencies[idx])
        except ValueError:
            continue
        centers.append(
            (float(np.mean(cpus[idx])), float(np.mean(memories[idx])))
        )
        cutoffs.append(fit.model.cutoff)

    if centers:
        tree = DecisionTreeRegressor(max_depth=tree_depth, min_samples_leaf=1)
        tree.fit(np.array(centers), np.array(cutoffs))
        default_cutoff = float(np.median(cutoffs))
    else:
        # No bucket was dense enough: use one global cut-off.
        fit = fit_piecewise(loads, latencies)
        tree = DecisionTreeRegressor(max_depth=0)
        tree.fit(np.zeros((1, 2)), np.array([fit.model.cutoff]))
        default_cutoff = fit.model.cutoff
    if default_cutoff <= 0:
        default_cutoff = float(np.median(loads)) or 1.0

    # Step 2: partition all samples by the tree's cut-off.
    predicted_cutoffs = tree.predict(np.column_stack([cpus, memories]))
    predicted_cutoffs = np.where(
        np.isfinite(predicted_cutoffs) & (predicted_cutoffs > 0),
        predicted_cutoffs,
        default_cutoff,
    )
    low_mask = loads <= predicted_cutoffs

    # Step 3: one linear solve per interval.  If a side is empty, reuse the
    # other side's coefficients (a single-segment microservice).
    def _side(mask: np.ndarray) -> SegmentCoefficients:
        return _fit_interval(
            loads[mask], cpus[mask], memories[mask], latencies[mask]
        )

    if low_mask.any() and (~low_mask).any():
        low, high = _side(low_mask), _side(~low_mask)
    else:
        shared = _fit_interval(loads, cpus, memories, latencies)
        low = high = shared

    # EM-style polish: re-derive each bucket's cut-off as the boundary
    # that best separates the two fitted surfaces, retrain σ(C, M), and
    # refit the interval coefficients.
    for _ in range(max(refinement_rounds, 0)):
        slopes_low = np.maximum(
            low.alpha * cpus + low.beta * memories + low.c, MIN_SLOPE
        )
        slopes_high = np.maximum(
            high.alpha * cpus + high.beta * memories + high.c, MIN_SLOPE
        )
        err_low = (slopes_low * loads + low.b - latencies) ** 2
        err_high = (slopes_high * loads + high.b - latencies) ** 2

        centers = []
        cutoffs = []
        for key, indices in buckets.items():
            if len(indices) < max(min_bucket_samples // 2, 4):
                continue
            idx = np.array(indices)
            order = idx[np.argsort(loads[idx])]
            # Prefix sums over sorted loads: boundary after position k
            # means samples [0..k] use the low surface.
            low_prefix = np.cumsum(err_low[order])
            high_suffix = np.cumsum(err_high[order][::-1])[::-1]
            total = np.empty(len(order) + 1)
            total[0] = high_suffix[0] if len(order) else 0.0
            for k in range(1, len(order)):
                total[k] = low_prefix[k - 1] + high_suffix[k]
            total[len(order)] = low_prefix[-1]
            best = int(np.argmin(total))
            if best == 0 or best == len(order):
                # The bucket's whole load range sits on one side of the
                # cut-off: it carries no boundary information, so it must
                # not train the σ(C, M) tree.
                continue
            boundary = float(
                (loads[order[best - 1]] + loads[order[best]]) / 2.0
            )
            if boundary <= 0:
                continue
            centers.append(
                (float(np.mean(cpus[idx])), float(np.mean(memories[idx])))
            )
            cutoffs.append(boundary)

        if not centers:
            break
        tree = DecisionTreeRegressor(max_depth=tree_depth, min_samples_leaf=1)
        tree.fit(np.array(centers), np.array(cutoffs))
        default_cutoff = float(np.median(cutoffs))
        predicted_cutoffs = tree.predict(np.column_stack([cpus, memories]))
        predicted_cutoffs = np.where(
            np.isfinite(predicted_cutoffs) & (predicted_cutoffs > 0),
            predicted_cutoffs,
            default_cutoff,
        )
        low_mask = loads <= predicted_cutoffs
        if low_mask.any() and (~low_mask).any():
            low, high = _side(low_mask), _side(~low_mask)

    return InterferenceAwareModel(
        low=low, high=high, cutoff_tree=tree, default_cutoff=default_cutoff
    )
