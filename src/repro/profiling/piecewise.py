"""Two-segment piecewise-linear fitting with breakpoint search.

The workload/latency relationship of a microservice has a *cut-off point*
(paper Fig. 3): latency grows slowly and almost linearly up to it and much
faster beyond, because container threads saturate and requests queue.  This
module fits that shape from (per-container load, tail latency) samples by
searching candidate breakpoints and solving a least-squares line on each
side (slopes constrained positive, as required by the Eq. 5 closed form;
intercepts may be negative, as the steep segment extrapolates below zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.model import LatencySegment, PiecewiseLatencyModel

#: Smallest slope admitted by a fit; keeps downstream formulas well-defined.
MIN_SLOPE = 1e-9


def _fit_line(x: np.ndarray, y: np.ndarray) -> Tuple[float, float, float]:
    """Least-squares line with slope > 0 (intercepts may be negative).

    Returns (slope, intercept, sse).  Degenerate inputs (fewer than two
    points or zero variance) fall back to a flat line at the mean with the
    minimum slope.
    """
    if len(x) < 2 or float(np.ptp(x)) == 0.0:
        intercept = float(np.mean(y)) if len(y) else 0.0
        sse = float(np.sum((y - intercept) ** 2)) if len(y) else 0.0
        return MIN_SLOPE, intercept, sse

    x_mean, y_mean = float(np.mean(x)), float(np.mean(y))
    denom = float(np.sum((x - x_mean) ** 2))
    slope = float(np.sum((x - x_mean) * (y - y_mean)) / denom)
    intercept = y_mean - slope * x_mean

    if slope <= 0:
        slope = MIN_SLOPE
        intercept = y_mean

    residuals = y - (slope * x + intercept)
    return slope, intercept, float(np.sum(residuals**2))


@dataclass(frozen=True)
class PiecewiseFit:
    """Result of a piecewise fit: the model plus fit diagnostics."""

    model: PiecewiseLatencyModel
    sse: float
    r_squared: float
    n_samples: int

    def predict(self, loads: np.ndarray) -> np.ndarray:
        """Vectorized prediction over an array of per-container loads."""
        loads = np.asarray(loads, dtype=float)
        low = self.model.low.slope * loads + self.model.low.intercept
        high = self.model.high.slope * loads + self.model.high.intercept
        return np.where(loads <= self.model.cutoff, low, high)


def fit_piecewise(
    loads: np.ndarray,
    latencies: np.ndarray,
    candidate_breakpoints: Optional[np.ndarray] = None,
    min_segment_points: int = 3,
) -> PiecewiseFit:
    """Fit a two-segment piecewise linear latency model.

    Args:
        loads: Per-container workload values (req/min/container).
        latencies: Tail latency observations (ms), same length.
        candidate_breakpoints: Breakpoints to try; defaults to the interior
            quantiles of ``loads``.
        min_segment_points: Minimum samples required on each side of a
            candidate breakpoint.

    Returns:
        The best :class:`PiecewiseFit` by summed squared error.  When no
        breakpoint leaves enough points on both sides, a single line is
        fitted and duplicated across both segments (cutoff at the median).
    """
    loads = np.asarray(loads, dtype=float)
    latencies = np.asarray(latencies, dtype=float)
    if loads.shape != latencies.shape:
        raise ValueError(
            f"loads and latencies must have the same shape, got "
            f"{loads.shape} vs {latencies.shape}"
        )
    if len(loads) < 2:
        raise ValueError(f"need at least 2 samples, got {len(loads)}")

    order = np.argsort(loads)
    x, y = loads[order], latencies[order]

    if candidate_breakpoints is None:
        quantiles = np.linspace(0.15, 0.85, 25)
        candidate_breakpoints = np.unique(np.quantile(x, quantiles))

    best: Optional[Tuple[float, float, float, float, float, float]] = None
    for breakpoint in candidate_breakpoints:
        left = x <= breakpoint
        right = ~left
        if left.sum() < min_segment_points or right.sum() < min_segment_points:
            continue
        a1, b1, sse1 = _fit_line(x[left], y[left])
        a2, b2, sse2 = _fit_line(x[right], y[right])
        sse = sse1 + sse2
        if best is None or sse < best[0]:
            best = (sse, a1, b1, a2, b2, float(breakpoint))

    if best is None:
        slope, intercept, sse = _fit_line(x, y)
        cutoff = float(np.median(x)) or 1.0
        model = PiecewiseLatencyModel(
            low=LatencySegment(slope, intercept),
            high=LatencySegment(slope, intercept),
            cutoff=max(cutoff, MIN_SLOPE),
        )
        return PiecewiseFit(
            model=model,
            sse=sse,
            r_squared=_r2(y, sse),
            n_samples=len(x),
        )

    sse, a1, b1, a2, b2, cutoff = best
    model = PiecewiseLatencyModel(
        low=LatencySegment(a1, b1),
        high=LatencySegment(a2, b2),
        cutoff=max(cutoff, MIN_SLOPE),
    )
    return PiecewiseFit(
        model=model, sse=sse, r_squared=_r2(y, sse), n_samples=len(x)
    )


def _r2(y: np.ndarray, sse: float) -> float:
    total = float(np.sum((y - np.mean(y)) ** 2))
    if total == 0.0:
        return 1.0
    return 1.0 - sse / total
