"""Reproduction of Erms (ASPLOS 2023).

Erms: Efficient Resource Management for Shared Microservices with SLA
Guarantees — Luo et al., ASPLOS '23.

Package layout:

* :mod:`repro.graphs` — microservice dependency graphs.
* :mod:`repro.tracing` — span model and tracing coordinator.
* :mod:`repro.profiling` — piecewise-linear latency profiling and the
  interference-aware model, plus GBRT/MLP baselines.
* :mod:`repro.core` — the Erms contribution: graph merge, optimal latency
  targets, priority scheduling at shared microservices, interference-aware
  provisioning.
* :mod:`repro.simulator` — discrete-event cluster simulator standing in for
  the paper's 20-host Kubernetes testbed.
* :mod:`repro.workloads` — arrival processes, DeathStarBench-like app
  topologies, and a synthetic Alibaba trace generator.
* :mod:`repro.baselines` — GrandSLAm, Rhythm, and Firm autoscalers.
* :mod:`repro.experiments` — the per-figure experiment harness.
"""

__version__ = "1.0.0"

from repro.core import (
    Allocation,
    ErmsScaler,
    LatencySegment,
    MicroserviceProfile,
    PiecewiseLatencyModel,
    ServiceSpec,
)
from repro.graphs import DependencyGraph, GraphBuilder, call

__all__ = [
    "__version__",
    "Allocation",
    "ErmsScaler",
    "LatencySegment",
    "MicroserviceProfile",
    "PiecewiseLatencyModel",
    "ServiceSpec",
    "DependencyGraph",
    "GraphBuilder",
    "call",
]
