"""M/M/1 and M/M/c closed forms.

Rates are expressed in requests per millisecond and service times in
milliseconds throughout, matching the simulator's units; helpers accept
requests/minute where noted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def mm1_mean_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean waiting time (queueing only) of an M/M/1 queue.

    W_q = ρ / (μ − λ) with ρ = λ/μ; requires λ < μ.
    """
    if service_rate <= 0:
        raise ValueError(f"service_rate must be positive, got {service_rate}")
    if arrival_rate < 0:
        raise ValueError(f"arrival_rate must be non-negative, got {arrival_rate}")
    if arrival_rate >= service_rate:
        raise ValueError(
            f"unstable queue: arrival rate {arrival_rate} >= service rate "
            f"{service_rate}"
        )
    rho = arrival_rate / service_rate
    return rho / (service_rate - arrival_rate)


def mm1_mean_response(arrival_rate: float, service_rate: float) -> float:
    """Mean response time (wait + service) of an M/M/1 queue: 1/(μ − λ)."""
    mm1_mean_wait(arrival_rate, service_rate)  # validates stability
    return 1.0 / (service_rate - arrival_rate)


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C: probability an arrival waits in an M/M/c queue.

    Args:
        servers: Number of servers c.
        offered_load: a = λ/μ (in Erlangs); requires a < c for stability.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered_load must be non-negative, got {offered_load}")
    if offered_load >= servers:
        raise ValueError(
            f"unstable queue: offered load {offered_load} >= servers {servers}"
        )
    if offered_load == 0:
        return 0.0
    # Numerically stable iterative form of the Erlang-B recursion, then
    # the standard B -> C conversion.
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    rho = offered_load / servers
    return blocking / (1.0 - rho + rho * blocking)


@dataclass(frozen=True)
class MMc:
    """An M/M/c queue: c servers, Poisson arrivals, exponential service.

    Attributes:
        arrival_rate: λ, requests per ms.
        service_rate: μ per server, requests per ms (= 1 / mean service ms).
        servers: c.
    """

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError(f"servers must be >= 1, got {self.servers}")
        if self.service_rate <= 0:
            raise ValueError("service_rate must be positive")
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        if self.utilization >= 1.0:
            raise ValueError(
                f"unstable queue: utilization {self.utilization:.3f} >= 1"
            )

    @classmethod
    def from_per_minute(
        cls, arrivals_per_minute: float, mean_service_ms: float, servers: int
    ) -> "MMc":
        """Build from requests/minute and a mean service time in ms."""
        return cls(
            arrival_rate=arrivals_per_minute / 60_000.0,
            service_rate=1.0 / mean_service_ms,
            servers=servers,
        )

    @property
    def offered_load(self) -> float:
        """a = λ/μ in Erlangs."""
        return self.arrival_rate / self.service_rate

    @property
    def utilization(self) -> float:
        """ρ = λ/(cμ)."""
        return self.offered_load / self.servers

    def wait_probability(self) -> float:
        """Erlang-C probability of queueing."""
        return erlang_c(self.servers, self.offered_load)

    def mean_wait(self) -> float:
        """Mean time in queue (ms)."""
        c_prob = self.wait_probability()
        return c_prob / (self.servers * self.service_rate - self.arrival_rate)

    def mean_response(self) -> float:
        """Mean response time: wait plus service (ms)."""
        return self.mean_wait() + 1.0 / self.service_rate

    def wait_tail(self, t: float) -> float:
        """P(wait > t): Erlang-C · exp(−(cμ − λ)t)."""
        if t < 0:
            raise ValueError(f"t must be non-negative, got {t}")
        rate = self.servers * self.service_rate - self.arrival_rate
        return self.wait_probability() * math.exp(-rate * t)

    def response_percentile(self, percentile: float = 95.0) -> float:
        """Approximate response-time percentile (ms).

        Uses the standard approximation: response ≈ service (exponential)
        plus the conditional exponential wait; the percentile is located
        by bisection on the exact mixture CDF of wait + an independent
        exponential service time evaluated numerically.
        """
        if not 0 < percentile < 100:
            raise ValueError(f"percentile must be in (0, 100), got {percentile}")
        target = percentile / 100.0
        mu = self.service_rate
        rate = self.servers * mu - self.arrival_rate
        c_prob = self.wait_probability()

        def cdf(t: float) -> float:
            # P(S + W <= t) where S ~ Exp(mu), W is 0 w.p. (1-C) and
            # Exp(rate) w.p. C (the M/M/c conditional wait).
            no_wait = 1.0 - math.exp(-mu * t)
            if rate == mu:
                conv = 1.0 - math.exp(-mu * t) * (1.0 + mu * t)
            else:
                conv = 1.0 - (
                    rate * math.exp(-mu * t) - mu * math.exp(-rate * t)
                ) / (rate - mu)
            return (1.0 - c_prob) * no_wait + c_prob * conv

        low, high = 0.0, 1.0 / mu
        while cdf(high) < target:
            high *= 2.0
            if high > 1e12:
                raise RuntimeError("percentile search diverged")
        for _ in range(200):
            mid = (low + high) / 2.0
            if cdf(mid) < target:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0
