"""Analytic queueing models (paper §2.3's M/M/1 analysis, generalized).

The paper builds an M/M/1 queue to compare the *mean processing time* at a
shared microservice under sharing vs. non-sharing, concluding that sharing
is better at fixed resources — yet worse under SLA-driven scaling, which
motivates priority scheduling.  This package provides the closed-form
M/M/1 and M/M/c results used for that analysis, the non-preemptive
two-class priority queue, and the sharing-vs-partitioning comparison,
cross-validated against the discrete-event simulator in the test suite.
"""

from repro.queueing.mmc import (
    MMc,
    erlang_c,
    mm1_mean_response,
    mm1_mean_wait,
)
from repro.queueing.priority import MM1Priority
from repro.queueing.sharing import (
    sharing_vs_partitioning,
    SharingComparison,
)

__all__ = [
    "MMc",
    "erlang_c",
    "mm1_mean_response",
    "mm1_mean_wait",
    "MM1Priority",
    "sharing_vs_partitioning",
    "SharingComparison",
]
