"""Non-preemptive priority M/M/1: the theory behind Erms' scheduling.

Closed forms for the two-(or more-)class non-preemptive priority M/M/1
queue (all classes share one exponential server; a job in service is never
interrupted).  This is the analytic counterpart of the simulator's
δ = 0 strict-priority policy at a single-threaded shared container, and
the mechanism behind the §2.3 observation: prioritization shifts waiting
time from the sensitive class to the insensitive one while preserving the
work-conserving aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class MM1Priority:
    """Non-preemptive priority M/M/1 with per-class Poisson arrivals.

    Attributes:
        arrival_rates: λ_k per class, requests/ms, highest priority first.
        service_rate: μ, shared by all classes (requests/ms).
    """

    arrival_rates: Sequence[float]
    service_rate: float

    def __post_init__(self) -> None:
        if not self.arrival_rates:
            raise ValueError("need at least one class")
        if any(rate < 0 for rate in self.arrival_rates):
            raise ValueError("arrival rates must be non-negative")
        if self.service_rate <= 0:
            raise ValueError("service_rate must be positive")
        if self.total_utilization >= 1.0:
            raise ValueError(
                f"unstable queue: total utilization "
                f"{self.total_utilization:.3f} >= 1"
            )

    @property
    def total_utilization(self) -> float:
        return sum(self.arrival_rates) / self.service_rate

    def class_utilizations(self) -> List[float]:
        return [rate / self.service_rate for rate in self.arrival_rates]

    def mean_wait(self, class_index: int) -> float:
        """Mean queueing delay of class k (0 = highest priority).

        The Cobham formula for non-preemptive M/M/1 priority:
        W_k = R / ((1 − σ_{k-1})(1 − σ_k)) with R the mean residual
        service time (= ρ/μ for exponential service) and σ_k the
        cumulative utilization of classes 0..k.
        """
        if not 0 <= class_index < len(self.arrival_rates):
            raise IndexError(f"no class {class_index}")
        rho = self.total_utilization
        residual = rho / self.service_rate
        cumulative = 0.0
        sigma_prev = 0.0
        for k, utilization in enumerate(self.class_utilizations()):
            sigma_prev = cumulative
            cumulative += utilization
            if k == class_index:
                break
        return residual / ((1.0 - sigma_prev) * (1.0 - cumulative))

    def mean_response(self, class_index: int) -> float:
        """Mean response time of class k: wait + service."""
        return self.mean_wait(class_index) + 1.0 / self.service_rate

    def aggregate_mean_wait(self) -> float:
        """λ-weighted mean wait across classes.

        By work conservation this equals the FCFS M/M/1 mean wait at the
        same total load — prioritization redistributes waiting, it does
        not create or destroy it.
        """
        total = sum(self.arrival_rates)
        if total == 0:
            return 0.0
        return (
            sum(
                rate * self.mean_wait(k)
                for k, rate in enumerate(self.arrival_rates)
            )
            / total
        )
