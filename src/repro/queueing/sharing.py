"""Sharing vs. partitioning at a shared microservice (paper §2.3).

The paper validates with an M/M/1 model that *sharing* a microservice's
containers between two services yields better mean processing time than
*partitioning* them, at fixed resources — statistical multiplexing wins.
The catch, and the paper's point, is that under SLA-driven scaling the
binding constraint is the most latency-sensitive service, so FCFS sharing
forces over-provisioning; priority scheduling recovers the multiplexing
win.  This module provides the closed-form comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.queueing.mmc import MMc
from repro.queueing.priority import MM1Priority


@dataclass(frozen=True)
class SharingComparison:
    """Mean response times (ms) of each arrangement of the same capacity.

    ``shared_fcfs`` is the M/M/c result; the priority numbers use the
    single-fast-server (M/M/1 at rate c·μ) aggregation, so their FCFS
    reference is ``shared_fcfs_fast_server`` — compare priority classes
    against that, not against the M/M/c value.
    """

    shared_fcfs: float
    shared_fcfs_fast_server: float
    partitioned_class1: float
    partitioned_class2: float
    shared_priority_class1: float
    shared_priority_class2: float

    @property
    def partitioned_mean(self) -> float:
        """Arrival-weighted mean response across the two partitions."""
        return (self.partitioned_class1 + self.partitioned_class2) / 2.0


def sharing_vs_partitioning(
    arrivals_per_minute_1: float,
    arrivals_per_minute_2: float,
    mean_service_ms: float,
    servers: int,
) -> SharingComparison:
    """Compare arrangements of ``servers`` identical servers.

    * **shared FCFS** — one M/M/c serving both classes;
    * **partitioned** — servers split evenly, one M/M/(c/2) per class
      (``servers`` must be even);
    * **shared priority** — for the single-server case, the exact
      non-preemptive priority M/M/1 per-class response times; for c > 1
      the M/M/1 approximation on an aggregated fast server (standard
      resource-pooling approximation).

    Returns per-arrangement mean response times; the paper's observation
    is ``shared_fcfs < partitioned_mean`` whenever both classes load the
    queue (pooling helps), while per-class times under priority bracket
    the FCFS time.
    """
    if servers < 2 or servers % 2 != 0:
        raise ValueError(f"servers must be an even number >= 2, got {servers}")
    if mean_service_ms <= 0:
        raise ValueError("mean_service_ms must be positive")

    shared = MMc.from_per_minute(
        arrivals_per_minute_1 + arrivals_per_minute_2, mean_service_ms, servers
    )
    part1 = MMc.from_per_minute(
        arrivals_per_minute_1, mean_service_ms, servers // 2
    )
    part2 = MMc.from_per_minute(
        arrivals_per_minute_2, mean_service_ms, servers // 2
    )

    # Priority: aggregate the c servers into one fast server (rate c·μ),
    # exact for c == 1.
    priority = MM1Priority(
        arrival_rates=[
            arrivals_per_minute_1 / 60_000.0,
            arrivals_per_minute_2 / 60_000.0,
        ],
        service_rate=servers / mean_service_ms,
    )
    fast_fcfs = MMc(
        arrival_rate=(arrivals_per_minute_1 + arrivals_per_minute_2) / 60_000.0,
        service_rate=servers / mean_service_ms,
        servers=1,
    )

    return SharingComparison(
        shared_fcfs=shared.mean_response(),
        shared_fcfs_fast_server=fast_fcfs.mean_response(),
        partitioned_class1=part1.mean_response(),
        partitioned_class2=part2.mean_response(),
        shared_priority_class1=priority.mean_response(0),
        shared_priority_class2=priority.mean_response(1),
    )
