"""The Deploy Module (paper Fig. 6 ⑥/⑦, §5.5).

Erms executes its decisions on Kubernetes through the Python client and
configures request priorities with Linux ``tc`` (a ``pfifo_fast``-style
multi-band queueing discipline bound to each container's virtual network
interface).  This package reproduces that layer against an in-process
mock of the Kubernetes API:

* :mod:`repro.deployment.objects` — Deployments, Pods (with a lifecycle:
  Pending → Starting → Running → Terminating), and node bindings;
* :mod:`repro.deployment.api` — the mock API server: declarative apply,
  pod listing, a watchable event log;
* :mod:`repro.deployment.controller` — the reconciliation loop turning
  desired replica counts into pod create/delete calls, scheduling each
  pod onto a host through a :class:`~repro.core.provisioning.Provisioner`
  and advancing startups on ``tick()``;
* :mod:`repro.deployment.priority` — the tc-style network priority
  configurator: one band per service priority rank at each shared
  microservice.
"""

from repro.deployment.objects import (
    Deployment,
    Pod,
    PodPhase,
)
from repro.deployment.api import ApiEvent, MockKubeApi
from repro.deployment.controller import DeploymentController
from repro.deployment.priority import (
    NetworkPriorityConfigurator,
    TrafficClass,
)

__all__ = [
    "Deployment",
    "Pod",
    "PodPhase",
    "ApiEvent",
    "MockKubeApi",
    "DeploymentController",
    "NetworkPriorityConfigurator",
    "TrafficClass",
]
