"""Deployment reconciliation: desired replicas -> pod operations.

The controller closes the gap between each Deployment's declared replica
count and the pods that exist, exactly as a Kubernetes ReplicaSet
controller would — except host selection is delegated to an Erms
:class:`~repro.core.provisioning.Provisioner`, so placement stays
interference-aware (paper §5.4's module feeds §5.5's deployment).

Pods boot asynchronously: a scheduled pod is STARTING until
``startup_seconds`` have passed on the controller's clock (``tick``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.provisioning import Cluster, Provisioner
from repro.deployment.api import ApiEvent, MockKubeApi
from repro.deployment.objects import Pod, PodPhase
from repro.telemetry.monitor import DecisionLog


@dataclass
class DeploymentController:
    """Reconciles the mock API against a provisioned cluster.

    Attributes:
        api: The mock Kubernetes API.
        cluster: Host inventory (capacities + background load).
        provisioner: Chooses hosts for placements and releases.
        startup_seconds: Container cold-start time (paper: seconds).
        audit: Optional decision log; every reconcile pass that changes a
            deployment's pod count appends one record per microservice
            (declared replicas, actual delta, reason), so rollouts are
            explainable alongside the in-DES autoscaler's decisions.
    """

    api: MockKubeApi
    cluster: Cluster
    provisioner: Provisioner
    startup_seconds: float = 3.0
    audit: Optional[DecisionLog] = None
    _clock: float = field(default=0.0, repr=False)

    # ------------------------------------------------------------------
    def apply_allocation(
        self, containers: Mapping[str, int], specs: Optional[Mapping] = None
    ) -> None:
        """Declare desired replica counts for many microservices at once."""
        for microservice, count in containers.items():
            spec = specs.get(microservice) if specs else None
            self.api.apply(microservice, count, spec)

    def reconcile(self) -> Dict[str, int]:
        """One reconciliation pass; returns per-microservice pod deltas."""
        deltas: Dict[str, int] = {}
        for microservice, deployment in self.api.deployments.items():
            if microservice not in self.cluster.sizes:
                self.cluster.sizes[microservice] = deployment.spec
            current = self.api.active_replicas(microservice)
            delta = deployment.replicas - current
            for _ in range(max(delta, 0)):
                self._create_and_schedule(microservice)
            for _ in range(max(-delta, 0)):
                self._scale_down_one(microservice)
            if delta:
                deltas[microservice] = delta
                if self.audit is not None:
                    self.audit.record(
                        minute=self._clock / 60.0,
                        actor="controller",
                        microservice=microservice,
                        before=current,
                        after=deployment.replicas,
                        reason="reconcile pods to declared replicas",
                    )
        return deltas

    def tick(self, seconds: float) -> int:
        """Advance the clock; STARTING pods whose boot completed go RUNNING.

        Returns the number of pods that became RUNNING.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self._clock += seconds
        started = 0
        for pod in self.api.pods.values():
            if pod.phase is PodPhase.STARTING and pod.ready_at <= self._clock:
                pod.phase = PodPhase.RUNNING
                started += 1
                self.api.events.append(ApiEvent("pod-running", pod.name))
        self.api.reap_terminated()
        return started

    @property
    def clock(self) -> float:
        return self._clock

    # ------------------------------------------------------------------
    def _create_and_schedule(self, microservice: str) -> Pod:
        pod = self.api.create_pod(microservice)
        host = self.provisioner.choose_placement_host(self.cluster, microservice)
        host.place(microservice)
        pod.node = host.host_id
        pod.phase = PodPhase.STARTING
        pod.ready_at = self._clock + self.startup_seconds
        self.api.events.append(
            ApiEvent("pod-scheduled", pod.name, f"node={host.host_id}")
        )
        return pod

    def _scale_down_one(self, microservice: str) -> None:
        host = self.provisioner.choose_release_host(self.cluster, microservice)
        host.release(microservice)
        victims = [
            pod
            for pod in self.api.pods_of(microservice)
            if pod.node == host.host_id
        ]
        if not victims:
            raise RuntimeError(
                f"cluster and API out of sync: no pod of {microservice!r} "
                f"on {host.host_id}"
            )
        # Prefer terminating pods that never started serving.
        victims.sort(key=lambda p: (p.is_serving(), p.ready_at))
        self.api.delete_pod(victims[0].name)
