"""tc-style network priority configuration (paper §5.5).

Erms enforces its scheduling priorities in each container's network layer:
a ``pfifo_fast``-like multi-band queueing discipline is bound to a virtual
interface attached to the container, and each incoming flow (one per
calling service) is tagged with a band.  Lower band = dequeued first.

This module models that plumbing: given an
:class:`~repro.core.model.Allocation` carrying the per-shared-microservice
service ranks, it computes the per-pod band assignments and "installs"
them on the pods of a :class:`~repro.deployment.api.MockKubeApi`.  The
cluster simulator's :class:`~repro.simulator.scheduler.PriorityQueuePolicy`
is the behavioural counterpart; this layer is the control-plane side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.core.model import Allocation
from repro.deployment.api import MockKubeApi


@dataclass(frozen=True)
class TrafficClass:
    """One flow's classification on one pod."""

    pod: str
    service: str
    band: int  # 0 = highest priority


@dataclass
class NetworkPriorityConfigurator:
    """Computes and installs per-pod traffic bands.

    Attributes:
        bands: Number of hardware-ish priority bands available
            (pfifo_fast has 3); ranks beyond the last band share it.
    """

    bands: int = 3
    installed: List[TrafficClass] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.bands < 1:
            raise ValueError(f"bands must be >= 1, got {self.bands}")

    def plan(self, allocation: Allocation) -> Dict[str, Dict[str, int]]:
        """Band per (shared microservice, service) from priority ranks.

        Ranks map to bands directly, clamped to the band count; services
        not present at a microservice are untagged (default band applies).
        """
        plan: Dict[str, Dict[str, int]] = {}
        for microservice, ranks in allocation.priorities.items():
            plan[microservice] = {
                service: min(rank, self.bands - 1)
                for service, rank in ranks.items()
            }
        return plan

    def install(self, api: MockKubeApi, allocation: Allocation) -> int:
        """Write band assignments onto every active pod; returns count.

        Idempotent: re-installing replaces each pod's assignments for the
        planned microservices.
        """
        plan = self.plan(allocation)
        installed = 0
        self.installed = []
        for microservice, assignment in plan.items():
            for pod in api.pods_of(microservice):
                pod.traffic_bands = dict(assignment)
                for service, band in assignment.items():
                    self.installed.append(
                        TrafficClass(pod=pod.name, service=service, band=band)
                    )
                    installed += 1
        return installed

    def bands_for(self, api: MockKubeApi, microservice: str) -> Mapping[str, int]:
        """The (consistent) band assignment across a microservice's pods.

        Raises if pods disagree — a misconfiguration the real system
        would surface as unexplainable latency differences.
        """
        assignments = [
            pod.traffic_bands for pod in api.pods_of(microservice)
        ]
        if not assignments:
            return {}
        first = assignments[0]
        for other in assignments[1:]:
            if other != first:
                raise RuntimeError(
                    f"inconsistent traffic bands across pods of "
                    f"{microservice!r}"
                )
        return first
