"""Kubernetes-like API objects (the subset Erms touches).

A *Deployment* declares how many replicas of a microservice's container
should exist; *Pods* are the replicas, each bound to a node and moving
through a lifecycle.  Startup is not instantaneous — the paper leans on
this ("a container usually requires several seconds to start", §6.5.2) to
argue scaling-decision overhead is negligible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from repro.core.model import ContainerSpec


class PodPhase(Enum):
    """Pod lifecycle phases (the subset that matters for scaling)."""

    PENDING = "Pending"  # accepted, not yet scheduled to a node
    STARTING = "Starting"  # scheduled, container booting
    RUNNING = "Running"
    TERMINATING = "Terminating"


_pod_counter = itertools.count()


@dataclass
class Pod:
    """One container replica."""

    name: str
    microservice: str
    spec: ContainerSpec
    phase: PodPhase = PodPhase.PENDING
    node: Optional[str] = None
    #: Absolute time (seconds) at which a STARTING pod becomes RUNNING.
    ready_at: float = 0.0
    #: tc priority band assignments: service name -> band (0 = highest).
    traffic_bands: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def fresh(cls, microservice: str, spec: ContainerSpec) -> "Pod":
        return cls(
            name=f"{microservice}-{next(_pod_counter):06d}",
            microservice=microservice,
            spec=spec,
        )

    def is_active(self) -> bool:
        """Counts toward the deployment's replica total."""
        return self.phase in (PodPhase.PENDING, PodPhase.STARTING, PodPhase.RUNNING)

    def is_serving(self) -> bool:
        return self.phase is PodPhase.RUNNING


@dataclass
class Deployment:
    """Desired state for one microservice's replicas."""

    microservice: str
    replicas: int
    spec: ContainerSpec = field(default_factory=ContainerSpec)

    def __post_init__(self) -> None:
        if self.replicas < 0:
            raise ValueError(
                f"replicas must be non-negative, got {self.replicas}"
            )
