"""The mock Kubernetes API server.

Holds the declarative state (Deployments) and the observed state (Pods),
and records every mutation as an :class:`ApiEvent` so tests and the
experiment harness can audit exactly what the controller did — the
in-process equivalent of ``kubectl get events``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.model import ContainerSpec
from repro.deployment.objects import Deployment, Pod, PodPhase


@dataclass(frozen=True)
class ApiEvent:
    """One recorded API mutation."""

    kind: str  # "apply" | "pod-created" | "pod-scheduled" | "pod-running" | "pod-deleted"
    subject: str
    detail: str = ""


@dataclass
class MockKubeApi:
    """In-process stand-in for the Kubernetes API."""

    deployments: Dict[str, Deployment] = field(default_factory=dict)
    pods: Dict[str, Pod] = field(default_factory=dict)
    events: List[ApiEvent] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Declarative state
    # ------------------------------------------------------------------
    def apply(
        self,
        microservice: str,
        replicas: int,
        spec: Optional[ContainerSpec] = None,
    ) -> Deployment:
        """Create or update a Deployment (idempotent, like kubectl apply)."""
        existing = self.deployments.get(microservice)
        if existing is not None:
            existing.replicas = replicas
            if spec is not None:
                existing.spec = spec
            deployment = existing
        else:
            deployment = Deployment(
                microservice=microservice,
                replicas=replicas,
                spec=spec if spec is not None else ContainerSpec(),
            )
            self.deployments[microservice] = deployment
        self.events.append(
            ApiEvent("apply", microservice, f"replicas={replicas}")
        )
        return deployment

    # ------------------------------------------------------------------
    # Pods
    # ------------------------------------------------------------------
    def create_pod(self, microservice: str) -> Pod:
        deployment = self.deployments.get(microservice)
        if deployment is None:
            raise KeyError(f"no deployment for {microservice!r}")
        pod = Pod.fresh(microservice, deployment.spec)
        self.pods[pod.name] = pod
        self.events.append(ApiEvent("pod-created", pod.name))
        return pod

    def delete_pod(self, pod_name: str) -> None:
        pod = self.pods.get(pod_name)
        if pod is None:
            raise KeyError(f"no pod {pod_name!r}")
        pod.phase = PodPhase.TERMINATING
        self.events.append(ApiEvent("pod-deleted", pod_name))

    def reap_terminated(self) -> int:
        """Remove TERMINATING pods from the store; returns the count."""
        doomed = [
            name
            for name, pod in self.pods.items()
            if pod.phase is PodPhase.TERMINATING
        ]
        for name in doomed:
            del self.pods[name]
        return len(doomed)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pods_of(self, microservice: str, active_only: bool = True) -> List[Pod]:
        return [
            pod
            for pod in self.pods.values()
            if pod.microservice == microservice
            and (pod.is_active() if active_only else True)
        ]

    def active_replicas(self, microservice: str) -> int:
        return len(self.pods_of(microservice))

    def serving_replicas(self, microservice: str) -> int:
        return sum(1 for p in self.pods_of(microservice) if p.is_serving())

    def pods_on_node(self, node: str) -> List[Pod]:
        return [
            pod
            for pod in self.pods.values()
            if pod.node == node and pod.is_active()
        ]

    def events_of_kind(self, kind: str) -> List[ApiEvent]:
        return [event for event in self.events if event.kind == kind]
