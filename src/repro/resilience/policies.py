"""Client-side resilience policies and the circuit-breaker state machine.

The policy dataclasses are frozen, picklable configuration — what a
service mesh would read from a retry/timeout/outlier-detection config —
and the :class:`CircuitBreaker` is the per-(service, microservice)
runtime the :class:`~repro.resilience.manager.ResilienceManager` drives.
``ResiliencePolicies.disabled()`` attaches the resilience machinery
without any policy (observation-only: chaos faults still fire, nothing
recovers), which is the no-policy baseline of the resilience sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = [
    "AdmissionPolicy",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "ResiliencePolicies",
    "RetryPolicy",
    "TimeoutPolicy",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

#: Breaker states (ints so they gauge directly into the metrics registry).
BREAKER_CLOSED = 0
BREAKER_OPEN = 1
BREAKER_HALF_OPEN = 2

_STATE_NAMES = {
    BREAKER_CLOSED: "closed",
    BREAKER_OPEN: "open",
    BREAKER_HALF_OPEN: "half-open",
}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff + jitter.

    ``max_attempts`` counts the first try: 3 means one call plus at most
    two retries.  Backoff for attempt *k* (1-based, after the k-th
    failure) is ``base · factor^(k-1)`` capped at ``max_backoff_ms``,
    stretched by a uniform jitter in ``[0, jitter]`` drawn from the
    resilience manager's dedicated RNG.
    """

    max_attempts: int = 3
    backoff_base_ms: float = 20.0
    backoff_factor: float = 2.0
    max_backoff_ms: float = 2_000.0
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_ms < 0 or self.max_backoff_ms < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_ms(self, attempt: int, unit_jitter: float) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        base = self.backoff_base_ms * self.backoff_factor ** (attempt - 1)
        return min(base, self.max_backoff_ms) * (1.0 + self.jitter * unit_jitter)


@dataclass(frozen=True)
class TimeoutPolicy:
    """Per-call client timeout: abandon stragglers after this long.

    The abandoned subtree keeps executing (servers finish work for
    disconnected clients); only the caller stops waiting.  Optional
    per-microservice overrides tighten or loosen individual dependencies.
    """

    call_timeout_ms: float = 500.0
    overrides: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.call_timeout_ms <= 0:
            raise ValueError("call_timeout_ms must be positive")
        for name, value in self.overrides.items():
            if value <= 0:
                raise ValueError(f"timeout override for {name!r} must be positive")

    def timeout_for(self, microservice: str) -> float:
        return self.overrides.get(microservice, self.call_timeout_ms)


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Per-(service, microservice) breaker knobs.

    ``failure_threshold`` consecutive failures trip the breaker OPEN;
    after ``cooldown_ms`` it admits up to ``half_open_probes`` concurrent
    trial calls (HALF_OPEN); ``success_to_close`` probe successes close
    it, any probe failure re-opens it for another cooldown.

    The default threshold is deliberately high: a *partial* error rate
    (say 25 %) is the retry policy's job and should not trip the breaker
    — runs of 10 consecutive failures are vanishingly rare below ~50 %
    error rates — while a hard-down dependency (every call failing)
    still trips within 10 calls.
    """

    failure_threshold: int = 10
    cooldown_ms: float = 2_000.0
    half_open_probes: int = 2
    success_to_close: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_ms <= 0:
            raise ValueError("cooldown_ms must be positive")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        if self.success_to_close < 1:
            raise ValueError("success_to_close must be >= 1")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Queue-depth / latency-aware admission control (graceful degradation).

    Requests of services with priority rank >= ``shed_rank_floor`` are
    rejected at arrival ("503, retry later") whenever the root
    microservice's queued jobs per worker thread exceed
    ``max_queue_per_thread``, or — when ``latency_threshold_ms`` is set —
    the service's own EWMA end-to-end latency exceeds it.  Rank 0
    (highest priority, the paper's Eqs. 13–14 ordering) is never shed, so
    high-priority services keep their Eq. 5 targets while best-effort
    load degrades first.  ``ranks`` overrides the ranks derived from the
    simulator's priority configuration.
    """

    max_queue_per_thread: float = 8.0
    shed_rank_floor: int = 1
    latency_threshold_ms: Optional[float] = None
    ewma_alpha: float = 0.1
    ranks: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_queue_per_thread <= 0:
            raise ValueError("max_queue_per_thread must be positive")
        if self.shed_rank_floor < 1:
            raise ValueError(
                "shed_rank_floor must be >= 1 (rank 0 is never shed)"
            )
        if self.latency_threshold_ms is not None and self.latency_threshold_ms <= 0:
            raise ValueError("latency_threshold_ms must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")


@dataclass(frozen=True)
class ResiliencePolicies:
    """The full client-side policy bundle attached to one run.

    Every member is optional; ``None`` disables that mechanism.  ``seed``
    drives the policy RNG (backoff jitter) — a dedicated stream, like the
    telemetry sampling RNG, so policies never touch the engine's draws.
    """

    retry: Optional[RetryPolicy] = None
    timeout: Optional[TimeoutPolicy] = None
    breaker: Optional[CircuitBreakerPolicy] = None
    admission: Optional[AdmissionPolicy] = None
    seed: int = 0

    @classmethod
    def default(cls, seed: int = 0) -> "ResiliencePolicies":
        """All four mechanisms at their default settings."""
        return cls(
            retry=RetryPolicy(),
            timeout=TimeoutPolicy(),
            breaker=CircuitBreakerPolicy(),
            admission=AdmissionPolicy(),
            seed=seed,
        )

    @classmethod
    def disabled(cls, seed: int = 0) -> "ResiliencePolicies":
        """Observation-only: no retries, timeouts, breaker, or shedding.

        Chaos faults still fire; failed calls fail the request on first
        error.  The no-policy baseline of the resilience sweep.
        """
        return cls(seed=seed)

    def label(self) -> str:
        parts = [
            name
            for name, member in (
                ("retry", self.retry),
                ("timeout", self.timeout),
                ("breaker", self.breaker),
                ("admission", self.admission),
            )
            if member is not None
        ]
        return "+".join(parts) if parts else "no-policy"


class CircuitBreaker:
    """One breaker instance; transitions are returned for audit logging.

    The caller (the resilience manager) invokes :meth:`allow` before each
    attempt and :meth:`record_success` / :meth:`record_failure` after;
    each returns the new state when a transition happened (else ``None``)
    so every state change lands in the DecisionLog and the breaker-state
    gauge exactly once.
    """

    __slots__ = (
        "policy",
        "state",
        "consecutive_failures",
        "open_until",
        "probes_in_flight",
        "probe_successes",
        "opens",
    )

    def __init__(self, policy: CircuitBreakerPolicy):
        self.policy = policy
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.open_until = 0.0
        self.probes_in_flight = 0
        self.probe_successes = 0
        self.opens = 0  # lifetime count of CLOSED/HALF_OPEN -> OPEN trips

    def state_name(self) -> str:
        return _STATE_NAMES[self.state]

    def allow(self, now_ms: float):
        """(admitted, transition): may this attempt proceed?"""
        state = self.state
        if state == BREAKER_CLOSED:
            return True, None
        if state == BREAKER_OPEN:
            if now_ms < self.open_until:
                return False, None
            # Cooldown elapsed: admit a probe.
            self.state = BREAKER_HALF_OPEN
            self.probes_in_flight = 1
            self.probe_successes = 0
            return True, BREAKER_HALF_OPEN
        # HALF_OPEN: bounded concurrent probes.
        if self.probes_in_flight < self.policy.half_open_probes:
            self.probes_in_flight += 1
            return True, None
        return False, None

    def record_success(self, now_ms: float):
        """Outcome of an admitted attempt; returns a transition or None."""
        if self.state == BREAKER_HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self.probe_successes += 1
            if self.probe_successes >= self.policy.success_to_close:
                self.state = BREAKER_CLOSED
                self.consecutive_failures = 0
                return BREAKER_CLOSED
            return None
        self.consecutive_failures = 0
        return None

    def record_failure(self, now_ms: float):
        """Outcome of an admitted attempt; returns a transition or None."""
        if self.state == BREAKER_HALF_OPEN:
            # A failed probe re-opens immediately.
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self.state = BREAKER_OPEN
            self.open_until = now_ms + self.policy.cooldown_ms
            self.opens += 1
            return BREAKER_OPEN
        if self.state == BREAKER_CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.policy.failure_threshold:
                self.state = BREAKER_OPEN
                self.open_until = now_ms + self.policy.cooldown_ms
                self.opens += 1
                return BREAKER_OPEN
        return None
