"""Deterministic chaos schedules: the faults a run is subjected to.

A :class:`ChaosSchedule` is a frozen, fully explicit list of fault
events — container crashes (optionally with restart-after-delay
recovery), per-RPC error-probability windows, and transient latency-spike
windows — that the :class:`~repro.simulator.simulation.ClusterSimulator`
replays inside the event loop.  Because the schedule is plain data (no
callables, no hidden clocks) the same schedule injected into the same
seeded simulation produces bit-identical results across runs and across
``--workers`` settings, which is what lets the resilience sweep compare
policies *under identical faults*.

``ChaosSchedule.random`` generates a schedule from its own RNG stream,
so schedule generation never perturbs the engine's pinned draw order;
per-RPC error draws during the run come from the resilience manager's
dedicated RNG for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ChaosSchedule",
    "CrashEvent",
    "ErrorWindow",
    "LatencySpike",
    "SpikeMultiplier",
]


@dataclass(frozen=True)
class CrashEvent:
    """Kill one container of ``microservice`` at ``at_min``.

    Attributes:
        at_min: Simulation minute of the crash.
        microservice: Victim microservice (one container leaves rotation).
        restart_after_ms: When set, a fresh container re-joins after this
            delay through the simulator's startup machinery (crash with
            recovery); ``None`` models a permanent loss the autoscaler
            must repair.
        retry: Whether queued jobs on the dead container are re-enqueued
            on survivors (RPC clients retrying) or lost.
    """

    at_min: float
    microservice: str
    restart_after_ms: Optional[float] = None
    retry: bool = True

    def __post_init__(self) -> None:
        if self.at_min < 0:
            raise ValueError("at_min must be non-negative")
        if self.restart_after_ms is not None and self.restart_after_ms < 0:
            raise ValueError("restart_after_ms must be non-negative")


@dataclass(frozen=True)
class ErrorWindow:
    """During [start_min, end_min), calls to ``microservice`` fail with
    probability ``error_rate`` (per RPC attempt, drawn at completion)."""

    microservice: str
    start_min: float
    end_min: float
    error_rate: float

    def __post_init__(self) -> None:
        if self.end_min <= self.start_min:
            raise ValueError("end_min must exceed start_min")
        if not 0.0 < self.error_rate <= 1.0:
            raise ValueError(
                f"error_rate must be in (0, 1], got {self.error_rate}"
            )


@dataclass(frozen=True)
class LatencySpike:
    """During [start_min, end_min), ``microservice`` service times are
    multiplied by ``multiplier`` (a stalled dependency / GC pause / noisy
    neighbour, transient rather than the hour-scale iBench schedules)."""

    microservice: str
    start_min: float
    end_min: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.end_min <= self.start_min:
            raise ValueError("end_min must exceed start_min")
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")


class SpikeMultiplier:
    """Container multiplier callable composing a base level with spikes.

    The engine already supports time-varying multipliers as callables of
    the simulation minute; wrapping a container's multiplier with this
    class is how latency-spike windows reach the service-time draw
    without touching the engine's hot path for unspiked microservices.
    """

    __slots__ = ("base", "windows")

    def __init__(self, base, windows: Sequence[Tuple[float, float, float]]):
        self.base = base  # float or callable(minute) -> float
        self.windows = tuple(windows)  # (start_min, end_min, multiplier)

    def __call__(self, minute: float) -> float:
        base = self.base
        value = base(minute) if callable(base) else base
        for start, end, multiplier in self.windows:
            if start <= minute < end:
                value *= multiplier
        return value


@dataclass(frozen=True)
class ChaosSchedule:
    """A deterministic fault plan for one simulation run.

    Attributes:
        crashes: Container-kill events (with optional restart recovery).
        error_windows: Per-RPC error-probability windows.
        latency_spikes: Transient service-time inflation windows.
        seed: Seed of the run-time fault RNG (per-RPC error draws); a
            dedicated stream so chaos never perturbs the engine's RNG.
    """

    crashes: Tuple[CrashEvent, ...] = ()
    error_windows: Tuple[ErrorWindow, ...] = ()
    latency_spikes: Tuple[LatencySpike, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Tolerate lists at construction; store tuples for hashability.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "error_windows", tuple(self.error_windows))
        object.__setattr__(
            self, "latency_spikes", tuple(self.latency_spikes)
        )

    # -- lookups (manager precomputes per-microservice tables) ----------
    def error_windows_of(self, microservice: str) -> List[ErrorWindow]:
        return [
            w for w in self.error_windows if w.microservice == microservice
        ]

    def spikes_of(self, microservice: str) -> List[LatencySpike]:
        return [
            s for s in self.latency_spikes if s.microservice == microservice
        ]

    def error_rate_at(self, microservice: str, minute: float) -> float:
        """Per-RPC error probability for ``microservice`` at ``minute``."""
        rate = 0.0
        for window in self.error_windows:
            if (
                window.microservice == microservice
                and window.start_min <= minute < window.end_min
            ):
                rate = max(rate, window.error_rate)
        return rate

    def is_empty(self) -> bool:
        return not (self.crashes or self.error_windows or self.latency_spikes)

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "crashes": [
                {
                    "at_min": c.at_min,
                    "microservice": c.microservice,
                    "restart_after_ms": c.restart_after_ms,
                    "retry": c.retry,
                }
                for c in self.crashes
            ],
            "error_windows": [
                {
                    "microservice": w.microservice,
                    "start_min": w.start_min,
                    "end_min": w.end_min,
                    "error_rate": w.error_rate,
                }
                for w in self.error_windows
            ],
            "latency_spikes": [
                {
                    "microservice": s.microservice,
                    "start_min": s.start_min,
                    "end_min": s.end_min,
                    "multiplier": s.multiplier,
                }
                for s in self.latency_spikes
            ],
        }

    @classmethod
    def random(
        cls,
        microservices: Sequence[str],
        duration_min: float,
        seed: int = 0,
        crashes: int = 1,
        restart_after_ms: Optional[float] = 5_000.0,
        error_windows: int = 1,
        error_rate: float = 0.05,
        latency_spikes: int = 1,
        spike_multiplier: float = 3.0,
        window_min: float = 0.5,
    ) -> "ChaosSchedule":
        """Generate a seeded schedule over ``microservices``.

        Fault times land in the middle 80 % of the run (so warmup and the
        drain tail stay clean), and window lengths are ``window_min``
        clipped to the run.  The same arguments always produce the same
        schedule — generation draws only from its own ``seed`` stream.
        """
        if not microservices:
            raise ValueError("microservices must be non-empty")
        if duration_min <= 0:
            raise ValueError("duration_min must be positive")
        rng = np.random.default_rng(seed)
        names = list(microservices)
        lo, hi = 0.1 * duration_min, 0.9 * duration_min

        def pick_time() -> float:
            return float(rng.uniform(lo, hi))

        def pick_name() -> str:
            return names[int(rng.integers(0, len(names)))]

        crash_events = tuple(
            CrashEvent(
                at_min=pick_time(),
                microservice=pick_name(),
                restart_after_ms=restart_after_ms,
            )
            for _ in range(crashes)
        )
        error_events = []
        for _ in range(error_windows):
            start = pick_time()
            error_events.append(
                ErrorWindow(
                    microservice=pick_name(),
                    start_min=start,
                    end_min=min(start + window_min, duration_min),
                    error_rate=error_rate,
                )
            )
        spike_events = []
        for _ in range(latency_spikes):
            start = pick_time()
            spike_events.append(
                LatencySpike(
                    microservice=pick_name(),
                    start_min=start,
                    end_min=min(start + window_min, duration_min),
                    multiplier=spike_multiplier,
                )
            )
        return cls(
            crashes=crash_events,
            error_windows=tuple(error_events),
            latency_spikes=tuple(spike_events),
            seed=seed,
        )
