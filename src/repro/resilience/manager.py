"""The resilience runtime woven into the simulator's request path.

A :class:`ResilienceManager` is created by the
:class:`~repro.simulator.simulation.ClusterSimulator` whenever a chaos
schedule or a policy bundle is attached.  It owns:

* the **fault side** — scheduling the chaos schedule's container crashes
  (with restart recovery), drawing per-RPC error outcomes inside error
  windows, and reporting every fault to the DecisionLog (actor
  ``chaos``);
* the **policy side** — per-call timeouts that abandon stragglers,
  bounded retries with exponential backoff + jitter, per-(service,
  microservice) circuit breakers with half-open probing (DecisionLog
  actor ``circuit-breaker``), and queue-depth / latency-aware admission
  control that sheds low-priority requests first.

Every logical RPC becomes a :class:`_ResilientCall` that drives one
engine execution per attempt; the engine's continuation chain is
untouched except that attempt continuations (:class:`_AttemptDone`)
stand between the engine and the join frames, so a timed-out attempt's
late completion is ignored and a failed attempt can be retried without
the join machinery noticing.  All randomness (error draws, backoff
jitter) comes from the manager's dedicated RNG — the engine's pinned
draw order is never touched, and with the manager absent the engine pays
one ``is not None`` branch per arrival and per stage fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.resilience.chaos import ChaosSchedule
from repro.resilience.policies import (
    BREAKER_CLOSED,
    BREAKER_OPEN,
    CircuitBreaker,
    ResiliencePolicies,
)
from repro.telemetry.hooks import _SpanDone

if TYPE_CHECKING:  # runtime import would cycle through the simulator
    from repro.simulator.simulation import ClusterSimulator

_MS_PER_MINUTE = 60_000.0
_RNG_BLOCK = 256

_STATE_NAMES = {0: "closed", 1: "open", 2: "half-open"}

__all__ = ["ResilienceManager", "ResilienceStats"]


@dataclass
class ResilienceStats:
    """Run-level fault and policy counters (mirrored into the registry)."""

    requests: int = 0
    succeeded: int = 0
    failed: int = 0
    shed: int = 0
    retries: int = 0
    timeouts: int = 0
    errors_injected: int = 0
    breaker_fast_fails: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    late_completions: int = 0
    crashes: int = 0
    restarts: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "shed": self.shed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "errors_injected": self.errors_injected,
            "breaker_fast_fails": self.breaker_fast_fails,
            "breaker_opens": self.breaker_opens,
            "breaker_closes": self.breaker_closes,
            "late_completions": self.late_completions,
            "crashes": self.crashes,
            "restarts": self.restarts,
        }


class _RequestCtx:
    """Per-request resilience context: outcome flag + final continuation."""

    __slots__ = ("service", "start", "final", "failed")

    def __init__(self, service: str, start: float, final):
        self.service = service
        self.start = start
        self.final = final
        self.failed = False


class _AttemptDone:
    """Engine continuation of one attempt of one logical call.

    ``alive`` settles the race between the subtree completing and the
    attempt's timeout: whichever fires first wins, the loser no-ops
    (late completions are counted — stragglers the client abandoned).
    ``span_done`` is the telemetry span covering this attempt (the root
    request span for root calls), used as the parent context when the
    node fans out to children.
    """

    __slots__ = ("call", "alive", "span_done")

    def __init__(self, call: "_ResilientCall"):
        self.call = call
        self.alive = True
        self.span_done = None

    def __call__(self, finish: float) -> None:
        if not self.alive:
            self.call.mgr.stats.late_completions += 1
            return
        self.alive = False
        call = self.call
        mgr = call.mgr
        rate_windows = mgr._error_windows.get(call.node.microservice)
        if rate_windows is not None:
            minute = finish / _MS_PER_MINUTE
            for start_min, end_min, rate in rate_windows:
                if start_min <= minute < end_min:
                    if mgr._draw_unit() < rate:
                        mgr.stats.errors_injected += 1
                        mgr._count("chaos_errors")
                        call.attempt_failed(finish, "error")
                        return
                    break
        call.attempt_succeeded(finish)


class _AttemptTimeout:
    """Scheduled abandonment of one attempt (fires unless it completed)."""

    __slots__ = ("attempt",)

    def __init__(self, attempt: _AttemptDone):
        self.attempt = attempt

    def __call__(self, now: float) -> None:
        attempt = self.attempt
        if attempt.alive:
            attempt.alive = False
            call = attempt.call
            call.mgr.stats.timeouts += 1
            call.mgr._count("resilience_timeouts")
            call.attempt_failed(now, "timeout")


class _Retry:
    """Scheduled re-execution of a logical call after backoff."""

    __slots__ = ("call",)

    def __init__(self, call: "_ResilientCall"):
        self.call = call

    def __call__(self, now: float) -> None:
        self.call.execute_attempt(now)


class _ResilientCall:
    """One logical RPC: breaker gate, attempts, backoff, final outcome."""

    __slots__ = (
        "mgr",
        "req",
        "service",
        "node",
        "downstream",
        "span_parent",
        "fixed_span",
        "is_root",
        "attempt",
    )

    def __init__(
        self,
        mgr: "ResilienceManager",
        req: _RequestCtx,
        service: str,
        node,
        downstream,
        span_parent,
        fixed_span=None,
        is_root: bool = False,
    ):
        self.mgr = mgr
        self.req = req
        self.service = service
        self.node = node
        self.downstream = downstream
        self.span_parent = span_parent
        self.fixed_span = fixed_span
        self.is_root = is_root
        self.attempt = 0

    # -- attempt lifecycle ---------------------------------------------
    def execute_attempt(self, t: float) -> None:
        mgr = self.mgr
        breaker = mgr._breaker_for(self.service, self.node.microservice)
        if breaker is not None and not mgr._breaker_allow(
            breaker, self.service, self.node.microservice, t
        ):
            # Fast fail: no engine work, no breaker feedback (nothing was
            # probed), straight to the retry/fail decision.  The fast
            # fail consumes an attempt — otherwise a call facing an open
            # breaker would loop retry -> fast-fail on every backoff for
            # as long as the breaker stays open.
            self.attempt += 1
            mgr.stats.breaker_fast_fails += 1
            mgr._count("breaker_fast_fails")
            self._after_failure(t, "breaker-open", breaker=None)
            return
        self.attempt += 1
        attempt = _AttemptDone(self)
        inner = attempt
        tele = mgr.tele
        if self.is_root:
            attempt.span_done = self.fixed_span
        elif tele is not None and self.span_parent is not None:
            wrapped = tele.wrap_call(self.span_parent, self.node, t, attempt)
            if wrapped is not attempt:
                attempt.span_done = wrapped
                inner = wrapped
        timeout = mgr._timeout
        if timeout is not None:
            mgr.events.push(
                t + timeout.timeout_for(self.node.microservice),
                _AttemptTimeout(attempt),
            )
        mgr.sim._execute_node(self.service, self.node, t, inner)

    def attempt_succeeded(self, finish: float) -> None:
        mgr = self.mgr
        breaker = mgr._breaker_for(self.service, self.node.microservice)
        if breaker is not None:
            before = breaker.state
            transition = breaker.record_success(finish)
            if transition is not None:
                mgr._breaker_transition(
                    self.service, self.node.microservice,
                    before, transition, finish, "probe successes",
                )
        if self.is_root:
            mgr._finish_request(self.req, finish)
        else:
            self.downstream(finish)

    def attempt_failed(self, t: float, kind: str) -> None:
        mgr = self.mgr
        breaker = mgr._breaker_for(self.service, self.node.microservice)
        if breaker is not None:
            before = breaker.state
            transition = breaker.record_failure(t)
            if transition is not None:
                mgr._breaker_transition(
                    self.service, self.node.microservice,
                    before, transition, t, kind,
                )
        self._after_failure(t, kind, breaker)

    def _after_failure(self, t: float, kind: str, breaker) -> None:
        mgr = self.mgr
        retry = mgr._retry
        if retry is not None and self.attempt < retry.max_attempts:
            mgr.stats.retries += 1
            mgr._count("resilience_retries")
            delay = retry.backoff_ms(max(self.attempt, 1), mgr._draw_unit())
            mgr.events.push(t + delay, _Retry(self))
            return
        # Retries exhausted (or no retry policy): the logical call fails.
        if self.is_root:
            mgr._fail_request(self.req, t, kind)
        else:
            # Mark the request failed but keep the join machinery moving:
            # sibling calls and later stages still execute (servers finish
            # work for clients that already saw the error).
            self.req.failed = True
            self.downstream(t)


class ResilienceManager:
    """Fault injection + client-side policies for one simulation run."""

    def __init__(
        self,
        sim: "ClusterSimulator",
        policies: Optional[ResiliencePolicies],
        chaos: Optional[ChaosSchedule],
    ):
        self.sim = sim
        self.policies = policies or ResiliencePolicies.disabled()
        self.chaos = chaos
        self.events = sim.events
        self.tele = sim._telemetry
        self.stats = ResilienceStats()
        self._retry = self.policies.retry
        self._timeout = self.policies.timeout
        self._admission = self.policies.admission
        seed = self.policies.seed
        if chaos is not None:
            # Mix both seeds so (policy seed, chaos seed) pairs are
            # independent streams; pure-Python arithmetic keeps it exact.
            seed = (seed * 1_000_003 + chaos.seed) % (2**63)
        self.rng = np.random.default_rng(seed)
        self._unit_buf: List[float] = []
        self._unit_i = 0
        #: microservice -> ((start_min, end_min, rate), ...) error windows
        self._error_windows: Dict[str, Tuple[Tuple[float, float, float], ...]] = {}
        if chaos is not None:
            for window in chaos.error_windows:
                existing = self._error_windows.get(window.microservice, ())
                self._error_windows[window.microservice] = existing + (
                    (window.start_min, window.end_min, window.error_rate),
                )
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self._ranks: Dict[str, int] = {}
        self._graph_states: Dict[str, List] = {}
        self._root_ms: Dict[str, str] = {}
        self._ewma: Dict[str, float] = {}
        self._shed_logged: set = set()
        self._derive_ranks()
        self._installed = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _derive_ranks(self) -> None:
        """Service priority ranks for admission shedding.

        Explicit ``AdmissionPolicy.ranks`` win; otherwise the rank is the
        minimum over the simulator's per-microservice priority maps (the
        Eqs. 13–14 ordering), with unlisted services one past the worst
        listed rank — matching the priority queue's default.  With no
        priority information at all every service is rank 0 and nothing
        is ever shed.
        """
        explicit = dict(self._admission.ranks) if self._admission else {}
        listed: Dict[str, int] = {}
        worst = -1
        for ranks in self.sim.priorities.values():
            for service, rank in ranks.items():
                listed[service] = min(listed.get(service, rank), rank)
                worst = max(worst, rank)
        for spec in self.sim.services:
            name = spec.name
            if name in explicit:
                self._ranks[name] = explicit[name]
            elif name in listed:
                self._ranks[name] = listed[name]
            else:
                self._ranks[name] = worst + 1 if worst >= 0 else 0
            # Admission inspects every microservice on the service's
            # graph, so pressure at a shared downstream dependency sheds
            # best-effort load just like pressure at the root.
            self._graph_states[name] = [
                self.sim._microservices[ms]
                for ms in sorted(spec.graph.microservices())
            ]
            self._root_ms[name] = spec.graph.root.microservice

    def install(self) -> None:
        """Schedule the chaos plan (called once, at run start)."""
        if self._installed:
            return
        self._installed = True
        chaos = self.chaos
        if chaos is None:
            return
        known = self.sim._microservices
        unknown = sorted(
            {
                event.microservice
                for group in (
                    chaos.crashes, chaos.error_windows, chaos.latency_spikes
                )
                for event in group
                if event.microservice not in known
            }
        )
        if unknown:
            raise ValueError(
                f"chaos schedule targets unknown microservices: {unknown}"
            )
        for crash in chaos.crashes:
            self.events.schedule(
                crash.at_min * _MS_PER_MINUTE, _CrashFire(self, crash)
            )
        tele = self.tele
        if tele is not None:
            # Continuous faults are logged once at install; crashes log at
            # fire time with their live container counts.
            for window in chaos.error_windows:
                count = self.sim.container_count(window.microservice)
                tele.decisions.record(
                    minute=0.0,
                    actor="chaos",
                    microservice=window.microservice,
                    before=count,
                    after=count,
                    reason=(
                        f"error window [{window.start_min:g}, "
                        f"{window.end_min:g}) min at rate "
                        f"{window.error_rate:g}"
                    ),
                )
            for spike in chaos.latency_spikes:
                count = self.sim.container_count(spike.microservice)
                tele.decisions.record(
                    minute=0.0,
                    actor="chaos",
                    microservice=spike.microservice,
                    before=count,
                    after=count,
                    reason=(
                        f"latency spike [{spike.start_min:g}, "
                        f"{spike.end_min:g}) min x{spike.multiplier:g}"
                    ),
                )

    # ------------------------------------------------------------------
    # Request path (called from _Arrival / _run_stages)
    # ------------------------------------------------------------------
    def should_shed(self, service: str, t: float) -> bool:
        admission = self._admission
        if admission is None:
            return False
        if self._ranks.get(service, 0) < admission.shed_rank_floor:
            return False
        threshold = admission.latency_threshold_ms
        if threshold is not None:
            ewma = self._ewma.get(service)
            if ewma is not None and ewma > threshold:
                return True
        limit = admission.max_queue_per_thread
        for state in self._graph_states[service]:
            queued = 0
            threads = 0
            per_container = state.spec.threads
            for container in state.containers:
                threads += per_container
                fifo = container.fifo
                queued += len(fifo) if fifo is not None else len(container.queue)
            if threads and queued / threads > limit:
                return True
        return False

    def shed(self, service: str, t: float) -> None:
        stats = self.stats
        stats.requests += 1
        stats.shed += 1
        result = self.sim.result
        result.shed_requests[service] = result.shed_requests.get(service, 0) + 1
        tele = self.tele
        if tele is not None:
            tele.record_request_error(service, t, "shed")
            tele.registry.counter("requests_shed").inc()
            minute = int(t / _MS_PER_MINUTE)
            key = (service, minute)
            if key not in self._shed_logged:
                self._shed_logged.add(key)
                root_ms = self._root_ms[service]
                count = self.sim.container_count(root_ms)
                tele.decisions.record(
                    minute=t / _MS_PER_MINUTE,
                    actor="admission",
                    microservice=root_ms,
                    before=count,
                    after=count,
                    reason=(
                        f"shedding {service} (rank "
                        f"{self._ranks.get(service, 0)}) under pressure"
                    ),
                )

    def start_request(self, service: str, node, t: float, final) -> None:
        self.stats.requests += 1
        req = _RequestCtx(service, t, final)
        fixed_span = final if type(final) is _SpanDone else None
        _ResilientCall(
            self, req, service, node,
            downstream=final, span_parent=None,
            fixed_span=fixed_span, is_root=True,
        ).execute_attempt(t)

    def submit_children(self, service: str, calls, t: float, frame, done) -> None:
        """Fan one stage's calls out as resilient logical RPCs.

        ``done`` is the parent node's continuation — an attempt (or its
        telemetry wrap), which carries the request context and the span
        the children attach to.
        """
        if type(done) is _AttemptDone:
            attempt = done
        else:
            inner = getattr(done, "inner", None)
            attempt = inner if type(inner) is _AttemptDone else None
        if attempt is None:  # pragma: no cover - engine invariant
            raise RuntimeError("resilient fan-out without an attempt context")
        req = attempt.call.req
        span_parent = attempt.span_done
        for child in calls:
            _ResilientCall(
                self, req, service, child,
                downstream=frame, span_parent=span_parent,
            ).execute_attempt(t)

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def _finish_request(self, req: _RequestCtx, finish: float) -> None:
        if req.failed:
            self._fail_request(req, finish, "downstream failure")
            return
        self.stats.succeeded += 1
        admission = self._admission
        if admission is not None and admission.latency_threshold_ms is not None:
            alpha = admission.ewma_alpha
            previous = self._ewma.get(req.service)
            sample = finish - req.start
            self._ewma[req.service] = (
                sample
                if previous is None
                else alpha * sample + (1.0 - alpha) * previous
            )
        req.final(finish)

    def _fail_request(self, req: _RequestCtx, t: float, kind: str) -> None:
        self.stats.failed += 1
        result = self.sim.result
        result.failed_requests[req.service] = (
            result.failed_requests.get(req.service, 0) + 1
        )
        tele = self.tele
        if tele is not None:
            tele.record_request_error(req.service, t, kind)
            tele.registry.counter("requests_failed").inc()

    # ------------------------------------------------------------------
    # Breakers
    # ------------------------------------------------------------------
    def _breaker_for(self, service: str, microservice: str):
        policy = self.policies.breaker
        if policy is None:
            return None
        key = (service, microservice)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = CircuitBreaker(policy)
        return breaker

    def _breaker_allow(
        self, breaker: CircuitBreaker, service: str, microservice: str, t: float
    ) -> bool:
        before = breaker.state
        allowed, transition = breaker.allow(t)
        if transition is not None:
            self._breaker_transition(
                service, microservice, before, transition, t,
                "cooldown elapsed",
            )
        return allowed

    def _breaker_transition(
        self,
        service: str,
        microservice: str,
        before: int,
        state: int,
        t: float,
        cause: str,
    ) -> None:
        if state == BREAKER_OPEN:
            self.stats.breaker_opens += 1
        elif state == BREAKER_CLOSED:
            self.stats.breaker_closes += 1
        tele = self.tele
        if tele is not None:
            tele.registry.gauge(
                f"breaker_state.{service}.{microservice}"
            ).set(state)
            tele.decisions.record(
                minute=t / _MS_PER_MINUTE,
                actor="circuit-breaker",
                microservice=microservice,
                before=before,
                after=state,
                reason=(
                    f"{service}->{microservice}: "
                    f"{_STATE_NAMES[before]} -> {_STATE_NAMES[state]} "
                    f"({cause})"
                ),
            )

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def _draw_unit(self) -> float:
        """One uniform [0,1) draw from the manager's batched stream."""
        index = self._unit_i
        buf = self._unit_buf
        if index >= len(buf):
            buf = self._unit_buf = self.rng.random(_RNG_BLOCK).tolist()
            index = 0
        self._unit_i = index + 1
        return buf[index]

    def _count(self, name: str) -> None:
        tele = self.tele
        if tele is not None:
            tele.registry.counter(name).inc()


class _CrashFire:
    """Scheduled chaos crash: kill a container, optionally with restart."""

    __slots__ = ("mgr", "crash")

    def __init__(self, mgr: ResilienceManager, crash):
        self.mgr = mgr
        self.crash = crash

    def __call__(self, now: float) -> None:
        mgr = self.mgr
        crash = self.crash
        sim = mgr.sim
        if sim.container_count(crash.microservice) <= 1:
            # Never kill the last container; record the skip so the
            # schedule's intent stays visible.
            tele = mgr.tele
            if tele is not None:
                tele.decisions.record(
                    minute=now / _MS_PER_MINUTE,
                    actor="chaos",
                    microservice=crash.microservice,
                    before=1,
                    after=1,
                    reason="crash skipped (last container)",
                )
            return
        mgr.stats.crashes += 1
        mgr._count("chaos_crashes")
        sim.inject_container_failure(
            crash.microservice,
            retry=crash.retry,
            restart_after_ms=crash.restart_after_ms,
            actor="chaos",
        )
        if crash.restart_after_ms is not None:
            mgr.stats.restarts += 1
            mgr._count("chaos_restarts")
