"""Resilience layer: deterministic chaos + client-side recovery policies.

Two halves, composable independently:

* :mod:`repro.resilience.chaos` — a seedable, fully explicit
  :class:`ChaosSchedule` of container crashes (with restart recovery),
  per-RPC error windows, and transient latency spikes, replayed
  deterministically inside the event loop;
* :mod:`repro.resilience.policies` — client-side
  :class:`ResiliencePolicies` (timeouts, bounded retries with backoff +
  jitter, per-(service, microservice) circuit breakers, priority-aware
  admission control) the :class:`ResilienceManager` weaves into the
  simulator's request path.

Attach either (or both) via ``ClusterSimulator(..., chaos=schedule,
resilience=policies)``.  With neither attached the engine is untouched —
golden determinism fingerprints are bit-identical.
"""

from repro.resilience.chaos import (
    ChaosSchedule,
    CrashEvent,
    ErrorWindow,
    LatencySpike,
    SpikeMultiplier,
)
from repro.resilience.manager import ResilienceManager, ResilienceStats
from repro.resilience.policies import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionPolicy,
    CircuitBreaker,
    CircuitBreakerPolicy,
    ResiliencePolicies,
    RetryPolicy,
    TimeoutPolicy,
)

__all__ = [
    "AdmissionPolicy",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "ChaosSchedule",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "CrashEvent",
    "ErrorWindow",
    "LatencySpike",
    "ResilienceManager",
    "ResiliencePolicies",
    "ResilienceStats",
    "RetryPolicy",
    "SpikeMultiplier",
    "TimeoutPolicy",
]
