"""Tests for repro.core.latency_targets: Eq. 5 allocation + §5.3.1 passes."""

import math

import pytest

from repro.core import (
    InfeasibleSLAError,
    LatencySegment,
    MicroserviceProfile,
    PiecewiseLatencyModel,
    ServiceSpec,
    compute_service_targets,
    predicted_end_to_end,
)
from repro.graphs import DependencyGraph, call

from tests.helpers import (
    FIG1_PARAMS,
    chain_graph,
    fig1_graph,
    make_profile,
    make_profiles,
)


def two_tier_service(workload=2000.0, sla=300.0):
    """The Fig. 4 scenario: U (sensitive) then P (insensitive), sequential."""
    graph = DependencyGraph("social", call("U", stages=[[call("P")]]))
    profiles = {
        "U": make_profile("U", slope=4.0, intercept=5.0),
        "P": make_profile("P", slope=0.5, intercept=2.0),
    }
    return ServiceSpec("social", graph, workload=workload, sla=sla), profiles


class TestComputeServiceTargets:
    def test_chain_allocation_matches_eq5(self):
        graph = chain_graph(["A", "B"])
        profiles = make_profiles([("A", 1.0, 2.0), ("B", 4.0, 1.0)])
        spec = ServiceSpec("svc", graph, workload=10_000.0, sla=500.0)
        result = compute_service_targets(spec, profiles)
        # At this workload both stay in the high segment (pass 1).
        budget = 500.0 - 3.0
        key_a, key_b = math.sqrt(1.0), math.sqrt(4.0)
        expected_a = key_a / (key_a + key_b) * budget + 2.0
        assert result.targets["A"] == pytest.approx(expected_a)
        assert result.passes == 1

    def test_sensitive_microservice_gets_higher_target(self):
        """Paper Fig. 4a: U's latency grows faster -> U gets more budget."""
        spec, profiles = two_tier_service()
        result = compute_service_targets(spec, profiles)
        assert result.targets["U"] > result.targets["P"]

    def test_containers_meet_targets(self):
        spec, profiles = two_tier_service()
        result = compute_service_targets(spec, profiles)
        for name, target in result.targets.items():
            load = result.workloads[name] / result.containers[name]
            assert result.segments[name].latency(load) <= target + 1e-9

    def test_end_to_end_prediction_within_sla(self):
        spec, profiles = two_tier_service()
        result = compute_service_targets(spec, profiles)
        e2e = predicted_end_to_end(spec, profiles, result.containers)
        assert e2e <= spec.sla + 1e-9

    def test_infeasible_sla_raises(self):
        spec, profiles = two_tier_service(sla=6.0)  # below intercept sum 7
        with pytest.raises(InfeasibleSLAError, match="latency floor"):
            compute_service_targets(spec, profiles)

    def test_second_pass_switches_to_low_segment(self):
        """A very tight SLA forces per-container load below the cut-off."""
        graph = chain_graph(["A", "B"])
        profiles = {
            "A": MicroserviceProfile(
                "A",
                PiecewiseLatencyModel(
                    low=LatencySegment(0.1, 1.0),
                    high=LatencySegment(5.0, 1.0),
                    cutoff=10.0,
                ),
            ),
            "B": MicroserviceProfile(
                "B",
                PiecewiseLatencyModel(
                    low=LatencySegment(0.1, 1.0),
                    high=LatencySegment(5.0, 1.0),
                    cutoff=10.0,
                ),
            ),
        }
        # latency_at_cutoff = 51; SLA 20 yields targets ~10 < 51 -> switch.
        spec = ServiceSpec("svc", graph, workload=1000.0, sla=20.0)
        result = compute_service_targets(spec, profiles)
        assert result.passes == 2
        assert result.segments["A"] is profiles["A"].model.low
        assert result.segments["B"] is profiles["B"].model.low

    def test_loose_sla_stays_on_high_segment(self):
        spec, profiles = two_tier_service(sla=100_000.0)
        result = compute_service_targets(spec, profiles)
        assert result.passes == 1
        assert result.segments["U"] is profiles["U"].model.high

    def test_higher_workload_needs_more_containers(self):
        spec_low, profiles = two_tier_service(workload=1000.0)
        spec_high, _ = two_tier_service(workload=50_000.0)
        low = compute_service_targets(spec_low, profiles)
        high = compute_service_targets(spec_high, profiles)
        assert sum(high.containers.values()) > sum(low.containers.values())

    def test_tighter_sla_needs_more_containers(self):
        spec_loose, profiles = two_tier_service(sla=400.0)
        spec_tight, _ = two_tier_service(sla=60.0)
        loose = compute_service_targets(spec_loose, profiles)
        tight = compute_service_targets(spec_tight, profiles)
        assert sum(tight.containers.values()) >= sum(loose.containers.values())

    def test_workload_override_inflates_containers(self):
        """Overrides model the priority-modified workload at shared nodes."""
        spec, profiles = two_tier_service(workload=2000.0)
        base = compute_service_targets(spec, profiles)
        boosted = compute_service_targets(
            spec, profiles, workload_overrides={"P": 8000.0}
        )
        assert boosted.containers["P"] > base.containers["P"]
        assert boosted.workloads["P"] == pytest.approx(8000.0)

    def test_override_shifts_target_upward(self):
        """More load at P -> P gets a larger latency share (Eq. 5)."""
        spec, profiles = two_tier_service(workload=2000.0)
        base = compute_service_targets(spec, profiles)
        boosted = compute_service_targets(
            spec, profiles, workload_overrides={"P": 20_000.0}
        )
        assert boosted.targets["P"] > base.targets["P"]

    def test_shared_call_site_takes_min_target(self):
        # C appears on two branches at different depths; its final target
        # must be the minimum over the per-site targets.  Compare against a
        # structurally identical graph with the sites renamed C1/C2.
        def build(deep, shallow):
            return DependencyGraph(
                "svc",
                call("A", stages=[[call("B", stages=[[call(deep)]]), call(shallow)]]),
            )

        entries = [("A", 1.0, 1.0), ("B", 1.0, 1.0)]
        shared_profiles = make_profiles(entries + [("C", 1.0, 1.0)])
        renamed_profiles = make_profiles(
            entries + [("C1", 1.0, 1.0), ("C2", 1.0, 1.0)]
        )
        shared = compute_service_targets(
            ServiceSpec("svc", build("C", "C"), workload=5000.0, sla=200.0),
            shared_profiles,
        )
        renamed = compute_service_targets(
            ServiceSpec("svc", build("C1", "C2"), workload=5000.0, sla=200.0),
            renamed_profiles,
        )
        expected = min(renamed.targets["C1"], renamed.targets["C2"])
        assert shared.targets["C"] == pytest.approx(expected)

    def test_fig1_all_targets_positive_above_intercepts(self):
        graph = fig1_graph()
        profiles = make_profiles(FIG1_PARAMS)
        spec = ServiceSpec("fig1", graph, workload=10_000.0, sla=150.0)
        result = compute_service_targets(spec, profiles)
        for name, target in result.targets.items():
            assert target > result.segments[name].intercept


class TestPredictedEndToEnd:
    def test_more_containers_reduce_latency(self):
        spec, profiles = two_tier_service()
        few = predicted_end_to_end(spec, profiles, {"U": 2, "P": 2})
        many = predicted_end_to_end(spec, profiles, {"U": 50, "P": 50})
        assert many < few

    def test_missing_container_counts_default_to_one(self):
        spec, profiles = two_tier_service(workload=100.0)
        value = predicted_end_to_end(spec, profiles, {})
        expected = profiles["U"].model.latency(100.0) + profiles["P"].model.latency(
            100.0
        )
        assert value == pytest.approx(expected)
