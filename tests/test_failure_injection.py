"""Failure-injection tests: container crashes and system recovery."""

import numpy as np
import pytest

from repro.core import ErmsScaler, ServiceSpec
from repro.graphs import DependencyGraph, call
from repro.simulator import (
    AutoscaleConfig,
    AutoscaledSimulation,
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.workloads import StaticRate, analytic_profile


def make_simulator(containers=3, rate=10_000.0, duration=1.0, seed=1):
    spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 1e9)
    return ClusterSimulator(
        [spec],
        {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=2)},
        containers={"B": containers},
        rates={"svc": rate},
        config=SimulationConfig(
            duration_min=duration, warmup_min=0.0, seed=seed
        ),
    )


class TestContainerFailure:
    def test_failure_reduces_rotation(self):
        sim = make_simulator(containers=3)
        assert sim.inject_container_failure("B") >= 0
        assert sim.container_count("B") == 2

    def test_last_container_protected(self):
        sim = make_simulator(containers=1)
        with pytest.raises(ValueError, match="last container"):
            sim.inject_container_failure("B")

    def test_retried_jobs_all_complete(self):
        sim = make_simulator(containers=3, rate=20_000.0)
        sim.events.schedule(20_000.0, lambda t: sim.inject_container_failure("B"))
        sim.events.schedule(40_000.0, lambda t: sim.inject_container_failure("B"))
        result = sim.run()
        assert result.completed["svc"] == result.generated["svc"]

    def test_dropped_jobs_never_complete(self):
        # Overload the containers (capacity 48k req/min) so queues grow
        # without bound and are non-empty when one dies, independent of
        # the engine's RNG draw order.
        sim = make_simulator(containers=2, rate=50_000.0)
        dropped = []
        sim.events.schedule(
            30_000.0,
            lambda t: dropped.append(
                sim.inject_container_failure("B", retry=False)
            ),
        )
        result = sim.run()
        assert dropped[0] > 0
        assert (
            result.generated["svc"] - result.completed["svc"] == dropped[0]
        )

    def test_failure_raises_latency(self):
        calm = make_simulator(containers=3, rate=25_000.0, duration=2.0).run()
        degraded_sim = make_simulator(containers=3, rate=25_000.0, duration=2.0)
        degraded_sim.events.schedule(
            30_000.0, lambda t: degraded_sim.inject_container_failure("B")
        )
        degraded = degraded_sim.run()
        assert degraded.tail_latency("svc") > calm.tail_latency("svc")


class TestAutoscalerRecovery:
    def test_control_loop_replaces_failed_containers(self):
        """The autoscaler restores capacity after a crash."""
        spec = ServiceSpec(
            "svc", DependencyGraph("svc", call("B")), workload=0.0, sla=200.0
        )
        simulated = {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=2)}
        profiles = {"B": analytic_profile("B", 5.0, 2)}
        sim = AutoscaledSimulation(
            [spec],
            simulated,
            ErmsScaler(),
            profiles,
            rates={"svc": StaticRate(30_000.0)},
            config=SimulationConfig(duration_min=4.0, warmup_min=0.0, seed=3),
            autoscale=AutoscaleConfig(interval_min=1.0, startup_delay_ms=500.0),
        )
        baseline = sim.simulator.container_count("B")
        assert baseline >= 2
        # Kill a container mid-run; the next control period must restore it.
        sim.simulator.events.schedule(
            90_000.0, lambda t: sim.simulator.inject_container_failure("B")
        )
        result = sim.run()
        assert sim.simulator.container_count("B") >= baseline
        assert (
            result.simulation.completed["svc"]
            == result.simulation.generated["svc"]
        )
